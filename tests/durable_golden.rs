//! Golden-fixture test pinning the on-disk durability format.
//!
//! `tests/fixtures/golden-wal/` holds a committed snapshot + WAL segment
//! produced by a fixed recipe (below). This test proves two things:
//!
//! 1. **Byte stability** — re-running the recipe today produces exactly
//!    the committed bytes. Any change to the WAL or snapshot encoding
//!    fails here first; a *deliberate* format change must bump
//!    [`sponsored_search::durable::WAL_VERSION`] and regenerate the
//!    fixture with `SSA_REGEN_GOLDEN=1 cargo test --test durable_golden`.
//! 2. **Recoverability** — the committed fixture recovers into a
//!    marketplace bit-identical to an in-process twin that applied the
//!    same operations, including the next auctions it would serve.

use sponsored_search::bidlang::Money;
use sponsored_search::durable::{recover, Durability, FsyncPolicy, WAL_VERSION};
use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use sponsored_search::sharded::ShardedMarketplace;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-wal")
}

fn build_market() -> ShardedMarketplace {
    Marketplace::builder()
        .slots(2)
        .keywords(3)
        .seed(2008)
        .default_click_probs(vec![0.6, 0.3])
        .build_sharded(2)
        .expect("valid golden configuration")
}

/// The fixed operation recipe. `pre` runs before the mid-way snapshot,
/// `post` after it — so the fixture exercises snapshot ∘ WAL recovery,
/// not just one of the two.
fn drive_pre(market: &mut ShardedMarketplace) -> Vec<sponsored_search::core::CampaignId> {
    let shoes = market.register_advertiser("shoes.example");
    let books = market.register_advertiser("books.example");
    let mut ids = Vec::new();
    for kw in 0..3 {
        ids.push(
            market
                .add_campaign(
                    shoes,
                    kw,
                    CampaignSpec::per_click(Money::from_cents(25 + kw as i64))
                        .click_value(Money::from_cents(80)),
                )
                .expect("campaign"),
        );
        ids.push(
            market
                .add_campaign(
                    books,
                    kw,
                    CampaignSpec::per_click(Money::from_cents(40))
                        .click_value(Money::from_cents(95))
                        .roi_target(1.25),
                )
                .expect("campaign"),
        );
    }
    for t in 0..10 {
        market.serve(QueryRequest::new(t % 3)).expect("serve");
    }
    ids
}

fn drive_post(market: &mut ShardedMarketplace, ids: &[sponsored_search::core::CampaignId]) {
    market
        .update_bid(ids[0], Money::from_cents(33))
        .expect("update");
    market.pause_campaign(ids[1]).expect("pause");
    market
        .serve_batch(&[
            QueryRequest::new(0),
            QueryRequest::new(2),
            QueryRequest::new(1),
        ])
        .expect("batch");
    market.resume_campaign(ids[1]).expect("resume");
    market.set_roi_target(ids[2], Some(1.5)).expect("roi");
    for t in 0..5 {
        market.serve(QueryRequest::new((t * 2) % 3)).expect("serve");
    }
}

/// Runs the recipe journalled into `dir` (which must not exist yet),
/// snapshotting between the two halves.
fn generate(dir: &Path) {
    let (recovered, durability) =
        Durability::open(dir, FsyncPolicy::Off, 0).expect("open fixture dir");
    assert!(recovered.is_none(), "fixture dir must start empty");
    let mut market = build_market();
    durability
        .log_configure(&market.capture_state().expect("journalable").config)
        .expect("configure");
    market.set_journal(durability.journal());
    let ids = drive_pre(&mut market);
    durability.snapshot_now(&market).expect("mid-way snapshot");
    drive_post(&mut market, &ids);
}

/// The in-process twin: the same recipe with no journal attached.
fn twin() -> ShardedMarketplace {
    let mut market = build_market();
    let ids = drive_pre(&mut market);
    drive_post(&mut market, &ids);
    market
}

/// Filename → contents for every file in a directory.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("fixture dir exists")
        .map(|e| {
            let e = e.expect("entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("readable"))
        })
        .collect()
}

#[test]
fn golden_fixture_is_byte_stable_and_recovers_exactly() {
    let fixture = fixture_dir();
    if std::env::var_os("SSA_REGEN_GOLDEN").is_some() {
        std::fs::remove_dir_all(&fixture).ok();
        generate(&fixture);
        eprintln!("regenerated {}", fixture.display());
    }

    // Byte stability: the recipe reproduces the committed files exactly.
    let scratch = std::env::temp_dir().join(format!("ssa-golden-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    generate(&scratch);
    let want = dir_bytes(&fixture);
    let got = dir_bytes(&scratch);
    std::fs::remove_dir_all(&scratch).ok();
    let names = |m: &BTreeMap<String, Vec<u8>>| m.keys().cloned().collect::<Vec<_>>();
    assert_eq!(
        names(&want),
        names(&got),
        "fixture file set changed — if the format change is deliberate, bump \
         WAL_VERSION (now {WAL_VERSION}) and regenerate with SSA_REGEN_GOLDEN=1"
    );
    for (name, bytes) in &want {
        assert_eq!(
            bytes, &got[name],
            "{name} bytes changed — if the format change is deliberate, bump \
             WAL_VERSION (now {WAL_VERSION}) and regenerate with SSA_REGEN_GOLDEN=1"
        );
    }
    // The fixture exercises both recovery sources.
    assert!(
        want.keys().any(|n| n.starts_with("snapshot-")),
        "fixture must contain a snapshot"
    );
    assert!(
        want.keys().any(|n| n.starts_with("wal-")),
        "fixture must contain a WAL segment"
    );

    // Recoverability: the committed bytes rebuild the exact marketplace.
    let (mut recovered, report) = recover(&fixture)
        .expect("fixture recovers")
        .expect("fixture holds state");
    assert!(report.wal_records > 0, "{report:?}");
    assert!(report.snapshot_bytes > 0, "{report:?}");
    let mut want_market = twin();
    assert_eq!(
        recovered.capture_state().expect("journalable"),
        want_market.capture_state().expect("journalable")
    );
    // Future auctions — RNG positions included — are bit-identical.
    for kw in 0..3 {
        let a = recovered.serve(QueryRequest::new(kw)).expect("serve");
        let b = want_market.serve(QueryRequest::new(kw)).expect("serve");
        assert_eq!(
            a.expected_revenue.to_bits(),
            b.expected_revenue.to_bits(),
            "revenue bits diverged at keyword {kw}"
        );
        assert_eq!(a, b, "divergence at keyword {kw}");
    }
}
