//! Property tests for the paper's theorems, exercised through the full
//! public API.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sponsored_search::bidlang::{BidsTable, Formula, Money, SlotId};
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::prob::{ClickModel, PurchaseModel};
use sponsored_search::core::revenue::{no_slot_revenue, revenue_matrix};
use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder, WdMethod};
use sponsored_search::matching::exhaustive::brute_force_assignment;
use sponsored_search::matching::max_weight_assignment;

const K: u16 = 3;

/// Arbitrary 1-dependent formulas over K slots.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (1..=K).prop_map(|j| Formula::slot(SlotId::new(j))),
        Just(Formula::click()),
        Just(Formula::purchase()),
        Just(Formula::no_slot(K)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            inner.prop_map(|f| !f),
        ]
    })
}

fn arb_bids_table() -> impl Strategy<Value = BidsTable> {
    proptest::collection::vec((arb_formula(), 0i64..60), 1..4)
        .prop_map(|rows| BidsTable::new(rows.into_iter().map(|(f, c)| (f, Money::from_cents(c)))))
}

/// Exhaustive expected revenue of an allocation: enumerate all click /
/// purchase worlds for each placed advertiser independently (legal because
/// the events are 1-dependent).
fn exhaustive_allocation_revenue(
    bids: &[BidsTable],
    clicks: &ClickModel,
    purchases: &PurchaseModel,
    slot_to_adv: &[Option<usize>],
) -> f64 {
    let placed: Vec<Option<usize>> = {
        let mut adv_slot = vec![None; bids.len()];
        for (j, adv) in slot_to_adv.iter().enumerate() {
            if let Some(a) = adv {
                adv_slot[*a] = Some(j);
            }
        }
        adv_slot
    };
    bids.iter()
        .enumerate()
        .map(|(i, table)| match placed[i] {
            None => no_slot_revenue(table),
            Some(j) => {
                let slot = SlotId::from_index0(j);
                let pc = clicks.p_click(i, slot);
                let mut total = 0.0;
                for clicked in [false, true] {
                    for purchased in [false, true] {
                        let pp = purchases.p_purchase(i, slot, clicked);
                        let p = (if clicked { pc } else { 1.0 - pc })
                            * (if purchased { pp } else { 1.0 - pp });
                        let view = sponsored_search::bidlang::AdvertiserView {
                            slot: Some(slot),
                            clicked,
                            purchased,
                            heavy_pattern: None,
                        };
                        total += p * table.payment(&view).as_f64();
                    }
                }
                total
            }
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2, end to end: for OR-bids on arbitrary 1-dependent Boolean
    /// formulas, the matching-based winner determination finds the
    /// revenue-maximising allocation — verified against brute force over
    /// every allocation with the exhaustive outcome enumeration.
    #[test]
    fn theorem2_matching_is_exactly_optimal(
        tables in proptest::collection::vec(arb_bids_table(), 1..5),
        seed in 0u64..1000,
    ) {
        let n = tables.len();
        let k = K as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let clicks = ClickModel::from_fn(n, k, |_, _| rng.gen_range(0.0..1.0));
        let purchases = PurchaseModel::from_fn(n, k, |_, _| {
            (rng.gen_range(0.0..1.0), rng.gen_range(0.0..0.3))
        });

        let (matrix, base) = revenue_matrix(&tables, &clicks, &purchases);
        let fast = max_weight_assignment(&matrix);
        let fast_revenue = base.total_base + fast.total_weight;

        // Verify the claimed revenue against the exhaustive world
        // enumeration for the chosen allocation…
        let direct = exhaustive_allocation_revenue(
            &tables, &clicks, &purchases, &fast.slot_to_adv,
        );
        prop_assert!((fast_revenue - direct).abs() < 1e-6,
            "objective bookkeeping wrong: {fast_revenue} vs {direct}");

        // …and optimality against brute force over all allocations.
        let brute = brute_force_assignment(&matrix);
        prop_assert!((fast.total_weight - brute.total_weight).abs() < 1e-6);
    }

    /// The engine produces identical expected revenue under all four
    /// winner-determination back-ends on arbitrary multi-feature bids.
    #[test]
    fn engine_backends_agree(
        tables in proptest::collection::vec(arb_bids_table(), 1..6),
        seed in 0u64..500,
    ) {
        let n = tables.len();
        let k = K as usize;
        let mut reference: Option<f64> = None;
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(2),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let clicks = ClickModel::from_fn(n, k, |_, _| rng.gen_range(0.0..1.0));
            let purchases = PurchaseModel::never(n, k);
            let bidders: Vec<TableBidder> =
                tables.iter().cloned().map(TableBidder::new).collect();
            let mut engine = AuctionEngine::new(
                bidders, clicks, purchases, 1,
                EngineConfig {
                    method,
                    pricing: PricingScheme::PayYourBid,
                    ..EngineConfig::default()
                },
            );
            let report = engine.run_auction(0, &mut StdRng::seed_from_u64(seed));
            match reference {
                None => reference = Some(report.expected_revenue),
                Some(r) => prop_assert!(
                    (report.expected_revenue - r).abs() < 1e-6,
                    "{method:?}: {} vs {r}", report.expected_revenue
                ),
            }
        }
    }
}
