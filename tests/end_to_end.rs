//! Cross-crate integration tests: the full auction pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sponsored_search::bidlang::{BidsTable, Formula, Money, SlotId};
use sponsored_search::core::pricing::PricingScheme;
use sponsored_search::core::prob::{ClickModel, PurchaseModel, SeparableClickModel};
use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder, WdMethod};
use sponsored_search::workload::{Method, SectionVConfig, SectionVWorkload, Simulation};

fn random_engine(
    n: usize,
    k: usize,
    seed: u64,
    method: WdMethod,
    pricing: PricingScheme,
) -> AuctionEngine<TableBidder> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bidders: Vec<TableBidder> = (0..n)
        .map(|_| {
            let mut table = BidsTable::single_feature(Money::from_cents(rng.gen_range(1..=50)));
            if rng.gen_bool(0.4) {
                table.push(
                    Formula::purchase(),
                    Money::from_cents(rng.gen_range(1..=80)),
                );
            }
            if rng.gen_bool(0.3) {
                table.push(
                    Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(k as u16)),
                    Money::from_cents(rng.gen_range(1..=10)),
                );
            }
            TableBidder::new(table)
        })
        .collect();
    let clicks = ClickModel::from_fn(n, k, |_, j| rng.gen_range(0.05..0.9) / (1 + j) as f64);
    let purchases = PurchaseModel::from_fn(n, k, |_, _| (rng.gen_range(0.0..0.5), 0.0));
    AuctionEngine::new(
        bidders,
        clicks,
        purchases,
        1,
        EngineConfig {
            method,
            pricing,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn all_wd_methods_agree_across_engines() {
    for seed in [1u64, 2, 3] {
        let mut reference: Option<f64> = None;
        for method in [
            WdMethod::Lp,
            WdMethod::Hungarian,
            WdMethod::Reduced,
            WdMethod::ReducedParallel(3),
        ] {
            let mut engine = random_engine(25, 4, seed, method, PricingScheme::PayYourBid);
            let mut rng = StdRng::seed_from_u64(seed);
            let report = engine.run_auction(0, &mut rng);
            match reference {
                None => reference = Some(report.expected_revenue),
                Some(r) => assert!(
                    (report.expected_revenue - r).abs() < 1e-6,
                    "seed {seed}: {method:?} got {} expected {r}",
                    report.expected_revenue
                ),
            }
        }
    }
}

#[test]
fn vcg_charges_never_exceed_gsp_expected_value_bounds() {
    // Sanity across pricing schemes: charges are non-negative and VCG never
    // charges a winner more than its own expected edge.
    for pricing in [
        PricingScheme::Gsp,
        PricingScheme::Vickrey,
        PricingScheme::PayYourBid,
    ] {
        let mut engine = random_engine(20, 3, 9, WdMethod::Reduced, pricing);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let report = engine.run_auction(0, &mut rng);
            for (_, m) in &report.charges {
                assert!(
                    m.is_positive(),
                    "{pricing:?} produced a non-positive charge"
                );
            }
            assert!(report.realized_revenue >= Money::ZERO);
        }
    }
}

#[test]
fn separable_case_matches_sort_allocation() {
    // Under separability + single-feature bids, the matching must produce
    // the same allocation as the O(n log k) sort (Section III-C).
    let advertiser_factors = vec![0.9, 0.7, 0.5, 0.3, 0.2];
    let slot_factors = vec![0.9, 0.6, 0.3];
    let sep = SeparableClickModel::new(advertiser_factors.clone(), slot_factors.clone());
    let values = [10i64, 20, 30, 40, 5];

    let bidders: Vec<TableBidder> = values
        .iter()
        .map(|&v| TableBidder::per_click(Money::from_cents(v)))
        .collect();
    let mut engine = AuctionEngine::new(
        bidders,
        sep.to_click_model(),
        PurchaseModel::never(5, 3),
        1,
        EngineConfig {
            method: WdMethod::Hungarian,
            pricing: PricingScheme::Gsp,
            ..EngineConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let report = engine.run_auction(0, &mut rng);

    let per_click: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let sorted = sep.sort_allocation(&per_click);
    assert_eq!(report.assignment.slot_to_adv, sorted);
}

#[test]
fn simulation_methods_agree_long_run() {
    // RH and RHTALU stay in lockstep over hundreds of auctions (shared RNG
    // stream, identical GSP charges thanks to the k+1-deep selection).
    let config = SectionVConfig {
        num_advertisers: 60,
        num_slots: 6,
        num_keywords: 5,
        seed: 2024,
    };
    let mut rh = Simulation::new(SectionVWorkload::generate(config), Method::Rh);
    let mut ta = Simulation::new(SectionVWorkload::generate(config), Method::Rhtalu);
    for auction in 0..300 {
        let a = rh.run_auction();
        let b = ta.run_auction();
        assert!(
            (a - b).abs() < 1e-6,
            "divergence at auction {auction}: {a} vs {b}"
        );
    }
    assert_eq!(rh.stats.charged_cents, ta.stats.charged_cents);
    assert_eq!(rh.stats.clicks, ta.stats.clicks);
}

#[test]
fn all_four_paper_methods_agree_on_shared_workload() {
    // LP, H, RH and RHTALU run over the *same* generated Section V
    // workload and must report the same winner-determination objective on
    // every auction of the stream.
    let config = SectionVConfig {
        num_advertisers: 40,
        num_slots: 5,
        num_keywords: 4,
        seed: 7171,
    };
    let mut sims: Vec<Simulation> = Method::ALL
        .iter()
        .map(|&m| Simulation::new(SectionVWorkload::generate(config), m))
        .collect();
    for auction in 0..40 {
        let objectives: Vec<f64> = sims.iter_mut().map(|s| s.run_auction()).collect();
        let reference = objectives[0];
        for (method, obj) in Method::ALL.iter().zip(&objectives) {
            assert!(
                (obj - reference).abs() < 1e-6,
                "auction {auction}: {method:?} objective {obj} != LP objective {reference}"
            );
        }
    }
}

#[test]
fn engine_expected_revenue_matches_realized_average_pay_your_bid() {
    // Law of large numbers check: with pay-your-bid pricing, average
    // realised revenue over many auctions approaches the (constant)
    // expected revenue of the repeated optimal allocation.
    let mut engine = random_engine(10, 3, 21, WdMethod::Hungarian, PricingScheme::PayYourBid);
    let mut rng = StdRng::seed_from_u64(99);
    let mut expected = 0.0;
    let mut realized = 0i64;
    let rounds = 4000;
    for _ in 0..rounds {
        let report = engine.run_auction(0, &mut rng);
        expected = report.expected_revenue; // constant: static bidders
        realized += report.realized_revenue.cents();
    }
    let avg = realized as f64 / rounds as f64;
    let rel_err = (avg - expected).abs() / expected.max(1.0);
    assert!(
        rel_err < 0.05,
        "realised average {avg} differs from expected {expected} by {rel_err:.3}"
    );
}
