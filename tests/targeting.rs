//! Typed query targeting, end to end: untargeted markets must ignore
//! attribute bags bit-for-bit (sharded or not), the compiled bytecode
//! matcher must agree with the reference AST evaluator on arbitrary
//! expressions, hostile targeting sources must be rejected with typed
//! errors at the core and wire layers, and targeted campaigns must
//! survive a write-ahead-log recovery bit-identically.

use proptest::collection::vec;
use proptest::prelude::*;
use sponsored_search::bidlang::targeting::{AttrValue, CmpOp, CompiledTargeting, TargetExpr};
use sponsored_search::bidlang::Money;
use sponsored_search::core::UserAttrs;
use sponsored_search::durable::{recover, Durability, FsyncPolicy};
use sponsored_search::marketplace::{CampaignSpec, MarketError, Marketplace, QueryRequest};
use sponsored_search::net::{Client, ErrorCode, NetError, Server, ServerConfig};
use sponsored_search::sharded::ShardedMarketplace;
use sponsored_search::workload::defective_targeting_sources;

const SLOTS: usize = 3;
const KEYWORDS: usize = 2;

/// A small deterministic market: six advertisers, one per-click campaign
/// per keyword, no targeting anywhere.
fn untargeted_market(shards: usize, seed: u64) -> ShardedMarketplace {
    let mut market = Marketplace::builder()
        .slots(SLOTS)
        .keywords(KEYWORDS)
        .seed(seed)
        .default_click_probs(vec![0.7, 0.4, 0.2])
        .build_sharded(shards)
        .expect("valid configuration");
    for i in 0..6i64 {
        let adv = market.register_advertiser(format!("adv-{i}"));
        for keyword in 0..KEYWORDS {
            market
                .add_campaign(
                    adv,
                    keyword,
                    CampaignSpec::per_click(Money::from_cents(10 + 3 * i))
                        .click_value(Money::from_cents(50)),
                )
                .expect("valid campaign");
        }
    }
    market
}

// ---------------------------------------------------------------------------
// Attribute and expression generators.
// ---------------------------------------------------------------------------

/// Keys drawn from a small pool so expressions and attribute bags
/// actually collide.
fn arb_key() -> BoxedStrategy<String> {
    prop_oneof![
        Just("geo"),
        Just("device"),
        Just("age"),
        Just("segment"),
        Just("score"),
    ]
    .prop_map(str::to_string)
    .boxed()
}

fn arb_value() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        (-5i64..5).prop_map(AttrValue::Int),
        prop_oneof![
            Just("us"),
            Just("de"),
            Just("mobile"),
            Just("tv"),
            Just("sports"),
        ]
        .prop_map(|s| AttrValue::Str(s.to_string())),
    ]
    .boxed()
}

fn arb_attrs() -> BoxedStrategy<UserAttrs> {
    vec((arb_key(), arb_value()), 0..5)
        .prop_map(|kv| kv.into_iter().collect::<UserAttrs>())
        .boxed()
}

fn arb_op() -> BoxedStrategy<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
    .boxed()
}

fn arb_expr() -> BoxedStrategy<TargetExpr> {
    let leaf = prop_oneof![
        (arb_key(), arb_op(), arb_value()).prop_map(|(key, op, value)| TargetExpr::Cmp {
            key,
            op,
            value
        }),
        (arb_key(), vec(arb_value(), 1..4))
            .prop_map(|(key, values)| TargetExpr::In { key, values }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TargetExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TargetExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|e| TargetExpr::Not(Box::new(e))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An untargeted market serves a query with an arbitrary attribute bag
    /// exactly as it serves the bare keyword — bit-for-bit, at 1 and 4
    /// shards. Targeting must cost nothing when nobody targets.
    #[test]
    fn untargeted_markets_ignore_attrs_bit_identically(
        stream in vec((0usize..KEYWORDS, arb_attrs()), 1..25),
        seed in 0u64..500,
    ) {
        let mut plain = untargeted_market(1, seed);
        let mut attrs_one = untargeted_market(1, seed);
        let mut attrs_four = untargeted_market(4, seed);
        for (t, (keyword, attrs)) in stream.iter().enumerate() {
            let want = plain
                .serve(QueryRequest::new(*keyword))
                .expect("keyword in range");
            let one = attrs_one
                .serve(QueryRequest::with_attrs(*keyword, attrs.clone()))
                .expect("keyword in range");
            let four = attrs_four
                .serve(QueryRequest::with_attrs(*keyword, attrs.clone()))
                .expect("keyword in range");
            prop_assert_eq!(&want, &one, "divergence at query {} (1 shard)", t);
            prop_assert_eq!(&want, &four, "divergence at query {} (4 shards)", t);
            prop_assert_eq!(
                want.expected_revenue.to_bits(),
                four.expected_revenue.to_bits(),
                "revenue bits diverged at query {}",
                t
            );
        }
    }

    /// The postfix bytecode matcher agrees with the reference AST
    /// evaluator on arbitrary expressions and attribute bags.
    #[test]
    fn compiled_matcher_agrees_with_the_reference_evaluator(
        expr in arb_expr(),
        bags in vec(arb_attrs(), 1..12),
    ) {
        let compiled = CompiledTargeting::compile(&expr, "property");
        for attrs in &bags {
            prop_assert_eq!(
                compiled.matches(attrs),
                expr.matches(attrs),
                "compiled and reference disagree on {:?} for {:?}",
                attrs,
                &expr
            );
        }
    }
}

/// Every defective source from the hostile generator is rejected with the
/// typed core error — and the rejection leaves the market untouched.
#[test]
fn hostile_sources_are_rejected_typed_and_leave_the_market_unchanged() {
    let mut market = untargeted_market(2, 77);
    let attacker = market.register_advertiser("attacker".to_string());
    let before = market.capture_state().expect("journalable");
    for source in defective_targeting_sources(25, 99) {
        let err = market
            .add_campaign(
                attacker,
                0,
                CampaignSpec::per_click(Money::from_cents(5)).targeting(source.clone()),
            )
            .expect_err("defective source must not register");
        assert!(
            matches!(err, MarketError::InvalidTargeting(_)),
            "{source:?} rejected with the wrong error: {err:?}"
        );
    }
    assert_eq!(
        market.capture_state().expect("journalable"),
        before,
        "a rejected targeting source mutated the market"
    );
}

/// Targeting over the wire: a campaign registered with a targeting source
/// through `ssa_net::Client` serves attribute queries bit-identically to
/// an in-process twin, defective sources come back as
/// [`ErrorCode::InvalidTargeting`], and the rejections leave both sides
/// aligned.
#[test]
fn targeting_over_the_wire_matches_in_process() {
    let mut twin = untargeted_market(2, 55);
    let serverside = untargeted_market(2, 55);
    let server = Server::bind("127.0.0.1:0", serverside, ServerConfig::default())
        .expect("bind")
        .spawn();
    let mut client = Client::connect(server.addr()).expect("connect");

    let remote_adv = client
        .register_advertiser("mobile-first")
        .expect("register over the wire");
    let local_adv = twin.register_advertiser("mobile-first".to_string());
    let remote_id = client
        .add_targeted_campaign(
            remote_adv,
            0,
            Money::from_cents(30),
            Money::from_cents(70),
            None,
            None,
            Some("device = 'mobile'".to_string()),
        )
        .expect("targeted campaign registers over the wire");
    let local_id = twin
        .add_campaign(
            local_adv,
            0,
            CampaignSpec::per_click(Money::from_cents(30))
                .click_value(Money::from_cents(70))
                .targeting("device = 'mobile'"),
        )
        .expect("targeted campaign registers in process");
    assert_eq!(remote_id, local_id);

    let serve_both = |client: &mut Client, twin: &mut ShardedMarketplace, t: usize| {
        let keyword = t % KEYWORDS;
        let attrs = if t.is_multiple_of(2) {
            UserAttrs::new().device("mobile")
        } else {
            UserAttrs::new().device("desktop").geo("us")
        };
        let remote = client
            .serve_with_attrs(keyword, attrs.clone())
            .expect("wire serve");
        let local = twin
            .serve(QueryRequest::with_attrs(keyword, attrs))
            .expect("twin serve");
        assert_eq!(remote, local, "wire and in-process diverged at query {t}");
        assert_eq!(
            remote.expected_revenue.to_bits(),
            local.expected_revenue.to_bits(),
            "revenue bits diverged at query {t}"
        );
    };
    for t in 0..30 {
        serve_both(&mut client, &mut twin, t);
    }

    for source in defective_targeting_sources(10, 3) {
        match client.add_targeted_campaign(
            remote_adv,
            0,
            Money::from_cents(5),
            Money::from_cents(5),
            None,
            None,
            Some(source.clone()),
        ) {
            Err(NetError::Server {
                code: ErrorCode::InvalidTargeting,
                ..
            }) => {}
            other => panic!("{source:?} over the wire: expected InvalidTargeting, got {other:?}"),
        }
    }
    // The rejected registrations changed nothing: both sides still agree.
    for t in 30..40 {
        serve_both(&mut client, &mut twin, t);
    }

    client.shutdown_server().expect("graceful shutdown");
    server.join();
}

/// Targeted campaigns and attribute queries journal through the
/// write-ahead log: a recovered marketplace is bit-identical to the live
/// one — state and future auctions alike.
#[test]
fn targeted_campaigns_survive_wal_recovery_bit_identically() {
    let dir = std::env::temp_dir().join(format!("ssa-targeting-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (pre, durability) =
        Durability::open(&dir, FsyncPolicy::Off, 0).expect("durable store opens");
    assert!(pre.is_none(), "test requires an empty data directory");

    // The market starts empty; the whole population registers through the
    // journal so recovery replays it — targeting sources included.
    let mut live = Marketplace::builder()
        .slots(SLOTS)
        .keywords(KEYWORDS)
        .seed(2026)
        .default_click_probs(vec![0.7, 0.4, 0.2])
        .build_sharded(2)
        .expect("valid configuration");
    durability
        .log_configure(&live.capture_state().expect("journalable").config)
        .expect("configure journalled");
    live.set_journal(durability.journal());

    for i in 0..5i64 {
        let adv = live.register_advertiser(format!("adv-{i}"));
        for keyword in 0..KEYWORDS {
            let mut spec = CampaignSpec::per_click(Money::from_cents(12 + 4 * i))
                .click_value(Money::from_cents(60));
            if i % 2 == 0 {
                spec = spec.targeting("device = 'mobile' or score >= 3");
            }
            live.add_campaign(adv, keyword, spec)
                .expect("valid campaign");
        }
    }
    let attrs_of = |t: usize| match t % 3 {
        0 => UserAttrs::new().device("mobile"),
        1 => UserAttrs::new().device("desktop").set_int("score", 4),
        _ => UserAttrs::new(),
    };
    for t in 0..30 {
        live.serve(QueryRequest::with_attrs(t % KEYWORDS, attrs_of(t)))
            .expect("keyword in range");
    }
    drop(durability);

    let (mut recovered, report) = recover(&dir)
        .expect("recovery succeeds")
        .expect("the run journalled state");
    assert!(report.wal_records > 0);
    assert_eq!(
        recovered.capture_state().expect("journalable"),
        live.capture_state().expect("journalable"),
        "recovered marketplace diverged from the live one"
    );
    for t in 30..40 {
        let attrs = attrs_of(t);
        let a = live
            .serve(QueryRequest::with_attrs(t % KEYWORDS, attrs.clone()))
            .expect("keyword in range");
        let b = recovered
            .serve(QueryRequest::with_attrs(t % KEYWORDS, attrs))
            .expect("keyword in range");
        assert_eq!(a, b, "post-recovery divergence at query {t}");
        assert_eq!(a.expected_revenue.to_bits(), b.expected_revenue.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}
