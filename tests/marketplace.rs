//! The `Marketplace` facade end to end: Section V equivalence against the
//! legacy `Simulation` path, and property tests showing the incremental
//! update API is indistinguishable from re-registering campaigns from
//! scratch.

use proptest::prelude::*;
use sponsored_search::bidlang::Money;
use sponsored_search::core::marketplace::{
    CampaignSpec, Marketplace, MarketplaceBuilder, QueryRequest,
};
use sponsored_search::core::WdMethod;
use sponsored_search::workload::{
    MarketSimulation, Method, SectionVConfig, SectionVWorkload, Simulation,
};

/// `Marketplace::serve_batch` over the Section V workload produces the same
/// aggregate revenue, clicks, charges — and the same evolved strategy state
/// — as the pre-existing `Simulation` path, for every full-matrix method.
#[test]
fn serve_batch_matches_legacy_simulation_on_section_v() {
    let config = SectionVConfig {
        num_advertisers: 40,
        num_slots: 5,
        num_keywords: 4,
        seed: 20_08,
    };
    for (legacy_method, facade_method) in [
        (Method::Lp, WdMethod::Lp),
        (Method::H, WdMethod::Hungarian),
        (Method::Rh, WdMethod::Reduced),
    ] {
        let auctions = 250;
        let mut legacy = Simulation::new(SectionVWorkload::generate(config), legacy_method);
        for _ in 0..auctions {
            legacy.run_auction();
        }
        let mut facade = MarketSimulation::new(SectionVWorkload::generate(config), facade_method);
        facade.run_auctions(auctions);

        assert_eq!(
            facade.stats.auctions, legacy.stats.auctions,
            "{legacy_method:?}"
        );
        assert_eq!(
            facade.stats.clicks, legacy.stats.clicks,
            "{legacy_method:?}"
        );
        assert_eq!(
            facade.stats.charged_cents, legacy.stats.charged_cents,
            "{legacy_method:?}"
        );
        assert!(
            (facade.stats.total_expected_revenue - legacy.stats.total_expected_revenue).abs()
                < 1e-6,
            "{legacy_method:?}: facade {} vs legacy {}",
            facade.stats.total_expected_revenue,
            legacy.stats.total_expected_revenue
        );
        // The evolved strategy state agrees bid-for-bid: every advertiser's
        // bid on every keyword is identical after 250 auctions of clicks,
        // charges, and ROI adjustments.
        for adv in 0..config.num_advertisers {
            for keyword in 0..config.num_keywords {
                assert_eq!(
                    facade.bid_of(adv, keyword),
                    legacy.bid_of(adv, keyword),
                    "{legacy_method:?}: bid diverged for advertiser {adv} keyword {keyword}"
                );
            }
        }
    }
}

/// A facade driven one `serve` at a time equals one driven by `serve_batch`
/// — the typed single-query API and the chunked batch API are the same
/// pipeline.
#[test]
fn single_serve_equals_serve_batch_on_section_v() {
    let config = SectionVConfig {
        num_advertisers: 25,
        num_slots: 4,
        num_keywords: 3,
        seed: 99,
    };
    let workload = SectionVWorkload::generate(config);
    let mut one_by_one = MarketSimulation::new(workload.clone(), WdMethod::Reduced);
    let mut batched = MarketSimulation::new(workload, WdMethod::Reduced);
    for _ in 0..60 {
        one_by_one.run_auctions(1);
    }
    batched.run_auctions(60);
    assert_eq!(one_by_one.stats.clicks, batched.stats.clicks);
    assert_eq!(one_by_one.stats.charged_cents, batched.stats.charged_cents);
    assert!(
        (one_by_one.stats.total_expected_revenue - batched.stats.total_expected_revenue).abs()
            < 1e-6
    );
}

// ---------------------------------------------------------------------------
// Incremental updates ≡ re-registering from scratch.
// ---------------------------------------------------------------------------

const SLOTS: usize = 3;
const KEYWORDS: usize = 2;

fn builder(seed: u64) -> MarketplaceBuilder {
    Marketplace::builder()
        .slots(SLOTS)
        .keywords(KEYWORDS)
        .seed(seed)
        .default_click_probs(vec![0.7, 0.4, 0.2])
}

/// One campaign's final nominal state after a scripted update sequence.
#[derive(Debug, Clone)]
struct FinalState {
    bid: i64,
    paused: bool,
    roi_target: Option<u8>, // discrete targets keep the cap arithmetic exact
    click_value: i64,
}

fn apply_roi(target: Option<u8>) -> Option<f64> {
    target.map(|t| t as f64)
}

/// Replays `updates` incrementally on a served marketplace, then compares
/// every subsequent auction against a marketplace registered directly in
/// the final state: identical placements, charges, and revenue.
///
/// Both marketplaces fast-forward through the same warm-up queries, and a
/// warm-up auction consumes one RNG draw per filled slot. So the two RNG
/// streams stay aligned only if the initial state and the final state fill
/// the same number of slots: campaigns below index `SLOTS` are therefore
/// pinned active with a positive bid (which also keeps zero-bid campaigns
/// out of the optimum — a positive candidate always displaces them).
fn incremental_matches_fresh(
    mut initial: Vec<FinalState>,
    updates: Vec<(usize, i64, bool, Option<u8>)>,
    seed: u64,
) {
    for state in initial.iter_mut().take(SLOTS) {
        state.paused = false;
        state.bid = state.bid.max(1);
    }
    let updates: Vec<(usize, i64, bool, Option<u8>)> = updates
        .into_iter()
        .map(|(target, bid, paused, roi)| {
            let campaign = target % initial.len();
            if campaign < SLOTS {
                (campaign, bid.max(1), false, roi)
            } else {
                (campaign, bid, paused, roi)
            }
        })
        .collect();
    // Incremental path: register the initial states, serve a warm-up batch
    // (so engines exist and buffers are warm), then apply the updates
    // through the incremental API.
    let mut incremental = builder(seed).build().expect("valid configuration");
    let mut ids = Vec::new();
    for (i, state) in initial.iter().enumerate() {
        let adv = incremental.register_advertiser(format!("adv-{i}"));
        for keyword in 0..KEYWORDS {
            let mut spec = CampaignSpec::per_click(Money::from_cents(state.bid))
                .click_value(Money::from_cents(state.click_value));
            if let Some(t) = apply_roi(state.roi_target) {
                spec = spec.roi_target(t);
            }
            let id = incremental.add_campaign(adv, keyword, spec).expect("valid");
            if state.paused {
                incremental.pause_campaign(id).expect("known campaign");
            }
            ids.push(id);
        }
    }
    let warmup: Vec<QueryRequest> = (0..6).map(|i| QueryRequest::new(i % KEYWORDS)).collect();
    incremental.serve_batch(&warmup).expect("valid keywords");

    let mut finals = initial;
    for (campaign, bid, paused, roi) in updates {
        let state = &mut finals[campaign];
        state.bid = bid;
        state.paused = paused;
        state.roi_target = roi;
        for keyword in 0..KEYWORDS {
            let id = ids[campaign * KEYWORDS + keyword];
            incremental
                .update_bid(id, Money::from_cents(bid))
                .expect("per-click");
            incremental
                .set_roi_target(id, apply_roi(roi))
                .expect("per-click");
            if paused {
                incremental.pause_campaign(id).expect("known campaign");
            } else {
                incremental.resume_campaign(id).expect("known campaign");
            }
        }
    }

    // Fresh path: a new marketplace registered directly in the final state,
    // fast-forwarded through the same warm-up queries so both RNGs and both
    // market clocks line up before the comparison window.
    let mut fresh = builder(seed).build().expect("valid configuration");
    for (i, state) in finals.iter().enumerate() {
        let adv = fresh.register_advertiser(format!("adv-{i}"));
        for keyword in 0..KEYWORDS {
            let mut spec = CampaignSpec::per_click(Money::from_cents(state.bid))
                .click_value(Money::from_cents(state.click_value));
            if let Some(t) = apply_roi(state.roi_target) {
                spec = spec.roi_target(t);
            }
            let id = fresh.add_campaign(adv, keyword, spec).expect("valid");
            if state.paused {
                fresh.pause_campaign(id).expect("known campaign");
            }
        }
    }
    fresh.serve_batch(&warmup).expect("valid keywords");

    for round in 0..10 {
        let request = QueryRequest::new(round % KEYWORDS);
        let a = incremental.serve(request.clone()).expect("valid keyword");
        let b = fresh.serve(request).expect("valid keyword");
        assert_eq!(a, b, "divergence at round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `update_bid` / `pause_campaign` / `set_roi_target` leave the market
    /// in exactly the state a from-scratch registration would produce.
    #[test]
    fn incremental_updates_match_reregistration(
        initial in proptest::collection::vec(
            // Click values start at 40 so an ROI cap of at most 5 can bind
            // without crushing a pinned campaign's effective bid to zero.
            (0i64..60, any::<bool>(), proptest::option::of(1u8..5), 40i64..80).prop_map(
                |(bid, paused, roi_target, click_value)| FinalState {
                    bid,
                    paused,
                    roi_target,
                    click_value,
                }
            ),
            2..6,
        ),
        updates in proptest::collection::vec(
            (0usize..6, 0i64..60, any::<bool>(), proptest::option::of(1u8..5)),
            1..12,
        ),
        seed in 0u64..1000,
    ) {
        incremental_matches_fresh(initial, updates, seed);
    }
}
