//! # sponsored-search — expressive and scalable sponsored search auctions
//!
//! A from-scratch Rust reproduction of *Toward Expressive and Scalable
//! Sponsored Search Auctions* (Martin, Gehrke & Halpern, ICDE 2008,
//! arXiv:0809.0116). This umbrella crate re-exports the workspace members:
//!
//! * [`bidlang`] — the multi-feature bidding language (formulas over
//!   `Slotj` / `Click` / `Purchase`, OR-bid tables, 2-dependent events);
//! * [`minidb`] — the SQL engine that executes bidding programs
//!   (Section II-B);
//! * [`matching`] — Hungarian matching, the reduced-graph method, the
//!   threshold algorithm, parallel aggregation (Sections III & IV-A);
//! * [`simplex`] — the LP formulation and solvers (tableau + network
//!   simplex);
//! * [`strategy`] — the ROI-equalising heuristic (native and SQL) and
//!   logical updates (Sections II-C & IV-B);
//! * [`core`] — the auction engine: probability models, expected revenue,
//!   pricing, the heavyweight model (Sections III-A/E/F);
//! * [`workload`] — the Section V experimental workload and the
//!   four-method simulation.
//!
//! ## Architecture: the `WdSolver` pipeline
//!
//! Winner determination is unified behind [`matching::WdSolver`]: each
//! method (H, RH, parallel RH, LP) is a solver struct with persistent
//! scratch, constructed from a [`core::WdMethod`] via
//! `WdMethod::new_solver()`. The engine and the Section V simulation both
//! dispatch through it:
//!
//! ```text
//!                ssa_matching::WdSolver
//!       solve(&mut self, &RevenueMatrix, &mut Assignment)
//!        ▲            ▲            ▲              ▲
//!  HungarianSolver ReducedSolver ParallelReduced- NetworkSimplexSolver
//!  (method H)      (method RH)   Solver (RH ∥)    (method LP, ssa_simplex)
//!        ▲            ▲            ▲              ▲
//!        └────────────┴─────┬──────┴──────────────┘
//!                 WdMethod::new_solver()
//!                    ┌──────┴────────┐
//!        core::AuctionEngine   workload::Simulation
//!        (run_auction / run_batch / stream)
//! ```
//!
//! The batched entry points ([`core::AuctionEngine::run_batch`] and
//! [`core::AuctionEngine::stream`]) reuse one preallocated revenue matrix
//! (refilled in place by [`core::revenue_matrix_into`]) and one boxed
//! solver across the whole batch — no per-auction matrix allocation.
//!
//! ## Quickstart
//!
//! ```
//! use sponsored_search::core::{
//!     AuctionEngine, EngineConfig, TableBidder, WdMethod,
//! };
//! use sponsored_search::core::prob::{ClickModel, PurchaseModel};
//! use sponsored_search::core::pricing::PricingScheme;
//! use sponsored_search::bidlang::Money;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bidders = vec![
//!     TableBidder::per_click(Money::from_cents(10)),
//!     TableBidder::per_click(Money::from_cents(20)),
//! ];
//! let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
//! let purchases = PurchaseModel::never(2, 2);
//! let mut engine = AuctionEngine::new(
//!     bidders,
//!     clicks,
//!     purchases,
//!     1,
//!     EngineConfig { method: WdMethod::Reduced, pricing: PricingScheme::Gsp },
//! );
//! let report = engine.run_auction(0, &mut StdRng::seed_from_u64(1));
//! assert_eq!(report.assignment.slot_to_adv.len(), 2);
//! ```
//!
//! ## Batched serving (`run_batch`)
//!
//! On the hot path, hand the engine a whole query stream: one solver and
//! one matrix buffer serve every auction, and the aggregate comes back as
//! a [`core::BatchReport`]:
//!
//! ```
//! use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder};
//! use sponsored_search::core::prob::{ClickModel, PurchaseModel};
//! use sponsored_search::bidlang::Money;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bidders = vec![
//!     TableBidder::per_click(Money::from_cents(10)),
//!     TableBidder::per_click(Money::from_cents(20)),
//! ];
//! let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
//! let mut engine = AuctionEngine::new(
//!     bidders,
//!     clicks,
//!     PurchaseModel::never(2, 2),
//!     1,
//!     EngineConfig::default(),
//! );
//! let queries = vec![0usize; 500];
//! let report = engine.run_batch(&queries, &mut StdRng::seed_from_u64(1));
//! assert_eq!(report.auctions, 500);
//! assert_eq!(engine.now(), 500); // the clock advances per auction
//! assert!(report.expected_revenue > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use ssa_bidlang as bidlang;
pub use ssa_core as core;
pub use ssa_matching as matching;
pub use ssa_minidb as minidb;
pub use ssa_simplex as simplex;
pub use ssa_strategy as strategy;
pub use ssa_workload as workload;
