//! # sponsored-search — expressive and scalable sponsored search auctions
//!
//! A from-scratch Rust reproduction of *Toward Expressive and Scalable
//! Sponsored Search Auctions* (Martin, Gehrke & Halpern, ICDE 2008,
//! arXiv:0809.0116). This umbrella crate re-exports the workspace members:
//!
//! * [`bidlang`] — the multi-feature bidding language (formulas over
//!   `Slotj` / `Click` / `Purchase`, OR-bid tables, 2-dependent events);
//! * [`minidb`] — the SQL engine that executes bidding programs
//!   (Section II-B);
//! * [`matching`] — Hungarian matching, the reduced-graph method, the
//!   threshold algorithm, parallel aggregation (Sections III & IV-A);
//! * [`simplex`] — the LP formulation and solvers (tableau + network
//!   simplex);
//! * [`strategy`] — the ROI-equalising heuristic (native and SQL) and
//!   logical updates (Sections II-C & IV-B);
//! * [`core`] — the auction engine: probability models, expected revenue,
//!   pricing, the heavyweight model (Sections III-A/E/F);
//! * [`workload`] — the Section V experimental workload and the
//!   four-method simulation.
//!
//! ## Quickstart
//!
//! ```
//! use sponsored_search::core::{
//!     AuctionEngine, EngineConfig, TableBidder, WdMethod,
//! };
//! use sponsored_search::core::prob::{ClickModel, PurchaseModel};
//! use sponsored_search::core::pricing::PricingScheme;
//! use sponsored_search::bidlang::Money;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bidders = vec![
//!     TableBidder::per_click(Money::from_cents(10)),
//!     TableBidder::per_click(Money::from_cents(20)),
//! ];
//! let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
//! let purchases = PurchaseModel::never(2, 2);
//! let mut engine = AuctionEngine::new(
//!     bidders,
//!     clicks,
//!     purchases,
//!     1,
//!     EngineConfig { method: WdMethod::Reduced, pricing: PricingScheme::Gsp },
//! );
//! let report = engine.run_auction(0, &mut StdRng::seed_from_u64(1));
//! assert_eq!(report.assignment.slot_to_adv.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub use ssa_bidlang as bidlang;
pub use ssa_core as core;
pub use ssa_matching as matching;
pub use ssa_minidb as minidb;
pub use ssa_simplex as simplex;
pub use ssa_strategy as strategy;
pub use ssa_workload as workload;
