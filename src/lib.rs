//! # sponsored-search — expressive and scalable sponsored search auctions
//!
//! A from-scratch Rust reproduction of *Toward Expressive and Scalable
//! Sponsored Search Auctions* (Martin, Gehrke & Halpern, ICDE 2008,
//! arXiv:0809.0116). This umbrella crate re-exports the workspace members:
//!
//! * [`bidlang`] — the multi-feature bidding language (formulas over
//!   `Slotj` / `Click` / `Purchase`, OR-bid tables, 2-dependent events)
//!   and the typed attribute-targeting expression language
//!   ([`bidlang::targeting`]);
//! * [`minidb`] — the SQL engine that executes bidding programs
//!   (Section II-B);
//! * [`matching`] — Hungarian matching, the reduced-graph method, the
//!   threshold algorithm, parallel aggregation (Sections III & IV-A);
//! * [`simplex`] — the LP formulation and solvers (tableau + network
//!   simplex);
//! * [`strategy`] — the ROI-equalising heuristic (native and SQL) and
//!   logical updates (Sections II-C & IV-B);
//! * [`core`] — the auction engine: probability models, expected revenue,
//!   pricing, the heavyweight model (Sections III-A/E/F) — plus the
//!   [`marketplace`] service facade;
//! * [`workload`] — the Section V experimental workload, the four-method
//!   simulation (legacy harness and facade-native `MarketSimulation`),
//!   and the hostile-world generator (Zipf / flash-crowd / churn query
//!   shapes, defective targeting sources);
//! * [`net`] — the TCP serving front-end: a framed wire protocol over
//!   `std::net`, the `ssa-server` binary wrapping
//!   [`sharded::ShardedMarketplace`], and the `ssa-load` latency-reporting
//!   load driver;
//! * [`durable`] — crash recovery: a checksummed write-ahead log of every
//!   control-plane mutation and serve, periodic snapshots, and
//!   bit-identical replay.
//!
//! ## Architecture: the `Marketplace` facade over the `WdSolver` pipeline
//!
//! The public serving surface is the [`marketplace::Marketplace`]: a
//! long-lived service owning registered advertisers, per-keyword campaigns,
//! and one persistent engine+solver per keyword. Below it, winner
//! determination is unified behind [`matching::WdSolver`]: each method (H,
//! RH, parallel RH, LP) is a solver struct with persistent scratch,
//! constructed from a [`core::WdMethod`] via `WdMethod::new_solver()`:
//!
//! ```text
//!                    marketplace::Marketplace
//!      register_advertiser / add_campaign        update_bid / pause /
//!      serve(QueryRequest) / serve_batch         set_roi_target
//!                 │ one persistent engine              │ logical::
//!                 ▼ per keyword                        ▼ AdjustmentList
//!        core::AuctionEngine   workload::Simulation (legacy harness)
//!        (run_auction / run_batch / stream)
//!                    ┌──────┴────────┐
//!                 WdMethod::new_solver()
//!        ▲            ▲            ▲              ▲
//!  HungarianSolver ReducedSolver ParallelReduced- NetworkSimplexSolver
//!  (method H)      (method RH)   Solver (RH ∥)    (method LP, ssa_simplex)
//!        ▲            ▲            ▲              ▲
//!        └────────────┴─────┬──────┴──────────────┘
//!                ssa_matching::WdSolver
//!       solve(&mut self, &RevenueMatrix, &mut Assignment)
//! ```
//!
//! The batched entry points ([`core::AuctionEngine::run_batch`] and
//! [`core::AuctionEngine::stream`]) reuse one preallocated revenue matrix
//! (refilled in place by [`core::revenue_matrix_into`]) and one boxed
//! solver across the whole batch — no per-auction matrix allocation.
//! [`marketplace::Marketplace::serve_batch`] sits on top: it splits a
//! multi-keyword query stream into same-keyword chunks and feeds each to
//! that keyword's persistent engine, so there is no per-query allocation
//! either.
//!
//! ## Scaling out: the sharded marketplace
//!
//! [`sharded::ShardedMarketplace`] multiplies the facade across worker
//! threads: keywords are partitioned over `N` shards by a stable hash,
//! each shard owns its keywords' campaigns, engines, and solver scratch,
//! and `serve_batch` fans mixed-keyword streams out via
//! [`std::thread::scope`] workers, merging per-shard
//! [`core::BatchReport`]s in stream order. Control-plane calls
//! (`add_campaign`, `update_bid`, `pause_campaign`, `set_roi_target`)
//! route to the owning shard, preserving the `O(log n)` incremental path
//! per shard with no cross-shard locking.
//!
//! Sharding is an execution strategy with a proven equivalence guarantee:
//! every shard draws user actions from keyword-local RNG streams
//! ([`marketplace::MarketplaceBuilder::keyword_local_rng`]), so winners,
//! clicks, and charges are bit-identical for every shard count and equal
//! to an unsharded keyword-local marketplace on the same stream
//! (property-tested for shard counts 1/2/4/7). Pick `--shards` ≈ the
//! machine's core count when serving many keywords; stay on the
//! single-threaded `Marketplace` for cross-keyword-coupled bidding
//! programs (e.g. the shared-state ROI strategy), whose semantics depend
//! on global event order. See `examples/sharded_marketplace.rs` for a
//! runnable tour.
//!
//! ## Quickstart: the `Marketplace` facade
//!
//! ```
//! use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};
//! use sponsored_search::bidlang::Money;
//!
//! let mut market = Marketplace::builder()
//!     .slots(2)
//!     .keywords(1)
//!     .seed(2008)
//!     .default_click_probs(vec![0.8, 0.4])
//!     .build()
//!     .expect("valid configuration");
//! let shoes = market.register_advertiser("shoes.example");
//! let books = market.register_advertiser("books.example");
//! let c = market
//!     .add_campaign(shoes, 0, CampaignSpec::per_click(Money::from_cents(20)))
//!     .expect("campaign accepted");
//! market
//!     .add_campaign(books, 0, CampaignSpec::per_click(Money::from_cents(10)))
//!     .expect("campaign accepted");
//!
//! let response = market.serve(QueryRequest::new(0)).expect("keyword 0 exists");
//! assert_eq!(response.placements.len(), 2);
//!
//! // Incremental updates route through the logical bid index — no engine
//! // rebuild, O(log n) per change.
//! market.update_bid(c, Money::from_cents(5)).expect("per-click campaign");
//! market.pause_campaign(c).expect("known campaign");
//! let response = market.serve(QueryRequest::new(0)).expect("keyword 0 exists");
//! assert_eq!(response.placements.len(), 1); // paused ads are never shown
//! ```
//!
//! ## SQL bidding programs (Section II-B)
//!
//! The paper's expressive core: advertisers submit *SQL bidding programs*
//! — schema, state, and triggers — and the provider runs them when
//! auctions begin. [`marketplace::CampaignSpec::sql_program`] registers
//! one as a first-class campaign: the embedded [`minidb`] engine parses
//! both scripts once at registration and runs them thereafter through its
//! prepared-statement layer ([`minidb::Database::prepare`] /
//! [`minidb::Params`] binding — no SQL text on the auction hot path).
//! Per auction the marketplace sets the shared `time`/`keyword`
//! variables, fires the program's `Query` trigger, submits its `Bids`
//! table, and (if the program declares an `Outcome` table) reports
//! settlement back through an outcome trigger — so strategies like
//! Figure 5's "Equalize ROI", bookkeeping included, live entirely in SQL.
//! A program that errors at auction time is excluded from the matching
//! rather than taking serving down ([`core::SqlProgramBidder`] keeps the
//! error for diagnosis).
//!
//! ```
//! use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};
//! use sponsored_search::minidb::Params;
//!
//! let mut market = Marketplace::builder()
//!     .slots(1)
//!     .default_click_probs(vec![0.5])
//!     .build()
//!     .expect("valid configuration");
//! let adv = market.register_advertiser("programmed.example");
//! market
//!     .add_campaign(
//!         adv,
//!         0,
//!         CampaignSpec::sql_program(
//!             "CREATE TRIGGER bid AFTER INSERT ON Query
//!              { UPDATE Bids SET value = value + 1; }",
//!             "CREATE TABLE Query (kw INT);
//!              CREATE TABLE Bids (formula TEXT, value INT);
//!              INSERT INTO Bids VALUES ('Click', :start);",
//!             &Params::new().bind("start", 10),
//!         )
//!         .expect("well-formed program"),
//!     )
//!     .expect("campaign accepted");
//! let response = market.serve(QueryRequest::new(0)).expect("keyword 0 exists");
//! assert_eq!(response.placements.len(), 1); // bid 11¢ on the first auction
//! ```
//!
//! The Section II-B population runs at marketplace scale:
//! `ssa_workload::sql` builds every Section V advertiser as a
//! keyword-local Figure 5 ROI program — native Rust or SQL — and proves
//! the two populations bit-identical through `serve_batch`, sharded and
//! not (`reproduce --strategy <native|sql>` measures the interpreter's
//! overhead; see `examples/sql_campaign.rs` for a runnable tour).
//!
//! ## Query planning and compiled triggers
//!
//! Below the prepared-statement surface, [`minidb`] executes through an
//! explicit logical → physical plan split. `prepare` (and trigger
//! installation) lowers each statement once: columns become row offsets
//! and every predicate/SET/projection expression compiles to a flat
//! op-sequence evaluated without AST recursion. Equality-probed
//! `INT`/`TEXT` columns get secondary hash indexes, built on demand by a
//! tiny planner that chooses index-lookup vs scan per statement and
//! maintained incrementally on every mutation (posting lists stay in
//! scan order; NULLs are never indexed, matching three-valued
//! equality). Whole scripts are planned once per catalog version and
//! memoised by their owners — prepared statements and trigger bodies
//! revalidate one version number per execution, and DDL transparently
//! replans.
//!
//! The planner is held to an equivalence guarantee: planned + indexed +
//! compiled execution is bit-identical to the reference tree-walking
//! interpreter, which stays reachable as a forced-scan mode
//! (`SSA_MINIDB_FORCE_SCAN=1` or [`minidb::Database::set_planner_mode`])
//! and backs a proptest equivalence suite plus the three-way
//! (`native|sql|sql-reparse`) Section V workload check.
//! [`minidb::Database::explain`] (and the `EXPLAIN` statement) report
//! the chosen access path without executing — provably without
//! disturbing RNG or trigger state — and planner counters
//! (`index_hits`, `rows_scanned`, `plans_cached`) flow through
//! `reproduce --strategy sql --json` so CI tracks whether the index
//! path actually served.
//!
//! ## Low-level escape hatch: driving `AuctionEngine` by hand
//!
//! The facade covers the service use case; the engine stays public for
//! callers assembling a single-keyword auction themselves:
//!
//! ```
//! use sponsored_search::core::{
//!     AuctionEngine, EngineConfig, TableBidder, WdMethod,
//! };
//! use sponsored_search::core::prob::{ClickModel, PurchaseModel};
//! use sponsored_search::core::pricing::PricingScheme;
//! use sponsored_search::bidlang::Money;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bidders = vec![
//!     TableBidder::per_click(Money::from_cents(10)),
//!     TableBidder::per_click(Money::from_cents(20)),
//! ];
//! let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
//! let purchases = PurchaseModel::never(2, 2);
//! let mut engine = AuctionEngine::new(
//!     bidders,
//!     clicks,
//!     purchases,
//!     1,
//!     EngineConfig {
//!         method: WdMethod::Reduced,
//!         pricing: PricingScheme::Gsp,
//!         ..EngineConfig::default()
//!     },
//! );
//! let report = engine.run_auction(0, &mut StdRng::seed_from_u64(1));
//! assert_eq!(report.assignment.slot_to_adv.len(), 2);
//! ```
//!
//! ## Batched serving (`run_batch`)
//!
//! On the hot path, hand the engine a whole query stream: one solver and
//! one matrix buffer serve every auction, and the aggregate comes back as
//! a [`core::BatchReport`]:
//!
//! ```
//! use sponsored_search::core::{AuctionEngine, EngineConfig, TableBidder};
//! use sponsored_search::core::prob::{ClickModel, PurchaseModel};
//! use sponsored_search::bidlang::Money;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let bidders = vec![
//!     TableBidder::per_click(Money::from_cents(10)),
//!     TableBidder::per_click(Money::from_cents(20)),
//! ];
//! let clicks = ClickModel::from_rows(&[vec![0.8, 0.4], vec![0.6, 0.3]]);
//! let mut engine = AuctionEngine::new(
//!     bidders,
//!     clicks,
//!     PurchaseModel::never(2, 2),
//!     1,
//!     EngineConfig::default(),
//! );
//! let queries = vec![0usize; 500];
//! let report = engine.run_batch(&queries, &mut StdRng::seed_from_u64(1));
//! assert_eq!(report.auctions, 500);
//! assert_eq!(engine.now(), 500); // the clock advances per auction
//! assert!(report.expected_revenue > 0.0);
//! ```
//!
//! ## Solver hot path: phase metrics, pruning, warm starts
//!
//! The batch loop is instrumented and optimised around one invariant:
//! **every fast path is bit-identical to the full cold solve**.
//!
//! * **Phase metrics** — every [`core::BatchReport`] carries a
//!   [`core::PhaseStats`]: nanoseconds spent in program evaluation,
//!   matrix fill, the solve itself, pricing, and settlement, plus solve /
//!   warm-solve / candidate counters. Shards absorb their workers' stats,
//!   and `reproduce --json` (and the text mode's `phases:` line) surface
//!   them so a regression names the phase that slowed down. Timings are
//!   excluded from report equality — two runs compare on outcomes.
//! * **Top-k pruning** ([`marketplace::MarketplaceBuilder::pruned`],
//!   `EngineConfig::pruned`) — [`matching::PrunedSolver`] wraps any inner
//!   solver: with `k` slots, only advertisers reaching a per-slot top-k
//!   floor can win, so it solves the candidate submatrix instead of all
//!   `n` rows. Ties at the floor are kept, candidate reindexing is
//!   monotone, and duplicate candidate rows force a full-matrix fallback
//!   (a dominated row's augmenting pass can re-route *tied* winners), so
//!   outcomes are bit-identical — property-tested across all four
//!   methods, sharded and not.
//! * **Warm starts** (`EngineConfig::warm_start`, default on) — the
//!   engine diffs the bid table between auctions, refreshes only dirty
//!   rows of the persistent revenue matrix, and skips the solve entirely
//!   when nothing changed; solvers are deterministic, so the previous
//!   assignment *is* the solution.
//! * **Slot-major matrix layout** — [`matching::RevenueMatrix`] stores
//!   `data[slot * n + adv]`, so the per-slot column scans of the solvers
//!   (and the pruning floor pass) walk contiguous memory.
//!
//! `reproduce --method h --quick --pruned --json` runs the paired
//! configuration CI tracks: identical outcome fields, smaller
//! `avg_candidates`, and a shrunken `solve_ms`.
//!
//! ## Serving over the network: `ssa_net`
//!
//! [`net`] puts the sharded marketplace behind a TCP socket with nothing
//! but `std::net` — no async runtime. Messages travel in length-prefixed
//! frames (`[len][version][kind][request_id][payload]`, little-endian,
//! capped at [`net::MAX_FRAME`]) whose payloads encode a typed
//! [`net::Request`]/[`net::Response`] pair; malformed input — truncated
//! frames, oversized length prefixes, unknown tags — comes back as a
//! typed [`net::ProtoError`], never a panic or an unbounded allocation.
//!
//! The server ([`net::Server`], shipped as the `ssa-server` binary) keeps
//! a single executor thread that owns the marketplace; per-connection
//! reader threads decode and *admit* requests through bounded per-shard
//! admission lanes ([`net::Admission`]), so a flood of data-plane traffic
//! degrades into typed `Overloaded { retry_after_ms }` responses instead
//! of unbounded queueing. Control-plane calls (campaign registration, bid
//! updates, pause/resume, ROI targets, stats) bypass the data-plane lanes.
//! Graceful shutdown drains every in-flight request before the socket
//! closes. The serving contract is the same equivalence guarantee the
//! sharded marketplace proves in-process: a seeded Section V stream served
//! over the wire is **bit-identical** to `serve_batch` in process, at any
//! shard count (`ssa-load --verify` checks exactly this; so does
//! `reproduce --server <addr>`).
//!
//! ```text
//! cargo run --release --bin ssa-server -- --addr 127.0.0.1:7878
//! cargo run --release --bin ssa-load -- --addr 127.0.0.1:7878 --quick \
//!     --report bench-report.json       # QPS + p50/p99/max latency
//! ```
//!
//! See `examples/net_quickstart.rs` for the client API end to end.
//!
//! ## Durability: write-ahead log + snapshot recovery
//!
//! [`durable`] makes a served marketplace survive crashes. The key
//! observation is that serving is already deterministic — clicks,
//! purchases, and charges are drawn from seeded per-keyword RNG streams —
//! so the journal records *operations*, not outcomes, and replay
//! re-derives every outcome (and every RNG position) bit-identically.
//!
//! A data directory holds two kinds of files:
//!
//! ```text
//! data/
//! ├── snapshot-00000000000000004096.snap   # full MarketState at seq 4096
//! └── wal-00000000000000004097.log         # every operation since
//!
//! segment  = [magic "SSAWAL\0\0"][version u32][first_seq u64]  (20 bytes)
//!            followed by records:
//! record   = [payload_len u32][crc32 u32][payload]
//! payload  = [seq u64][op: Configure | Register | AddCampaign |
//!                          UpdateBid | Pause | Resume | SetRoi |
//!                          Serve | ServeBatch]
//! ```
//!
//! Every control-plane mutation and every serve appends one checksummed
//! record ([`durable::Durability::journal`] plugs into
//! [`sharded::ShardedMarketplace::set_journal`]). A crash can tear at
//! most the final record; recovery ([`durable::recover`]) truncates the
//! torn tail, replays snapshot ∘ log, and returns a marketplace whose
//! stored bids, top-bid indexes, and *future auction outcomes* are
//! bit-identical to the pre-crash instance — property-tested across
//! every byte-level truncation point and shard counts 1/2/4. Floats
//! travel as raw IEEE-754 bits end to end, so "bit-identical" is meant
//! literally.
//!
//! Two fsync policies trade durability for latency
//! ([`durable::FsyncPolicy`]): `Off` (default) flushes each record to the
//! OS page cache — it survives process kills (`kill -9`) but not power
//! loss; `Always` issues `fdatasync` per record plus directory syncs on
//! rotation — it survives power loss at a large per-record cost. Periodic
//! snapshots ([`durable::Durability::maybe_snapshot`]) bound replay time
//! and compact the log: after a snapshot lands, older segments and
//! snapshots are deleted.
//!
//! `ssa-server --data-dir <dir>` wires this into the TCP front-end
//! (`--fsync always|off`, `--snapshot-every <n>`); on boot it prints a
//! `ssa-server recovered wal_records=… snapshot_bytes=… replay_ms=…`
//! line that the crash-recovery CI job asserts on, and `ssa-load
//! --verify --skip <n>` replays a workload's tail against the recovered
//! server to prove the restart lost nothing. See
//! `examples/durable_restart.rs` for the library-level loop.
//!
//! ## Targeting and workload shapes
//!
//! Queries carry an optional bag of typed user attributes
//! ([`core::UserAttrs`]: the conventional `geo`/`device`/`segment` keys
//! plus arbitrary string/integer customs), and a campaign may attach a
//! *targeting expression* over them
//! ([`marketplace::CampaignSpec::targeting`]):
//!
//! ```text
//! geo = 'us' and (device = 'mobile' or segment in ('sports', 'autos'))
//!     and not age < 21
//! ```
//!
//! The source parses once at registration into a
//! [`bidlang::targeting::TargetExpr`] AST and compiles to a postfix
//! bytecode program ([`bidlang::targeting::CompiledTargeting`]); the
//! serve hot path runs a fixed-stack bytecode loop — no allocation, no
//! recursion, no re-parsing per auction. A campaign whose expression
//! rejects the query's attributes is excluded from the matching (a
//! zero-revenue row the reduced method then drops, visible as a smaller
//! `avg_candidates`). Three guarantees hold:
//!
//! * **Untargeted markets ignore attributes bit-for-bit** — serving any
//!   attribute bag to a market with no targeting anywhere is
//!   bit-identical to serving the bare keyword, at every shard count,
//!   over the wire, and after WAL recovery (property-tested in
//!   `tests/targeting.rs`).
//! * **Hostile sources fail typed** — defective expressions (unbalanced
//!   parens, depth bombs, type confusion) are rejected at registration
//!   with [`marketplace::MarketError::InvalidTargeting`] in process and
//!   [`net::ErrorCode::InvalidTargeting`] over the wire, leaving the
//!   market untouched.
//! * **Missing means no** — an absent attribute fails every comparison
//!   on its key, `!=` included; ordered comparisons hold only between
//!   two integers.
//!
//! ```
//! use sponsored_search::marketplace::{CampaignSpec, Marketplace, QueryRequest};
//! use sponsored_search::core::UserAttrs;
//! use sponsored_search::bidlang::Money;
//!
//! let mut market = Marketplace::builder()
//!     .slots(1)
//!     .default_click_probs(vec![0.5])
//!     .build()
//!     .expect("valid configuration");
//! let adv = market.register_advertiser("mobile-first.example");
//! market
//!     .add_campaign(
//!         adv,
//!         0,
//!         CampaignSpec::per_click(Money::from_cents(20)).targeting("device = 'mobile'"),
//!     )
//!     .expect("well-formed targeting");
//! let mobile = market
//!     .serve(QueryRequest::with_attrs(0, UserAttrs::new().device("mobile")))
//!     .expect("keyword 0 exists");
//! assert_eq!(mobile.placements.len(), 1);
//! let desktop = market
//!     .serve(QueryRequest::with_attrs(0, UserAttrs::new().device("desktop")))
//!     .expect("keyword 0 exists");
//! assert!(desktop.placements.is_empty()); // targeting excluded the only campaign
//! ```
//!
//! The data-plane counterpart is the hostile-world workload generator
//! ([`workload::WorkloadShape`]): seeded, reproducible query streams
//! that are deliberately unkind to a sharded serving layer — `zipf:<s>`
//! (Zipf-skewed keyword popularity), `flash` (a flash crowd pinning the
//! middle half of the stream to one keyword, hence one shard), `churn`
//! (pauses, resumes, and re-bids interleaved with serving), with
//! `uniform` as the paper's baseline under the same flag.
//! [`workload::ShardSkew`] summarises how unevenly a stream routes
//! across a shard count (per-shard queue depths, p50/p99,
//! max-over-mean), and [`workload::defective_targeting_sources`]
//! generates the targeting attack corpus above. The harnesses expose
//! all of it:
//!
//! ```text
//! reproduce --workload zipf:1.1 --shards 4 --json   # per-shard skew in the JSON row
//! reproduce --targeted --shards 2 --json            # candidate drop under targeting
//! ssa-load --addr <host:port> --workload zipf:1.1   # the same shapes over the wire
//! ```
//!
//! CI's perf-smoke job tracks both rows on every push. See
//! `examples/targeted_campaign.rs` for a runnable tour.

#![forbid(unsafe_code)]

pub use ssa_bidlang as bidlang;
pub use ssa_core as core;
/// The `Marketplace` service facade, re-exported from [`core`] for
/// discoverability: `sponsored_search::marketplace::Marketplace` is the
/// recommended entry point.
pub use ssa_core::marketplace;
/// The sharded, multi-threaded serving layer, re-exported from [`core`]:
/// `sponsored_search::sharded::ShardedMarketplace` scales the facade
/// across worker threads with bit-identical auction outcomes.
pub use ssa_core::sharded;
/// Crash recovery: the write-ahead log, snapshots, and `recover` — see
/// the "Durability" section above.
pub use ssa_durable as durable;
pub use ssa_matching as matching;
pub use ssa_minidb as minidb;
/// The TCP serving front-end: framed wire protocol, `Server`/`Client`,
/// bounded admission, and the load-driver library behind `ssa-load`.
pub use ssa_net as net;
pub use ssa_simplex as simplex;
pub use ssa_strategy as strategy;
pub use ssa_workload as workload;
