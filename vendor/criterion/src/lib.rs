//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because the build environment has no network access to a
//! crates registry.
//!
//! It implements the surface this workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with simple
//! mean-of-samples timing instead of criterion's statistical machinery.
//! Each benchmark prints one line: `group/id  time: <mean> per iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured samples per benchmark unless overridden via
/// [`Criterion::sample_size`] / [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level benchmark driver (a stub of the real criterion struct).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments for API compatibility with the
    /// real `criterion_main!` expansion.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default sample count for subsequent benchmarks/groups.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, self.sample_size, f);
        self
    }

    /// Prints the trailing summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmarks `f`, handing it a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", 500)` displays as `algo/500`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample`
    /// back-to-back iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // One warm-up sample, then `sample_size` measured samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let iters = bencher.iters_per_sample * bencher.samples.len() as u64;
    let mean = total / iters.max(1) as u32;
    println!("{label:<50} time: {mean:>12.3?} per iter");
}

/// Collects benchmark functions into a runnable group, mirroring the real
/// macro's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u64, |b, &x| {
            b.iter(|| {
                calls += x;
            })
        });
        group.finish();
        // 1 warm-up + 3 measured samples, 1 iteration each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("algo", 500).to_string(), "algo/500");
    }
}
