//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 series), vendored because the build environment has no
//! network access to a crates registry.
//!
//! Only the surface actually used by this workspace is provided:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` (half-open and
//!   inclusive integer/float ranges) and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator seeded via
//!   SplitMix64.
//!
//! The generator is *not* the upstream ChaCha-based `StdRng`, so exact
//! random streams differ from the real crate — everything in this
//! workspace only relies on determinism for a fixed seed, which holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`)
    /// or inclusive (`a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (via SplitMix64
    /// expansion, so nearby seeds yield unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // Rejection sampling to avoid modulo bias.
                let two64: u128 = 1 << 64;
                let limit = two64 - two64 % span;
                loop {
                    let v = rng.next_u64() as u128;
                    if v < limit {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = f64::sample_inclusive(rng, self.start, self.end);
        // lo + unit*(hi-lo) can round up onto the excluded end; the
        // half-open contract requires result < end.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = f32::sample_inclusive(rng, self.start, self.end);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for the upstream
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw generator state. Together with [`StdRng::from_state`]
        /// this allows checkpoint/restore of a stream position (used by
        /// the durability layer to snapshot per-keyword RNG streams).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u16..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen_range(-5i64..=-1);
            assert!((-5..=-1).contains(&x));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
