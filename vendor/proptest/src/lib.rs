//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because
//! the build environment has no network access to a crates registry.
//!
//! Supported surface (exactly what this workspace's property suites use):
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`;
//! * range strategies (`0..10`, `1..=5`, `0.0..1.0`), tuple strategies up
//!   to arity 6, [`Just`], `any::<T>()`, [`collection::vec`],
//!   [`option::of`] and the [`prop_oneof!`] union (weighted and
//!   unweighted);
//! * the [`proptest!`] test macro with `#![proptest_config(...)]` and
//!   [`ProptestConfig::with_cases`];
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! **No shrinking is performed**: a failing case panics immediately with
//! the case number. Generation is fully deterministic — the RNG is seeded
//! from the test function's name — so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::rc::Rc;

pub mod test_runner;

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value. (Upstream proptest builds a shrinkable value
    /// tree; this shim generates directly.)
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf, `recurse` wraps an inner
    /// strategy into a deeper one, nesting at most `depth` levels. The
    /// `_desired_size` / `_expected_branch_size` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so all depths from 0 to
            // `depth` are reachable (weighted toward recursing).
            let deeper = recurse(strat).boxed();
            strat = Union {
                arms: vec![(1, leaf.clone()), (3, deeper)],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen_value(rng)))
    }
}

/// A type-erased, cheaply cloneable [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.random_index(total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from regex-like patterns (`input in ".{0,200}"`).
///
/// Supports the subset of regex syntax the workspace uses: literal
/// characters, `.` (any printable-ish char, occasionally non-ASCII),
/// character classes `[a-z0-9_]`, and the quantifiers `{m,n}`, `{n}`,
/// `*`, `+`, `?`. Unsupported syntax panics at generation time.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        string_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum PatternAtom {
    Any,
    Literal(char),
    Class(Vec<(char, char)>),
}

fn gen_any_char(rng: &mut TestRng) -> char {
    // Mostly printable ASCII, with occasional control / non-ASCII chars
    // so parser fuzzing still sees hostile input.
    match rng.gen_range(0u32..20) {
        0 => char::from_u32(rng.gen_range(1u32..32)).unwrap_or('\u{1}'),
        1 => char::from_u32(rng.gen_range(0x80u32..0x2FFF)).unwrap_or('\u{FF}'),
        _ => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap(),
    }
}

fn string_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => PatternAtom::Any,
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                PatternAtom::Class(ranges)
            }
            '\\' => PatternAtom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '(' | ')' | '|' | '^' | '$' => panic!(
                "unsupported regex syntax {c:?} in pattern {pattern:?}: the vendored \
                 proptest shim only supports literals, '.', classes and quantifiers"
            ),
            ch => PatternAtom::Literal(ch),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().unwrap_or(0),
                        b.trim().parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            match &atom {
                PatternAtom::Any => out.push(gen_any_char(rng)),
                PatternAtom::Literal(ch) => out.push(*ch),
                PatternAtom::Class(ranges) => {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    let span = b as u32 - a as u32;
                    let pick = rng.gen_range(0u32..=span);
                    out.push(char::from_u32(a as u32 + pick).unwrap_or(a));
                }
            }
        }
    }
    out
}

/// Types with a canonical "anything" strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        AnyFn(|rng: &mut TestRng| rng.gen_bool(0.5)).boxed()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                AnyFn(|rng: &mut TestRng| rng.gen()).boxed()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary() -> BoxedStrategy<f64> {
        AnyFn(|rng: &mut TestRng| rng.gen()).boxed()
    }
}

struct AnyFn<F>(F);

impl<F, T> Strategy for AnyFn<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Some` from the inner strategy about 3/4 of the time,
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Union of strategies; arms may be `strategy` or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property; panics (no shrinking) with the
/// failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10i64, v in proptest::collection::vec(any::<bool>(), 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::seed_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                let __run = move || { $body };
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest: property {} failed at case {}/{} (deterministic; re-run reproduces)",
                        stringify!($name), __case + 1, __config.cases,
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
