//! The deterministic RNG driving value generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic generator handed to [`crate::Strategy::gen_value`].
///
/// Seeded from the property's function name, so every run of a given test
/// binary sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator from an arbitrary label (FNV-1a hash).
    pub fn seed_for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// Uniform index in `[0, n)` — used by weighted unions.
    pub fn random_index(&mut self, n: u64) -> u64 {
        use rand::Rng;
        self.0.gen_range(0..n)
    }

    /// Delegates to [`rand::Rng::gen_range`].
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: rand::SampleRange<T>,
    {
        use rand::Rng;
        self.0.gen_range(range)
    }

    /// Delegates to [`rand::Rng::gen_bool`].
    pub fn gen_bool(&mut self, p: f64) -> bool {
        use rand::Rng;
        self.0.gen_bool(p)
    }

    /// Delegates to [`rand::Rng::gen`].
    pub fn gen<T: rand::StandardSample>(&mut self) -> T {
        use rand::Rng;
        self.0.gen()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
