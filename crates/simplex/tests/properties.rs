//! Property tests: LP ≡ network simplex ≡ Hungarian, and Chvátal
//! integrality of the assignment LP.

use proptest::prelude::*;
use ssa_matching::{max_weight_assignment, RevenueMatrix, EXCLUDED};
use ssa_simplex::{assignment_lp, network_simplex_assignment, solve_assignment_lp};

fn arb_matrix(max_n: usize, max_k: usize) -> impl Strategy<Value = RevenueMatrix> {
    (1..=max_n, 1..=max_k).prop_flat_map(|(n, k)| {
        proptest::collection::vec(
            prop_oneof![
                6 => (0u32..2_000).prop_map(|v| v as f64 / 4.0),
                1 => Just(EXCLUDED),
                1 => Just(0.0),
            ],
            n * k,
        )
        .prop_map(move |cells| RevenueMatrix::from_fn(n, k, |i, j| cells[i * k + j]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chvátal integrality: the tableau simplex returns an integral vertex,
    /// and its value equals the combinatorial optimum. (`extract` panics on
    /// fractional solutions, so reaching the assertion proves integrality.)
    #[test]
    fn tableau_lp_is_integral_and_optimal(m in arb_matrix(6, 4)) {
        let via_lp = solve_assignment_lp(&m).unwrap();
        let hung = max_weight_assignment(&m);
        prop_assert!((via_lp.total_weight - hung.total_weight).abs() < 1e-6,
            "lp={} hungarian={}", via_lp.total_weight, hung.total_weight);
        prop_assert!(via_lp.is_valid(m.num_advertisers()));
    }

    /// The network simplex agrees with the Hungarian method on larger
    /// instances than the tableau can handle.
    #[test]
    fn network_simplex_optimal(m in arb_matrix(30, 6)) {
        let (a, stats) = network_simplex_assignment(&m);
        let hung = max_weight_assignment(&m);
        prop_assert!((a.total_weight - hung.total_weight).abs() < 1e-6,
            "net={} hungarian={} stats={stats:?}", a.total_weight, hung.total_weight);
        prop_assert!(a.is_valid(m.num_advertisers()));
        prop_assert!((a.weight_in(&m) - a.total_weight).abs() < 1e-6);
    }

    /// The LP builder creates exactly one variable per usable pair and one
    /// constraint per advertiser and slot.
    #[test]
    fn lp_shape(m in arb_matrix(8, 4)) {
        let lp = assignment_lp(&m);
        let usable = m.iter().filter(|&(_, _, w)| w != EXCLUDED).count();
        prop_assert_eq!(lp.vars.len(), usable);
        prop_assert_eq!(
            lp.program.constraints.len(),
            m.num_advertisers() + m.num_slots()
        );
        // Each variable appears in exactly two constraints with coefficient 1.
        for v in 0..lp.vars.len() {
            let count: f64 = lp.program.constraints.iter().map(|row| row[v]).sum();
            prop_assert!((count - 2.0).abs() < 1e-12);
        }
    }
}
