//! # ssa-simplex — linear programming solvers for winner determination
//!
//! The paper's experimental baseline ("method LP", Section V) solves the
//! winner-determination problem as a linear program with the GLPK simplex
//! solver. GLPK is not available to this reproduction, so this crate
//! implements the required solvers from scratch:
//!
//! * [`tableau`] — a dense tableau simplex with Bland's anti-cycling rule
//!   for general small LPs in standard form. Used to validate the LP
//!   formulation and to demonstrate *empirically* the Chvátal integrality
//!   property the paper proves: the assignment LP's optimum is integral
//!   because the constraint matrix rows are the maximal cliques of a
//!   perfect graph.
//! * [`lp`] — the assignment LP formulation itself (one variable per
//!   advertiser–slot pair, row-sum and column-sum constraints).
//! * [`netsimplex`] — the *network simplex* method specialised to the
//!   transportation form of the assignment problem. This is the scalable
//!   "LP" column of Figure 12: a genuine simplex method (tree bases, dual
//!   potentials, entering-arc pricing, cycle pivots) whose per-pivot
//!   full-arc Dantzig pricing makes it roughly an order of magnitude slower
//!   than the Hungarian specialisation, as the paper observes for GLPK.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lp;
pub mod netsimplex;
pub mod tableau;

pub use lp::{assignment_lp, solve_assignment_lp, AssignmentLp};
pub use netsimplex::{network_simplex_assignment, NetworkSimplexSolver, NetworkSimplexStats};
pub use tableau::{LinearProgram, LpError, LpSolution};
