//! Network simplex for the transportation form of winner determination.
//!
//! This is the crate's scalable "LP" solver: the simplex method specialised
//! to the assignment polytope. The winner-determination LP is modelled as a
//! balanced transportation problem:
//!
//! * sources: the `n` advertisers (supply 1 each) plus a *dummy advertiser*
//!   with supply `k` (it "fills" slots that are better left empty);
//! * sinks: the `k` slots (demand 1 each) plus a *dummy slot* with demand
//!   `n` (it absorbs advertisers that win nothing);
//! * arc costs: `-w(i, j)` for real pairs (we minimise), `0` on every dummy
//!   arc, and a large penalty on [`EXCLUDED`] pairs (never used at the
//!   optimum because the dummies provide zero-cost alternatives).
//!
//! The implementation keeps a spanning-tree basis with node potentials,
//! prices entering arcs with a full-arc Dantzig scan (`O(nk)` per pivot —
//! the "straightforward simplex" cost profile the paper's GLPK baseline
//! exhibits), pivots along the unique tree cycle, and falls back to Bland's
//! rule after long degenerate stretches to guarantee termination on the
//! (maximally degenerate) assignment problem.
//!
//! [`NetworkSimplexSolver`] implements
//! [`WdSolver`] with persistent scratch: the basis,
//! tree arrays, and per-pivot adjacency/cycle buffers are reused across
//! solves, which removes the per-pivot allocation that otherwise dominates
//! repeated runs.

use ssa_matching::solver::WdSolver;
use ssa_matching::{Assignment, RevenueMatrix, EXCLUDED};

/// Cost stand-in for excluded arcs. Large enough to never be chosen while
/// staying far from `f64` precision limits when summed with potentials.
const BIG: f64 = 1e12;
/// Reduced-cost tolerance.
const TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const BLAND_TRIGGER: usize = 64;

/// Counters describing a network-simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkSimplexStats {
    /// Total pivots performed.
    pub pivots: usize,
    /// Pivots with zero flow change (degenerate).
    pub degenerate_pivots: usize,
    /// Pivots performed under Bland's rule.
    pub bland_pivots: usize,
}

#[derive(Debug, Clone, Copy)]
struct BasicArc {
    source: usize, // 0..=n (n = dummy advertiser)
    sink: usize,   // 0..=k (k = dummy slot)
    flow: i64,
}

/// Method **LP** as a reusable [`WdSolver`]: network simplex with a
/// spanning-tree basis whose bookkeeping buffers persist across solves.
#[derive(Debug, Default, Clone)]
pub struct NetworkSimplexSolver {
    // Problem dimensions of the solve in progress.
    n: usize,
    k: usize,
    basis: Vec<BasicArc>,
    // Tree bookkeeping, rebuilt after each pivot. Node ids: sources are
    // 0..=n, sinks are n+1 ..= n+1+k.
    parent: Vec<usize>,
    parent_arc: Vec<usize>,
    depth: Vec<usize>,
    potential: Vec<f64>,
    // Per-rebuild / per-pivot scratch.
    adjacency: Vec<Vec<(usize, usize)>>,
    dfs_stack: Vec<usize>,
    cycle_from_sink: Vec<(usize, bool)>,
    cycle_from_source: Vec<(usize, bool)>,
    stats: NetworkSimplexStats,
}

impl NetworkSimplexSolver {
    /// Creates a solver with empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        NetworkSimplexSolver::default()
    }

    /// Statistics of the most recent solve.
    pub fn last_stats(&self) -> NetworkSimplexStats {
        self.stats
    }

    /// Solves winner determination for `matrix` into `out`, returning run
    /// statistics.
    pub fn solve_with_stats(
        &mut self,
        matrix: &RevenueMatrix,
        out: &mut Assignment,
    ) -> NetworkSimplexStats {
        let n = matrix.num_advertisers();
        let k = matrix.num_slots();
        self.n = n;
        self.k = k;
        self.stats = NetworkSimplexStats::default();
        out.reset(k);
        if n == 0 {
            return self.stats;
        }

        self.basis.clear();
        self.northwest_corner();
        self.rebuild_tree(matrix);

        let mut degenerate_streak = 0usize;
        // Generous safety cap; the solver has always terminated far below
        // it.
        let max_pivots = 1000 + 64 * (n + k);
        while self.stats.pivots < max_pivots {
            let bland = degenerate_streak >= BLAND_TRIGGER;
            let Some((s, t)) = self.entering_arc(matrix, bland) else {
                break; // optimal
            };
            self.stats.pivots += 1;
            if bland {
                self.stats.bland_pivots += 1;
            }
            if self.pivot(matrix, s, t) {
                degenerate_streak = 0;
            } else {
                self.stats.degenerate_pivots += 1;
                degenerate_streak += 1;
            }
        }
        assert!(
            self.stats.pivots < max_pivots,
            "network simplex exceeded the pivot cap — anti-cycling failure"
        );

        for arc in &self.basis {
            if arc.flow > 0 && arc.source < n && arc.sink < k {
                let w = matrix.get(arc.source, arc.sink);
                debug_assert!(w != EXCLUDED, "flow on an excluded arc");
                // A zero-revenue match and an empty slot are LP-equivalent;
                // keep only strictly profitable matches for a canonical
                // assignment.
                if w > 0.0 {
                    out.slot_to_adv[arc.sink] = Some(arc.source);
                }
            }
        }
        // Sum the objective in slot order rather than basis-arc order: the
        // basis ordering depends on the pivot history, and float addition
        // is not associative — slot-order summation makes `total_weight` a
        // deterministic function of the assignment alone, so identical
        // assignments (e.g. full vs top-k-pruned solves) report
        // bit-identical totals.
        for (j, adv) in out.slot_to_adv.iter().enumerate() {
            if let Some(i) = adv {
                out.total_weight += matrix.get(*i, j);
            }
        }
        self.stats
    }

    fn sink_node(&self, t: usize) -> usize {
        self.n + 1 + t
    }

    fn cost(&self, matrix: &RevenueMatrix, s: usize, t: usize) -> f64 {
        if s < self.n && t < self.k {
            let w = matrix.get(s, t);
            if w == EXCLUDED {
                BIG
            } else {
                -w
            }
        } else {
            0.0
        }
    }

    /// Northwest-corner initial basic feasible solution: exactly
    /// `n + k + 1` basic arcs (degenerate zeros included).
    fn northwest_corner(&mut self) {
        let (n, k) = (self.n, self.k);
        let mut supply: Vec<i64> = vec![1; n];
        supply.push(k as i64); // dummy advertiser
        let mut demand: Vec<i64> = vec![1; k];
        demand.push(n as i64); // dummy slot
        let (mut s, mut t) = (0usize, 0usize);
        loop {
            let amount = supply[s].min(demand[t]);
            self.basis.push(BasicArc {
                source: s,
                sink: t,
                flow: amount,
            });
            supply[s] -= amount;
            demand[t] -= amount;
            if s == n && t == k {
                break;
            }
            if supply[s] == 0 && s < n {
                s += 1;
            } else {
                t += 1;
            }
        }
        debug_assert_eq!(self.basis.len(), n + k + 1);
    }

    /// Rebuilds parent/depth/potential arrays from the basis tree, reusing
    /// the adjacency and stack buffers.
    fn rebuild_tree(&mut self, matrix: &RevenueMatrix) {
        let m = self.n + self.k + 2;
        if self.adjacency.len() < m {
            self.adjacency.resize_with(m, Vec::new);
        }
        for adj in &mut self.adjacency[..m] {
            adj.clear();
        }
        for (idx, arc) in self.basis.iter().enumerate() {
            let a = arc.source;
            let b = self.n + 1 + arc.sink;
            self.adjacency[a].push((b, idx));
            self.adjacency[b].push((a, idx));
        }
        self.parent.clear();
        self.parent.resize(m, usize::MAX);
        self.parent_arc.clear();
        self.parent_arc.resize(m, usize::MAX);
        self.depth.clear();
        self.depth.resize(m, 0);
        self.potential.clear();
        self.potential.resize(m, 0.0);
        // Iterative DFS from root 0.
        let root = 0usize;
        self.parent[root] = root;
        self.dfs_stack.clear();
        self.dfs_stack.push(root);
        let mut visited = 1usize;
        while let Some(x) = self.dfs_stack.pop() {
            for idx in 0..self.adjacency[x].len() {
                let (y, arc_idx) = self.adjacency[x][idx];
                if self.parent[y] != usize::MAX {
                    continue;
                }
                self.parent[y] = x;
                self.parent_arc[y] = arc_idx;
                self.depth[y] = self.depth[x] + 1;
                let arc = self.basis[arc_idx];
                // Tree arcs have zero reduced cost:
                // cost = π[source] − π[sink].
                let c = self.cost(matrix, arc.source, arc.sink);
                if x == arc.source {
                    self.potential[y] = self.potential[x] - c;
                } else {
                    self.potential[y] = self.potential[x] + c;
                }
                visited += 1;
                self.dfs_stack.push(y);
            }
        }
        debug_assert_eq!(visited, m, "basis does not span all nodes");
    }

    fn reduced_cost(&self, matrix: &RevenueMatrix, s: usize, t: usize) -> f64 {
        self.cost(matrix, s, t) - self.potential[s] + self.potential[self.sink_node(t)]
    }

    /// Finds an entering arc; `bland` selects the first negative arc instead
    /// of the most negative.
    fn entering_arc(&self, matrix: &RevenueMatrix, bland: bool) -> Option<(usize, usize)> {
        let mut best: Option<((usize, usize), f64)> = None;
        for s in 0..=self.n {
            for t in 0..=self.k {
                let rc = self.reduced_cost(matrix, s, t);
                if rc < -TOL {
                    if bland {
                        return Some((s, t));
                    }
                    if best.map(|(_, b)| rc < b).unwrap_or(true) {
                        best = Some(((s, t), rc));
                    }
                }
            }
        }
        best.map(|(arc, _)| arc)
    }

    /// Pivots on the entering arc; returns `true` if the pivot moved flow.
    fn pivot(&mut self, matrix: &RevenueMatrix, s: usize, t: usize) -> bool {
        let source_node = s;
        let sink_node = self.sink_node(t);
        // Collect the tree path between the entering arc's endpoints by
        // climbing to the lowest common ancestor. `forward` = the cycle
        // (entering direction source→sink, then sink_node back to
        // source_node) traverses the arc in its own source→sink direction.
        self.cycle_from_sink.clear(); // climb sink_node → LCA
        self.cycle_from_source.clear(); // climb source_node → LCA
        let (mut x, mut y) = (sink_node, source_node);
        while self.depth[x] > self.depth[y] {
            let arc_idx = self.parent_arc[x];
            let forward = self.basis[arc_idx].source == x;
            self.cycle_from_sink.push((arc_idx, forward));
            x = self.parent[x];
        }
        while self.depth[y] > self.depth[x] {
            let arc_idx = self.parent_arc[y];
            // Cycle traverses these arcs parent→child, i.e. opposite of the
            // climb, so forward ⇔ the child is the arc's sink.
            let forward = self.sink_node_of_arc(arc_idx) == y;
            self.cycle_from_source.push((arc_idx, forward));
            y = self.parent[y];
        }
        while x != y {
            let ax = self.parent_arc[x];
            self.cycle_from_sink.push((ax, self.basis[ax].source == x));
            x = self.parent[x];
            let ay = self.parent_arc[y];
            self.cycle_from_source
                .push((ay, self.sink_node_of_arc(ay) == y));
            y = self.parent[y];
        }

        // θ = min flow over backward arcs.
        let mut theta = i64::MAX;
        let mut leaving: Option<usize> = None;
        for &(arc_idx, forward) in self.cycle_from_sink.iter().chain(&self.cycle_from_source) {
            if !forward {
                let f = self.basis[arc_idx].flow;
                if f < theta {
                    theta = f;
                    leaving = Some(arc_idx);
                }
            }
        }
        let leaving = leaving.expect("bipartite cycle must contain a backward arc");
        debug_assert!(theta >= 0);

        for &(arc_idx, forward) in self.cycle_from_sink.iter().chain(&self.cycle_from_source) {
            if forward {
                self.basis[arc_idx].flow += theta;
            } else {
                self.basis[arc_idx].flow -= theta;
            }
        }
        self.basis[leaving] = BasicArc {
            source: s,
            sink: t,
            flow: theta,
        };
        self.rebuild_tree(matrix);
        theta > 0
    }

    fn sink_node_of_arc(&self, arc_idx: usize) -> usize {
        self.sink_node(self.basis[arc_idx].sink)
    }
}

impl WdSolver for NetworkSimplexSolver {
    fn name(&self) -> &'static str {
        "network-simplex"
    }

    fn solve(&mut self, revenue: &RevenueMatrix, out: &mut Assignment) {
        self.solve_with_stats(revenue, out);
    }
}

/// Solves winner determination with the network simplex method. Returns the
/// optimal assignment (identical total weight to the Hungarian method) and
/// run statistics. One-shot convenience over [`NetworkSimplexSolver`].
pub fn network_simplex_assignment(matrix: &RevenueMatrix) -> (Assignment, NetworkSimplexStats) {
    let mut solver = NetworkSimplexSolver::new();
    let mut out = Assignment::empty(matrix.num_slots());
    let stats = solver.solve_with_stats(matrix, &mut out);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_matching::max_weight_assignment;

    /// Compile-time guard: the LP solver must stay `Send` so sharded
    /// serving layers can move it across threads with its engine.
    #[test]
    fn network_simplex_solver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NetworkSimplexSolver>();
    }

    #[test]
    fn figure9_matrix() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![8.0, 7.0],
            vec![7.0, 6.0],
            vec![7.0, 4.0],
        ]);
        let (a, stats) = network_simplex_assignment(&m);
        assert!((a.total_weight - 16.0).abs() < 1e-9);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        // The northwest-corner start happens to be optimal here, so the
        // solver may legitimately need zero pivots.
        let _ = stats;
    }

    #[test]
    fn excluded_and_negative_edges() {
        let m =
            RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![8.0, EXCLUDED], vec![-3.0, -4.0]]);
        let (a, _) = network_simplex_assignment(&m);
        assert!((a.total_weight - 13.0).abs() < 1e-9);
        assert_eq!(a.slot_to_adv, vec![Some(1), Some(0)]);
    }

    #[test]
    fn all_excluded_leaves_slots_empty() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED], vec![EXCLUDED]]);
        let (a, _) = network_simplex_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 3);
        let (a, stats) = network_simplex_assignment(&m);
        assert_eq!(a.num_assigned(), 0);
        assert_eq!(stats.pivots, 0);
    }

    #[test]
    fn more_slots_than_advertisers() {
        let m = RevenueMatrix::from_rows(&[vec![3.0, 7.0, 5.0]]);
        let (a, _) = network_simplex_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None, Some(0), None]);
        assert!((a.total_weight - 7.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_hungarian_on_pseudorandom_instances() {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 5000) as f64 / 100.0
        };
        for n in [1usize, 2, 5, 12, 40] {
            for k in [1usize, 2, 5, 8] {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let (lp, _) = network_simplex_assignment(&m);
                let hung = max_weight_assignment(&m);
                assert!(
                    (lp.total_weight - hung.total_weight).abs() < 1e-6,
                    "n={n} k={k}: network {} vs hungarian {}",
                    lp.total_weight,
                    hung.total_weight
                );
                assert!(lp.is_valid(n));
            }
        }
    }

    #[test]
    fn reused_solver_matches_fresh_across_sizes() {
        // One persistent solver over a stream of differently-sized
        // instances must agree with a fresh solve (and its stats accessor
        // must report the latest run).
        let mut solver = NetworkSimplexSolver::new();
        let mut out = Assignment::empty(1);
        let mut state = 0xFACEu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 4000) as f64 / 50.0
        };
        for (n, k) in [(6, 3), (1, 1), (12, 5), (0, 2), (6, 3)] {
            let m = RevenueMatrix::from_fn(n, k, |_, _| next());
            let stats = solver.solve_with_stats(&m, &mut out);
            let (fresh, fresh_stats) = network_simplex_assignment(&m);
            assert_eq!(out, fresh, "n={n} k={k}");
            assert_eq!(stats, fresh_stats, "n={n} k={k}");
            assert_eq!(solver.last_stats(), stats);
        }
    }

    #[test]
    fn integral_flows_throughout() {
        // Identical weights → maximal degeneracy; exercises the Bland
        // fallback. Correctness: any perfect matching of min(n, k) pairs.
        let m = RevenueMatrix::from_fn(10, 4, |_, _| 5.0);
        let (a, _stats) = network_simplex_assignment(&m);
        assert!((a.total_weight - 20.0).abs() < 1e-9);
        assert_eq!(a.num_assigned(), 4);
    }
}
