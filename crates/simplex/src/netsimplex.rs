//! Network simplex for the transportation form of winner determination.
//!
//! This is the crate's scalable "LP" solver: the simplex method specialised
//! to the assignment polytope. The winner-determination LP is modelled as a
//! balanced transportation problem:
//!
//! * sources: the `n` advertisers (supply 1 each) plus a *dummy advertiser*
//!   with supply `k` (it "fills" slots that are better left empty);
//! * sinks: the `k` slots (demand 1 each) plus a *dummy slot* with demand
//!   `n` (it absorbs advertisers that win nothing);
//! * arc costs: `-w(i, j)` for real pairs (we minimise), `0` on every dummy
//!   arc, and a large penalty on [`EXCLUDED`] pairs (never used at the
//!   optimum because the dummies provide zero-cost alternatives).
//!
//! The implementation keeps a spanning-tree basis with node potentials,
//! prices entering arcs with a full-arc Dantzig scan (`O(nk)` per pivot —
//! the "straightforward simplex" cost profile the paper's GLPK baseline
//! exhibits), pivots along the unique tree cycle, and falls back to Bland's
//! rule after long degenerate stretches to guarantee termination on the
//! (maximally degenerate) assignment problem.

use ssa_matching::{Assignment, RevenueMatrix, EXCLUDED};

/// Cost stand-in for excluded arcs. Large enough to never be chosen while
/// staying far from `f64` precision limits when summed with potentials.
const BIG: f64 = 1e12;
/// Reduced-cost tolerance.
const TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const BLAND_TRIGGER: usize = 64;

/// Counters describing a network-simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkSimplexStats {
    /// Total pivots performed.
    pub pivots: usize,
    /// Pivots with zero flow change (degenerate).
    pub degenerate_pivots: usize,
    /// Pivots performed under Bland's rule.
    pub bland_pivots: usize,
}

#[derive(Debug, Clone, Copy)]
struct BasicArc {
    source: usize, // 0..=n (n = dummy advertiser)
    sink: usize,   // 0..=k (k = dummy slot)
    flow: i64,
}

struct Solver<'a> {
    matrix: &'a RevenueMatrix,
    n: usize,
    k: usize,
    basis: Vec<BasicArc>,
    // Tree bookkeeping, rebuilt after each pivot. Node ids: sources are
    // 0..=n, sinks are n+1 ..= n+1+k.
    parent: Vec<usize>,
    parent_arc: Vec<usize>,
    depth: Vec<usize>,
    potential: Vec<f64>,
}

impl<'a> Solver<'a> {
    fn sink_node(&self, t: usize) -> usize {
        self.n + 1 + t
    }

    fn cost(&self, s: usize, t: usize) -> f64 {
        if s < self.n && t < self.k {
            let w = self.matrix.get(s, t);
            if w == EXCLUDED {
                BIG
            } else {
                -w
            }
        } else {
            0.0
        }
    }

    /// Northwest-corner initial basic feasible solution: exactly
    /// `n + k + 1` basic arcs (degenerate zeros included).
    fn northwest_corner(&mut self) {
        let (n, k) = (self.n, self.k);
        let mut supply: Vec<i64> = vec![1; n];
        supply.push(k as i64); // dummy advertiser
        let mut demand: Vec<i64> = vec![1; k];
        demand.push(n as i64); // dummy slot
        let (mut s, mut t) = (0usize, 0usize);
        loop {
            let amount = supply[s].min(demand[t]);
            self.basis.push(BasicArc {
                source: s,
                sink: t,
                flow: amount,
            });
            supply[s] -= amount;
            demand[t] -= amount;
            if s == n && t == k {
                break;
            }
            if supply[s] == 0 && s < n {
                s += 1;
            } else {
                t += 1;
            }
        }
        debug_assert_eq!(self.basis.len(), n + k + 1);
    }

    /// Rebuilds parent/depth/potential arrays from the basis tree.
    fn rebuild_tree(&mut self) {
        let m = self.n + self.k + 2;
        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m];
        for (idx, arc) in self.basis.iter().enumerate() {
            let a = arc.source;
            let b = self.sink_node(arc.sink);
            adjacency[a].push((b, idx));
            adjacency[b].push((a, idx));
        }
        self.parent = vec![usize::MAX; m];
        self.parent_arc = vec![usize::MAX; m];
        self.depth = vec![0; m];
        self.potential = vec![0.0; m];
        // Iterative DFS from root 0.
        let root = 0usize;
        self.parent[root] = root;
        let mut stack = vec![root];
        let mut visited = 1usize;
        while let Some(x) = stack.pop() {
            for &(y, arc_idx) in &adjacency[x] {
                if self.parent[y] != usize::MAX {
                    continue;
                }
                self.parent[y] = x;
                self.parent_arc[y] = arc_idx;
                self.depth[y] = self.depth[x] + 1;
                let arc = self.basis[arc_idx];
                // Tree arcs have zero reduced cost:
                // cost = π[source] − π[sink].
                let c = self.cost(arc.source, arc.sink);
                if x == arc.source {
                    self.potential[y] = self.potential[x] - c;
                } else {
                    self.potential[y] = self.potential[x] + c;
                }
                visited += 1;
                stack.push(y);
            }
        }
        debug_assert_eq!(visited, m, "basis does not span all nodes");
    }

    fn reduced_cost(&self, s: usize, t: usize) -> f64 {
        self.cost(s, t) - self.potential[s] + self.potential[self.sink_node(t)]
    }

    /// Finds an entering arc; `bland` selects the first negative arc instead
    /// of the most negative.
    fn entering_arc(&self, bland: bool) -> Option<(usize, usize)> {
        let mut best: Option<((usize, usize), f64)> = None;
        for s in 0..=self.n {
            for t in 0..=self.k {
                let rc = self.reduced_cost(s, t);
                if rc < -TOL {
                    if bland {
                        return Some((s, t));
                    }
                    if best.map(|(_, b)| rc < b).unwrap_or(true) {
                        best = Some(((s, t), rc));
                    }
                }
            }
        }
        best.map(|(arc, _)| arc)
    }

    /// Pivots on the entering arc; returns `true` if the pivot moved flow.
    fn pivot(&mut self, s: usize, t: usize) -> bool {
        let source_node = s;
        let sink_node = self.sink_node(t);
        // Collect the tree path between the entering arc's endpoints by
        // climbing to the lowest common ancestor. `forward` = the cycle
        // (entering direction source→sink, then sink_node back to
        // source_node) traverses the arc in its own source→sink direction.
        let mut from_sink: Vec<(usize, bool)> = Vec::new(); // climb sink_node → LCA
        let mut from_source: Vec<(usize, bool)> = Vec::new(); // climb source_node → LCA
        let (mut x, mut y) = (sink_node, source_node);
        while self.depth[x] > self.depth[y] {
            let arc_idx = self.parent_arc[x];
            let forward = self.basis[arc_idx].source == x;
            from_sink.push((arc_idx, forward));
            x = self.parent[x];
        }
        while self.depth[y] > self.depth[x] {
            let arc_idx = self.parent_arc[y];
            // Cycle traverses these arcs parent→child, i.e. opposite of the
            // climb, so forward ⇔ the child is the arc's sink.
            let forward = self.sink_node_of_arc(arc_idx) == y;
            from_source.push((arc_idx, forward));
            y = self.parent[y];
        }
        while x != y {
            let ax = self.parent_arc[x];
            from_sink.push((ax, self.basis[ax].source == x));
            x = self.parent[x];
            let ay = self.parent_arc[y];
            from_source.push((ay, self.sink_node_of_arc(ay) == y));
            y = self.parent[y];
        }

        // θ = min flow over backward arcs.
        let mut theta = i64::MAX;
        let mut leaving: Option<usize> = None;
        for &(arc_idx, forward) in from_sink.iter().chain(&from_source) {
            if !forward {
                let f = self.basis[arc_idx].flow;
                if f < theta {
                    theta = f;
                    leaving = Some(arc_idx);
                }
            }
        }
        let leaving = leaving.expect("bipartite cycle must contain a backward arc");
        debug_assert!(theta >= 0);

        for &(arc_idx, forward) in from_sink.iter().chain(&from_source) {
            if forward {
                self.basis[arc_idx].flow += theta;
            } else {
                self.basis[arc_idx].flow -= theta;
            }
        }
        self.basis[leaving] = BasicArc {
            source: s,
            sink: t,
            flow: theta,
        };
        self.rebuild_tree();
        theta > 0
    }

    fn sink_node_of_arc(&self, arc_idx: usize) -> usize {
        self.sink_node(self.basis[arc_idx].sink)
    }
}

/// Solves winner determination with the network simplex method. Returns the
/// optimal assignment (identical total weight to the Hungarian method) and
/// run statistics.
pub fn network_simplex_assignment(matrix: &RevenueMatrix) -> (Assignment, NetworkSimplexStats) {
    let n = matrix.num_advertisers();
    let k = matrix.num_slots();
    let mut stats = NetworkSimplexStats::default();
    if n == 0 {
        return (Assignment::empty(k), stats);
    }
    let mut solver = Solver {
        matrix,
        n,
        k,
        basis: Vec::with_capacity(n + k + 1),
        parent: Vec::new(),
        parent_arc: Vec::new(),
        depth: Vec::new(),
        potential: Vec::new(),
    };
    solver.northwest_corner();
    solver.rebuild_tree();

    let mut degenerate_streak = 0usize;
    // Generous safety cap; the solver has always terminated far below it.
    let max_pivots = 1000 + 64 * (n + k);
    while stats.pivots < max_pivots {
        let bland = degenerate_streak >= BLAND_TRIGGER;
        let Some((s, t)) = solver.entering_arc(bland) else {
            break; // optimal
        };
        stats.pivots += 1;
        if bland {
            stats.bland_pivots += 1;
        }
        if solver.pivot(s, t) {
            degenerate_streak = 0;
        } else {
            stats.degenerate_pivots += 1;
            degenerate_streak += 1;
        }
    }
    assert!(
        stats.pivots < max_pivots,
        "network simplex exceeded the pivot cap — anti-cycling failure"
    );

    let mut slot_to_adv = vec![None; k];
    let mut total_weight = 0.0;
    for arc in &solver.basis {
        if arc.flow > 0 && arc.source < n && arc.sink < k {
            let w = matrix.get(arc.source, arc.sink);
            debug_assert!(w != EXCLUDED, "flow on an excluded arc");
            // A zero-revenue match and an empty slot are LP-equivalent; keep
            // only strictly profitable matches for a canonical assignment.
            if w > 0.0 {
                slot_to_adv[arc.sink] = Some(arc.source);
                total_weight += w;
            }
        }
    }
    (
        Assignment {
            slot_to_adv,
            total_weight,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_matching::max_weight_assignment;

    #[test]
    fn figure9_matrix() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![8.0, 7.0],
            vec![7.0, 6.0],
            vec![7.0, 4.0],
        ]);
        let (a, stats) = network_simplex_assignment(&m);
        assert!((a.total_weight - 16.0).abs() < 1e-9);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
        // The northwest-corner start happens to be optimal here, so the
        // solver may legitimately need zero pivots.
        let _ = stats;
    }

    #[test]
    fn excluded_and_negative_edges() {
        let m =
            RevenueMatrix::from_rows(&[vec![EXCLUDED, 5.0], vec![8.0, EXCLUDED], vec![-3.0, -4.0]]);
        let (a, _) = network_simplex_assignment(&m);
        assert!((a.total_weight - 13.0).abs() < 1e-9);
        assert_eq!(a.slot_to_adv, vec![Some(1), Some(0)]);
    }

    #[test]
    fn all_excluded_leaves_slots_empty() {
        let m = RevenueMatrix::from_rows(&[vec![EXCLUDED], vec![EXCLUDED]]);
        let (a, _) = network_simplex_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 3);
        let (a, stats) = network_simplex_assignment(&m);
        assert_eq!(a.num_assigned(), 0);
        assert_eq!(stats.pivots, 0);
    }

    #[test]
    fn more_slots_than_advertisers() {
        let m = RevenueMatrix::from_rows(&[vec![3.0, 7.0, 5.0]]);
        let (a, _) = network_simplex_assignment(&m);
        assert_eq!(a.slot_to_adv, vec![None, Some(0), None]);
        assert!((a.total_weight - 7.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_hungarian_on_pseudorandom_instances() {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 5000) as f64 / 100.0
        };
        for n in [1usize, 2, 5, 12, 40] {
            for k in [1usize, 2, 5, 8] {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let (lp, _) = network_simplex_assignment(&m);
                let hung = max_weight_assignment(&m);
                assert!(
                    (lp.total_weight - hung.total_weight).abs() < 1e-6,
                    "n={n} k={k}: network {} vs hungarian {}",
                    lp.total_weight,
                    hung.total_weight
                );
                assert!(lp.is_valid(n));
            }
        }
    }

    #[test]
    fn integral_flows_throughout() {
        // Identical weights → maximal degeneracy; exercises the Bland
        // fallback. Correctness: any perfect matching of min(n, k) pairs.
        let m = RevenueMatrix::from_fn(10, 4, |_, _| 5.0);
        let (a, _stats) = network_simplex_assignment(&m);
        assert!((a.total_weight - 20.0).abs() < 1e-9);
        assert_eq!(a.num_assigned(), 4);
    }
}
