//! A dense tableau simplex solver with Bland's anti-cycling rule.
//!
//! Solves `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (so the all-slack
//! basis is feasible and no phase-1 is needed — the assignment LP always has
//! this shape). Deliberately the *straightforward* implementation: dense
//! tableau, full-row pivots. Correctness over speed; the scalable LP path is
//! [`crate::netsimplex`].

use std::fmt;

/// Tolerance below which a coefficient is treated as zero.
const EPS: f64 = 1e-9;

/// A linear program `max cᵀx  s.t.  Ax ≤ b, x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    /// Objective coefficients (length = number of structural variables).
    pub objective: Vec<f64>,
    /// Constraint rows, each of length `objective.len()`.
    pub constraints: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    pub rhs: Vec<f64>,
}

/// Errors from the simplex solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The program is malformed (ragged rows, negative rhs, NaN).
    Malformed(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::Malformed(msg) => write!(f, "malformed LP: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution to a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// The optimal objective value.
    pub value: f64,
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Number of simplex pivots performed.
    pub pivots: usize,
}

impl LinearProgram {
    fn validate(&self) -> Result<(), LpError> {
        let n = self.objective.len();
        if self.constraints.len() != self.rhs.len() {
            return Err(LpError::Malformed(
                "constraint/rhs count mismatch".to_string(),
            ));
        }
        for row in &self.constraints {
            if row.len() != n {
                return Err(LpError::Malformed("ragged constraint row".to_string()));
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(LpError::Malformed("non-finite coefficient".to_string()));
            }
        }
        if self.objective.iter().any(|v| !v.is_finite()) {
            return Err(LpError::Malformed("non-finite objective".to_string()));
        }
        if self.rhs.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(LpError::Malformed(
                "rhs must be finite and non-negative".to_string(),
            ));
        }
        Ok(())
    }

    /// Solves the program with the primal simplex method (Bland's rule).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        let n = self.objective.len();
        let m = self.constraints.len();
        let cols = n + m + 1; // structural + slack + rhs

        // Tableau rows: row 0 is the objective (z-row), rows 1..=m the
        // constraints with slack identity.
        let mut t = vec![vec![0.0f64; cols]; m + 1];
        for (j, &c) in self.objective.iter().enumerate() {
            t[0][j] = -c;
        }
        for i in 0..m {
            for (j, &a) in self.constraints[i].iter().enumerate() {
                t[i + 1][j] = a;
            }
            t[i + 1][n + i] = 1.0;
            t[i + 1][cols - 1] = self.rhs[i];
        }
        // basis[i] = variable index basic in row i+1; starts as the slacks.
        let mut basis: Vec<usize> = (n..n + m).collect();

        let mut pivots = 0usize;
        #[allow(clippy::while_let_loop)] // symmetric break conditions read better
        loop {
            // Bland's rule: smallest-index column with negative z-row entry.
            let Some(enter) = (0..cols - 1).find(|&j| t[0][j] < -EPS) else {
                break;
            };
            // Ratio test; ties resolved towards the smallest basic variable
            // index (the second half of Bland's rule).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 1..=m {
                if t[i][enter] > EPS {
                    let ratio = t[i][cols - 1] / t[i][enter];
                    let better = match leave {
                        None => true,
                        Some(cur) => {
                            ratio < best_ratio - EPS
                                || (ratio < best_ratio + EPS && basis[i - 1] < basis[cur - 1])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };
            // Pivot on (leave, enter).
            pivots += 1;
            let pivot = t[leave][enter];
            for v in t[leave].iter_mut() {
                *v /= pivot;
            }
            for i in 0..=m {
                if i != leave && t[i][enter].abs() > EPS {
                    let factor = t[i][enter];
                    // Split borrows: clone the pivot row once per update.
                    let pivot_row = t[leave].clone();
                    for (v, p) in t[i].iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
            basis[leave - 1] = enter;
        }

        let mut x = vec![0.0f64; n];
        for (i, &var) in basis.iter().enumerate() {
            if var < n {
                x[var] = t[i + 1][cols - 1];
            }
        }
        Ok(LpSolution {
            value: t[0][cols - 1],
            x,
            pivots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(c: &[f64], a: &[&[f64]], b: &[f64]) -> LinearProgram {
        LinearProgram {
            objective: c.to_vec(),
            constraints: a.iter().map(|r| r.to_vec()).collect(),
            rhs: b.to_vec(),
        }
    }

    #[test]
    fn textbook_two_variable() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → z = 36 at (2, 6).
        let p = lp(
            &[3.0, 5.0],
            &[&[1.0, 0.0], &[0.0, 2.0], &[3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        );
        let s = p.solve().unwrap();
        assert!((s.value - 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_optimum_at_origin() {
        // All-negative objective: do nothing.
        let p = lp(&[-1.0, -2.0], &[&[1.0, 1.0]], &[10.0]);
        let s = p.solve().unwrap();
        assert_eq!(s.value, 0.0);
        assert_eq!(s.pivots, 0);
    }

    #[test]
    fn unbounded_detected() {
        let p = lp(&[1.0], &[&[-1.0]], &[1.0]);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn degenerate_cycling_guarded() {
        // Beale's classic cycling example (scaled to b ≥ 0 form); Bland's
        // rule must terminate.
        let p = lp(
            &[0.75, -150.0, 0.02, -6.0],
            &[
                &[0.25, -60.0, -0.04, 9.0],
                &[0.5, -90.0, -0.02, 3.0],
                &[0.0, 0.0, 1.0, 0.0],
            ],
            &[0.0, 0.0, 1.0],
        );
        let s = p.solve().unwrap();
        assert!((s.value - 0.05).abs() < 1e-6, "value = {}", s.value);
    }

    #[test]
    fn malformed_rejected() {
        let ragged = LinearProgram {
            objective: vec![1.0, 2.0],
            constraints: vec![vec![1.0]],
            rhs: vec![1.0],
        };
        assert!(matches!(ragged.solve(), Err(LpError::Malformed(_))));
        let negative_rhs = lp(&[1.0], &[&[1.0]], &[-1.0]);
        assert!(matches!(negative_rhs.solve(), Err(LpError::Malformed(_))));
        let nan = lp(&[f64::NAN], &[&[1.0]], &[1.0]);
        assert!(matches!(nan.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn equality_binding_constraints() {
        // max x + y s.t. x + y ≤ 1, x ≤ 1, y ≤ 1 → 1.0
        let p = lp(
            &[1.0, 1.0],
            &[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]],
            &[1.0, 1.0, 1.0],
        );
        let s = p.solve().unwrap();
        assert!((s.value - 1.0).abs() < 1e-9);
        assert!((s.x[0] + s.x[1] - 1.0).abs() < 1e-9);
    }
}
