//! The assignment LP formulation of winner determination.
//!
//! Variables `x_{ij} ∈ [0, 1]` for each usable advertiser–slot pair;
//! maximise `Σ w_{ij} x_{ij}` subject to `Σ_j x_{ij} ≤ 1` per advertiser and
//! `Σ_i x_{ij} ≤ 1` per slot. The paper invokes a theorem of Chvátal to show
//! the optimum is always integral (the constraint rows are the maximal
//! cliques of a perfect graph), so the LP relaxation *is* winner
//! determination. Tests in this module verify integrality empirically.

use crate::tableau::{LinearProgram, LpError, LpSolution};
use ssa_matching::{Assignment, RevenueMatrix, EXCLUDED};

/// An assignment LP together with the variable bookkeeping needed to map a
/// solution vector back to an [`Assignment`].
#[derive(Debug, Clone)]
pub struct AssignmentLp {
    /// The LP in standard form.
    pub program: LinearProgram,
    /// `vars[v] = (advertiser, slot)` for structural variable `v`.
    pub vars: Vec<(usize, usize)>,
    num_advertisers: usize,
    num_slots: usize,
}

/// Builds the assignment LP for a revenue matrix. [`EXCLUDED`] pairs get no
/// variable; negative-weight pairs keep theirs (the LP simply leaves them at
/// zero).
pub fn assignment_lp(matrix: &RevenueMatrix) -> AssignmentLp {
    let n = matrix.num_advertisers();
    let k = matrix.num_slots();
    let mut vars = Vec::new();
    let mut objective = Vec::new();
    for i in 0..n {
        for j in 0..k {
            let w = matrix.get(i, j);
            if w != EXCLUDED {
                vars.push((i, j));
                objective.push(w);
            }
        }
    }
    let mut constraints = vec![vec![0.0; vars.len()]; n + k];
    for (v, &(i, j)) in vars.iter().enumerate() {
        constraints[i][v] = 1.0; // advertiser row
        constraints[n + j][v] = 1.0; // slot row
    }
    AssignmentLp {
        program: LinearProgram {
            objective,
            constraints,
            rhs: vec![1.0; n + k],
        },
        vars,
        num_advertisers: n,
        num_slots: k,
    }
}

impl AssignmentLp {
    /// Converts an LP solution vector into an [`Assignment`].
    ///
    /// # Panics
    ///
    /// Panics if the solution is not (numerically) integral — by the
    /// Chvátal argument this indicates a solver bug, not a modelling
    /// limitation.
    pub fn extract(&self, solution: &LpSolution) -> Assignment {
        let mut slot_to_adv = vec![None; self.num_slots];
        let mut total_weight = 0.0;
        for (v, &(i, j)) in self.vars.iter().enumerate() {
            let x = solution.x[v];
            assert!(
                x < 1e-6 || (x - 1.0).abs() < 1e-6,
                "fractional assignment variable x[{i}][{j}] = {x}"
            );
            if x > 0.5 {
                assert!(slot_to_adv[j].is_none(), "slot {j} doubly assigned");
                slot_to_adv[j] = Some(i);
                total_weight += self.program.objective[v];
            }
        }
        let _ = self.num_advertisers;
        Assignment {
            slot_to_adv,
            total_weight,
        }
    }
}

/// One-shot convenience: build the LP, solve with the tableau simplex, and
/// extract the integral assignment.
pub fn solve_assignment_lp(matrix: &RevenueMatrix) -> Result<Assignment, LpError> {
    let lp = assignment_lp(matrix);
    let solution = lp.program.solve()?;
    Ok(lp.extract(&solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_matching::max_weight_assignment;

    #[test]
    fn figure9_matrix_via_lp() {
        let m = RevenueMatrix::from_rows(&[
            vec![9.0, 5.0],
            vec![8.0, 7.0],
            vec![7.0, 6.0],
            vec![7.0, 4.0],
        ]);
        let a = solve_assignment_lp(&m).unwrap();
        assert!((a.total_weight - 16.0).abs() < 1e-9);
        assert_eq!(a.slot_to_adv, vec![Some(0), Some(1)]);
    }

    #[test]
    fn excluded_pairs_have_no_variable() {
        let mut m = RevenueMatrix::zeros(2, 2);
        m.set(0, 0, EXCLUDED);
        m.set(0, 1, 3.0);
        m.set(1, 0, 4.0);
        m.set(1, 1, 5.0);
        let lp = assignment_lp(&m);
        assert_eq!(lp.vars.len(), 3);
        let a = solve_assignment_lp(&m).unwrap();
        assert!((a.total_weight - 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_weights_left_unassigned() {
        let m = RevenueMatrix::from_rows(&[vec![-5.0]]);
        let a = solve_assignment_lp(&m).unwrap();
        assert_eq!(a.slot_to_adv, vec![None]);
        assert_eq!(a.total_weight, 0.0);
    }

    #[test]
    fn agrees_with_hungarian_pseudorandomly() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 32) % 1000) as f64 / 10.0
        };
        for n in [1usize, 2, 5, 8] {
            for k in [1usize, 3, 4] {
                let m = RevenueMatrix::from_fn(n, k, |_, _| next());
                let via_lp = solve_assignment_lp(&m).unwrap();
                let via_matching = max_weight_assignment(&m);
                assert!(
                    (via_lp.total_weight - via_matching.total_weight).abs() < 1e-6,
                    "n={n} k={k}: {} vs {}",
                    via_lp.total_weight,
                    via_matching.total_weight
                );
            }
        }
    }

    #[test]
    fn empty_market() {
        let m = RevenueMatrix::zeros(0, 2);
        let a = solve_assignment_lp(&m).unwrap();
        assert_eq!(a.slot_to_adv, vec![None, None]);
    }
}
