//! Planner equivalence: the planned, indexed, compiled pipeline must be
//! bit-for-bit identical to the forced-scan reference interpreter —
//! same rows, same errors (including partial side effects of failing
//! statements), and same trigger effects — over random tables, rows, and
//! statements.
//!
//! Each case builds two databases with identical contents, pins one to
//! [`PlannerMode::Auto`] and the other to [`PlannerMode::ForceScan`], runs
//! the same random script on both, and compares every statement outcome
//! plus the full table state after each step.

use proptest::prelude::*;
use ssa_minidb::{Database, PlannerMode, Row, Value};

/// A nullable row for the test table `t (k INT, w TEXT, f FLOAT)`.
///
/// Small value domains on purpose: collisions make index postings hold
/// several rows, and NULLs exercise the "NULL cells are never indexed"
/// rule together with three-valued logic.
type TRow = (Option<i64>, Option<&'static str>, Option<i64>);

fn words() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("boot"), Just("shoe"), Just("sock"), Just("BOOT")]
}

fn trow() -> impl Strategy<Value = TRow> {
    (
        proptest::option::of(-3i64..4),
        proptest::option::of(words()),
        proptest::option::of(-2i64..3),
    )
}

fn seeded(rows: &[TRow], mode: PlannerMode) -> Database {
    let mut db = Database::new();
    db.set_planner_mode(mode);
    db.run("CREATE TABLE t (k INT, w TEXT, f FLOAT)").unwrap();
    for (k, w, f) in rows {
        let k = k.map_or("NULL".to_string(), |v| v.to_string());
        let w = w.map_or("NULL".to_string(), |v| format!("'{v}'"));
        let f = f.map_or("NULL".to_string(), |v| format!("{v}.5"));
        db.run(&format!("INSERT INTO t VALUES ({k}, {w}, {f})"))
            .unwrap();
    }
    db
}

fn dump(db: &mut Database) -> Vec<Row> {
    db.query("SELECT k, w, f FROM t").unwrap()
}

/// Random single statements over `t`, mixing index-eligible equality
/// probes, forced fallbacks (type-confused keys), fallible residuals the
/// planner must refuse to index past, subquery keys, and outright errors.
fn stmt() -> impl Strategy<Value = String> {
    let k = -3i64..4;
    prop_oneof![
        k.clone()
            .prop_map(|v| format!("SELECT * FROM T WHERE K = {v}")),
        words().prop_map(|w| format!("SELECT w, f FROM t WHERE w = '{w}'")),
        (k.clone(), words())
            .prop_map(|(v, w)| format!("SELECT COUNT(*) FROM t WHERE k = {v} AND w = '{w}'")),
        k.clone()
            .prop_map(|v| format!("SELECT SUM(k), MAX(f) FROM t WHERE k = {v}")),
        (k.clone(), -2i64..3)
            .prop_map(|(v, d)| format!("UPDATE t SET f = f + {d}, k = k - 1 WHERE k = {v}")),
        words().prop_map(|w| format!("DELETE FROM t WHERE w = '{w}'")),
        k.clone()
            .prop_map(|v| format!("INSERT INTO t VALUES ({v}, 'boot', 0.5)")),
        // Type-confused keys: the index cannot answer; the fallback scan
        // must reproduce the interpreter exactly (Float-vs-INT equality is
        // a numeric comparison, Int-vs-TEXT is a type error).
        k.clone()
            .prop_map(|v| format!("SELECT * FROM t WHERE w = {v}")),
        Just("SELECT * FROM t WHERE k = 'boot'".to_string()),
        Just("SELECT * FROM t WHERE k = 2.0".to_string()),
        // Residual conjuncts that can fail at runtime on some rows — the
        // planner must not skip those rows via an index probe.
        k.clone()
            .prop_map(|v| format!("SELECT * FROM t WHERE k = {v} AND f > 1")),
        k.clone()
            .prop_map(|v| format!("SELECT * FROM t WHERE k = {v} AND w > 1")),
        k.clone()
            .prop_map(|v| format!("SELECT * FROM t WHERE k = {v} AND (w = 'boot' OR f > 0)")),
        // Subquery keys are never hoisted into an index probe.
        Just("SELECT * FROM t WHERE k = (SELECT MAX(k) FROM t)".to_string()),
        // Plain errors must come out identical, message and all.
        Just("SELECT nope FROM t WHERE k = 1".to_string()),
        Just("SELECT * FROM nowhere WHERE k = 1".to_string()),
        Just("UPDATE t SET nope = 1 WHERE k = 1".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every statement of a random script produces the same outcome (rows
    /// or typed error) and leaves the same table state in both modes.
    #[test]
    fn scripts_match_forced_scan(
        rows in proptest::collection::vec(trow(), 0..16),
        script in proptest::collection::vec(stmt(), 1..8),
    ) {
        let mut auto = seeded(&rows, PlannerMode::Auto);
        let mut scan = seeded(&rows, PlannerMode::ForceScan);
        for sql in &script {
            prop_assert_eq!(auto.run(sql), scan.run(sql), "statement: {}", sql);
            prop_assert_eq!(dump(&mut auto), dump(&mut scan), "state after: {}", sql);
        }
    }

    /// Trigger bodies run through cached plans on the Auto side; their
    /// side effects (including recursive firing order) must match the
    /// interpreter statement by statement.
    #[test]
    fn trigger_effects_match_forced_scan(
        rows in proptest::collection::vec(trow(), 0..12),
        inserts in proptest::collection::vec((-3i64..4, words()), 1..8),
    ) {
        let trigger = "CREATE TRIGGER equalize AFTER INSERT ON t { \
            UPDATE t SET f = f + (SELECT COUNT(*) FROM t WHERE w = 'boot') \
            WHERE k = 1; \
            DELETE FROM t WHERE w = 'gone' }";
        let mut auto = seeded(&rows, PlannerMode::Auto);
        let mut scan = seeded(&rows, PlannerMode::ForceScan);
        prop_assert_eq!(auto.run(trigger), scan.run(trigger));
        // Plan ahead of time on the Auto side only — warming must be
        // invisible in the results.
        auto.warm_plans();
        for &(k, w) in &inserts {
            let sql = format!("INSERT INTO t VALUES ({k}, '{w}', 1.5)");
            prop_assert_eq!(auto.run(&sql), scan.run(&sql), "statement: {}", sql);
            prop_assert_eq!(dump(&mut auto), dump(&mut scan), "state after: {}", sql);
        }
        prop_assert_eq!(auto.query("SELECT COUNT(*) FROM t").unwrap(),
                        scan.query("SELECT COUNT(*) FROM t").unwrap());
    }

    /// Prepared statements with bound parameters take the cached-plan
    /// path; rebinding different values must keep matching the oracle.
    #[test]
    fn prepared_params_match_forced_scan(
        rows in proptest::collection::vec(trow(), 0..16),
        keys in proptest::collection::vec(-3i64..4, 1..6),
    ) {
        let mut auto = seeded(&rows, PlannerMode::Auto);
        let mut scan = seeded(&rows, PlannerMode::ForceScan);
        let sql = "UPDATE t SET f = f * 2 WHERE k = ?; \
                   SELECT w, f FROM t WHERE k = ?";
        let mut p_auto = auto.prepare(sql).unwrap();
        let mut p_scan = scan.prepare(sql).unwrap();
        for &key in &keys {
            let params = ssa_minidb::Params::new().push(key).push(key);
            prop_assert_eq!(
                auto.execute_prepared(&mut p_auto, &params),
                scan.execute_prepared(&mut p_scan, &params),
                "key: {}", key
            );
        }
        prop_assert_eq!(dump(&mut auto), dump(&mut scan));
    }
}

/// `EXPLAIN` inside a script plans but never executes — in either mode.
#[test]
fn explain_is_inert_in_both_modes() {
    for mode in [PlannerMode::Auto, PlannerMode::ForceScan] {
        let mut db = seeded(&[(Some(1), Some("boot"), Some(2))], mode);
        let before = dump(&mut db);
        db.run("EXPLAIN UPDATE t SET k = 99 WHERE w = 'boot'")
            .unwrap();
        db.run("EXPLAIN DELETE FROM t WHERE k = 1").unwrap();
        assert_eq!(dump(&mut db), before, "mode {mode:?} executed an EXPLAIN");
    }
}

/// Mixed-case table/column spellings resolve to the same index and the
/// same rows (regression: index keys must case-fold like the catalog).
#[test]
fn mixed_case_spellings_agree() {
    let rows = [
        (Some(1), Some("boot"), Some(1)),
        (Some(2), Some("BOOT"), Some(2)),
    ];
    let mut auto = seeded(&rows, PlannerMode::Auto);
    let mut scan = seeded(&rows, PlannerMode::ForceScan);
    for sql in [
        "SELECT K FROM T WHERE W = 'boot'",
        "SELECT k FROM t WHERE w = 'BOOT'",
        "SELECT COUNT(*) FROM T WHERE K = 2",
    ] {
        assert_eq!(auto.run(sql), scan.run(sql), "statement: {sql}");
    }
    // TEXT matching itself stays case-sensitive even though identifiers
    // fold: 'boot' and 'BOOT' are different keys.
    assert_eq!(
        auto.query("SELECT k FROM t WHERE w = 'boot'").unwrap(),
        vec![vec![Value::Int(1)]]
    );
}
