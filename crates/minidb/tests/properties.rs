//! Property tests for the SQL engine: statement semantics against a shadow
//! model.

use proptest::prelude::*;
use ssa_minidb::{Database, Value};

/// Shadow model: a plain Vec of (a, b) integer rows.
type Shadow = Vec<(i64, i64)>;

fn db_from(rows: &Shadow) -> Database {
    let mut db = Database::new();
    db.run("CREATE TABLE t (a INT, b INT)").unwrap();
    for &(a, b) in rows {
        db.insert("t", vec![Value::Int(a), Value::Int(b)]).unwrap();
    }
    db
}

fn dump(db: &mut Database) -> Shadow {
    db.query("SELECT a, b FROM t")
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// UPDATE … WHERE a > c behaves like a filtered map, with snapshot
    /// semantics (the RHS sees pre-update values).
    #[test]
    fn update_matches_shadow(
        rows in proptest::collection::vec((-50i64..50, -50i64..50), 0..20),
        threshold in -50i64..50,
        delta in -10i64..10,
    ) {
        let mut db = db_from(&rows);
        db.run(&format!(
            "UPDATE t SET b = b + {delta}, a = a + b WHERE a > {threshold}"
        ))
        .unwrap();
        let expected: Shadow = rows
            .iter()
            .map(|&(a, b)| {
                if a > threshold {
                    (a + b, b + delta)
                } else {
                    (a, b)
                }
            })
            .collect();
        prop_assert_eq!(dump(&mut db), expected);
    }

    /// DELETE … WHERE behaves like retain with the negated predicate.
    #[test]
    fn delete_matches_shadow(
        rows in proptest::collection::vec((-50i64..50, -50i64..50), 0..20),
        threshold in -50i64..50,
    ) {
        let mut db = db_from(&rows);
        db.run(&format!("DELETE FROM t WHERE a <= {threshold} AND b >= a")).unwrap();
        let expected: Shadow = rows
            .iter()
            .copied()
            .filter(|&(a, b)| !(a <= threshold && b >= a))
            .collect();
        prop_assert_eq!(dump(&mut db), expected);
    }

    /// Aggregates agree with iterator folds (paper semantics: empty SUM is
    /// 0, empty MAX is NULL).
    #[test]
    fn aggregates_match_shadow(
        rows in proptest::collection::vec((-50i64..50, -50i64..50), 0..20),
        threshold in -60i64..60,
    ) {
        let mut db = db_from(&rows);
        let got = db
            .query(&format!(
                "SELECT SUM(b), COUNT(*), MAX(a), MIN(a) FROM t WHERE a < {threshold}"
            ))
            .unwrap();
        let filtered: Shadow = rows.iter().copied().filter(|&(a, _)| a < threshold).collect();
        let sum: i64 = filtered.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(&got[0][0], &Value::Int(sum));
        prop_assert_eq!(&got[0][1], &Value::Int(filtered.len() as i64));
        match filtered.iter().map(|&(a, _)| a).max() {
            Some(m) => prop_assert_eq!(&got[0][2], &Value::Int(m)),
            None => prop_assert!(got[0][2].is_null()),
        }
        match filtered.iter().map(|&(a, _)| a).min() {
            Some(m) => prop_assert_eq!(&got[0][3], &Value::Int(m)),
            None => prop_assert!(got[0][3].is_null()),
        }
    }

    /// Correlated scalar subqueries: UPDATE setting each row's b to the
    /// count of rows with smaller a (a rank computation) matches the shadow.
    #[test]
    fn correlated_subquery_rank(
        rows in proptest::collection::vec((-50i64..50, 0i64..1), 0..15),
    ) {
        let mut db = db_from(&rows);
        db.run(
            "UPDATE t SET b = ( SELECT COUNT(*) FROM t u WHERE u.a < t.a )",
        )
        .unwrap();
        let expected: Shadow = rows
            .iter()
            .map(|&(a, _)| {
                let rank = rows.iter().filter(|&&(x, _)| x < a).count() as i64;
                (a, rank)
            })
            .collect();
        prop_assert_eq!(dump(&mut db), expected);
    }
}
