//! Prepared-vs-reparsed equivalence: `prepare` + bind must behave exactly
//! like formatting the same values into SQL text and re-parsing it, over
//! random statement sequences and parameter values.

use proptest::prelude::*;
use ssa_minidb::{Database, Params, Value};

/// One randomly generated operation, runnable both ways.
#[derive(Debug, Clone)]
enum Op {
    /// `INSERT INTO t VALUES (a, 'name')`
    Insert { a: i64, name: String },
    /// `UPDATE t SET a = a + delta WHERE a < threshold`
    Update { delta: i64, threshold: i64 },
    /// `DELETE FROM t WHERE a > threshold`
    Delete { threshold: i64 },
    /// `SELECT SUM(a), COUNT(*) FROM t WHERE a >= floor`
    Select { floor: i64 },
    /// `IF goal > limit THEN UPDATE t SET a = a + 1; ENDIF`
    Branch { goal: i64, limit: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let small = -1000i64..1000;
    let name = prop_oneof![Just("ad"), Just("bid"), Just("it's")].prop_map(str::to_string);
    prop_oneof![
        (small.clone(), name).prop_map(|(a, name)| Op::Insert { a, name }),
        (small.clone(), small.clone())
            .prop_map(|(delta, threshold)| Op::Update { delta, threshold }),
        small.clone().prop_map(|threshold| Op::Delete { threshold }),
        small.clone().prop_map(|floor| Op::Select { floor }),
        (small.clone(), small).prop_map(|(goal, limit)| Op::Branch { goal, limit }),
    ]
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.run("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.run("INSERT INTO t VALUES (1, 'seed'), (2, 'seed')")
        .unwrap();
    db
}

/// Escapes a text literal the way the lexer expects (`''` for `'`).
fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same operation sequence through (a) per-op `format!` + `run`
    /// and (b) statements prepared once with `?`/`:name` placeholders must
    /// yield identical outcomes and leave identical tables behind.
    #[test]
    fn prepared_matches_the_string_path(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut by_string = fresh_db();
        let mut by_prepared = fresh_db();
        let mut insert = by_prepared.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        let mut update = by_prepared
            .prepare("UPDATE t SET a = a + :delta WHERE a < :threshold")
            .unwrap();
        let mut delete = by_prepared.prepare("DELETE FROM t WHERE a > ?").unwrap();
        let mut select = by_prepared
            .prepare("SELECT SUM(a), COUNT(*) FROM t WHERE a >= ?")
            .unwrap();
        let mut branch = by_prepared
            .prepare("IF :goal > :limit THEN UPDATE t SET a = a + 1; ENDIF")
            .unwrap();

        for op in &ops {
            let (string_result, prepared_result) = match op {
                Op::Insert { a, name } => (
                    by_string.run(&format!("INSERT INTO t VALUES ({a}, {})", quote(name))),
                    insert.execute(&mut by_prepared, &Params::new().push(*a).push(name.as_str())),
                ),
                Op::Update { delta, threshold } => (
                    by_string.run(&format!(
                        "UPDATE t SET a = a + {delta} WHERE a < {threshold}"
                    )),
                    update.execute(
                        &mut by_prepared,
                        &Params::new().bind("delta", *delta).bind("threshold", *threshold),
                    ),
                ),
                Op::Delete { threshold } => (
                    by_string.run(&format!("DELETE FROM t WHERE a > {threshold}")),
                    delete.execute(&mut by_prepared, &Params::new().push(*threshold)),
                ),
                Op::Select { floor } => (
                    by_string.run(&format!("SELECT SUM(a), COUNT(*) FROM t WHERE a >= {floor}")),
                    select.execute(&mut by_prepared, &Params::new().push(*floor)),
                ),
                Op::Branch { goal, limit } => (
                    by_string.run(&format!(
                        "IF {goal} > {limit} THEN UPDATE t SET a = a + 1; ENDIF"
                    )),
                    branch.execute(
                        &mut by_prepared,
                        &Params::new().bind("goal", *goal).bind("limit", *limit),
                    ),
                ),
            };
            prop_assert_eq!(&string_result, &prepared_result, "op {:?} diverged", op);
        }

        let left = by_string.table("t").unwrap();
        let right = by_prepared.table("t").unwrap();
        prop_assert_eq!(left.rows(), right.rows());
    }

    /// Float parameters: binding the value parsed from the literal text is
    /// bit-identical to the literal path.
    #[test]
    fn float_params_match_parsed_literals(cents in 0u32..1_000_000) {
        let literal = format!("{}.{:02}", cents / 100, cents % 100);
        let value: f64 = literal.parse().unwrap();
        let mut by_string = Database::new();
        by_string.run("CREATE TABLE f (x FLOAT)").unwrap();
        by_string
            .run(&format!("INSERT INTO f VALUES ({literal})"))
            .unwrap();
        let mut by_prepared = Database::new();
        by_prepared.run("CREATE TABLE f (x FLOAT)").unwrap();
        let mut insert = by_prepared.prepare("INSERT INTO f VALUES (?)").unwrap();
        insert
            .execute(&mut by_prepared, &Params::new().push(value))
            .unwrap();
        prop_assert_eq!(
            by_string.query("SELECT x FROM f").unwrap(),
            by_prepared.query("SELECT x FROM f").unwrap()
        );
        prop_assert_eq!(
            by_prepared.query("SELECT x FROM f").unwrap()[0][0].clone(),
            Value::Float(value)
        );
    }
}
