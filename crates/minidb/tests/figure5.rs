//! Runs the paper's Figure 5 "Equalize ROI" bidding program end-to-end on
//! the Figure 4 Keywords table and checks the Figure 6 Bids output.
//!
//! The program is reproduced verbatim except for the paper's typo on its
//! line 11: both branches test `amtSpent / time < targetSpendRate`; the
//! second is obviously meant to be `>` (overspending decreases bids). We fix
//! the comparison and note it here.

use ssa_minidb::{Database, Value};

/// Figure 5, with line 11's comparison corrected to `>`.
const EQUALIZE_ROI: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi =
      ( SELECT MAX( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate
  THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi =
      ( SELECT MIN( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
        AND K.formula = Bids.formula );
}
";

fn setup() -> Database {
    let mut db = Database::new();
    db.run("CREATE TABLE Query (text TEXT)").unwrap();
    db.run(
        "CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, \
         relevance FLOAT)",
    )
    .unwrap();
    db.run("CREATE TABLE Bids (formula TEXT, value INT)")
        .unwrap();
    // Figure 4. The `bid` column holds the values *after* lines 1–20 have
    // run per the paper's walkthrough ("if the Keywords table is as depicted
    // in Figure 4 after running lines 1–20").
    db.run(
        "INSERT INTO Keywords VALUES \
           ('boot', 'Click AND Slot1', 5, 2.0, 4, 0.8), \
           ('shoe', 'Click', 6, 1.0, 8, 0.2)",
    )
    .unwrap();
    db.run("INSERT INTO Bids VALUES ('Click AND Slot1', 0), ('Click', 0)")
        .unwrap();
    db.run(EQUALIZE_ROI).unwrap();
    db
}

#[test]
fn figure4_to_figure6_balanced_spending() {
    let mut db = setup();
    // Spending exactly on target: neither branch fires; bids stay at
    // Figure 4's values and the Bids table becomes exactly Figure 6.
    db.set_var("amtSpent", Value::Int(10));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(1));
    db.run("INSERT INTO Query VALUES ('boots for sale')")
        .unwrap();

    let bids = db.query("SELECT formula, value FROM Bids").unwrap();
    assert_eq!(
        bids,
        vec![
            vec![Value::Text("Click AND Slot1".into()), Value::Int(4)],
            vec![Value::Text("Click".into()), Value::Int(0)],
        ]
    );
}

#[test]
fn underspending_raises_best_roi_keyword() {
    let mut db = setup();
    db.set_var("amtSpent", Value::Int(0));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(2));
    db.run("INSERT INTO Query VALUES ('boots')").unwrap();

    // 'boot' has the max ROI (2.0), relevance > 0, bid 4 < maxbid 5 → 5.
    let kw = db.query("SELECT text, bid FROM Keywords").unwrap();
    assert_eq!(kw[0], vec![Value::Text("boot".into()), Value::Int(5)]);
    assert_eq!(kw[1], vec![Value::Text("shoe".into()), Value::Int(8)]);
    // Bids reflect the raised keyword.
    let bids = db.query("SELECT value FROM Bids").unwrap();
    assert_eq!(bids[0][0], Value::Int(5));
}

#[test]
fn underspending_respects_maxbid_cap() {
    let mut db = setup();
    db.set_var("amtSpent", Value::Int(0));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(2));
    // Drive the boot bid to its cap of 5 and keep going.
    for _ in 0..5 {
        db.run("INSERT INTO Query VALUES ('boots')").unwrap();
    }
    let kw = db
        .query("SELECT bid FROM Keywords WHERE text = 'boot'")
        .unwrap();
    assert_eq!(kw[0][0], Value::Int(5), "bid must not exceed maxbid");
}

#[test]
fn overspending_lowers_worst_roi_keyword_to_zero_floor() {
    let mut db = setup();
    db.set_var("amtSpent", Value::Int(100));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(2));
    // 'shoe' has the min ROI (1.0) but relevance 0.2 > 0, bid 8 > 0.
    for _ in 0..12 {
        db.run("INSERT INTO Query VALUES ('shoes')").unwrap();
    }
    let kw = db
        .query("SELECT bid FROM Keywords WHERE text = 'shoe'")
        .unwrap();
    assert_eq!(kw[0][0], Value::Int(0), "bid must not drop below zero");
}

#[test]
fn program_is_reentrant_across_auctions() {
    let mut db = setup();
    db.set_var("amtSpent", Value::Int(0));
    db.set_var("time", Value::Int(10));
    db.set_var("targetSpendRate", Value::Int(2));
    db.run("INSERT INTO Query VALUES ('q1')").unwrap();
    // Simulate the provider updating spend between auctions: now on target.
    db.set_var("amtSpent", Value::Int(20));
    db.run("INSERT INTO Query VALUES ('q2')").unwrap();
    // First auction raised boot to 5; second was balanced → still 5.
    let kw = db
        .query("SELECT bid FROM Keywords WHERE text = 'boot'")
        .unwrap();
    assert_eq!(kw[0][0], Value::Int(5));
}
