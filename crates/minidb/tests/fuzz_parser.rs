//! Robustness: the lexer/parser/executor must return errors, never panic,
//! on arbitrary input.

use proptest::prelude::*;
use ssa_minidb::{Database, DbError};

/// Hostile nesting depths: a typed error, never a stack overflow. This is
/// the untrusted-advertiser-program guarantee — `(((((…`, `NOT NOT …`,
/// nested `IF`s, and nested subqueries are all cut off at the parser's
/// depth limit long before the stack is at risk.
#[test]
fn hostile_nesting_is_a_typed_error() {
    let mut db = Database::new();
    db.run("CREATE TABLE t (a INT)").unwrap();
    let cases = [
        format!(
            "SELECT {}1{} FROM t",
            "(".repeat(50_000),
            ")".repeat(50_000)
        ),
        format!("SELECT * FROM t WHERE {}a > 0", "NOT ".repeat(50_000)),
        // Spaced so the `--` line-comment rule does not swallow the chain.
        format!("SELECT {}1 FROM t", "- ".repeat(50_000)),
        format!(
            "{}UPDATE t SET a = 1;{}",
            "IF 1 = 1 THEN ".repeat(50_000),
            " ENDIF;".repeat(50_000)
        ),
        format!(
            "SELECT {}MAX(a){} FROM t",
            "(SELECT ".repeat(50_000),
            " FROM t)".repeat(50_000)
        ),
    ];
    for sql in &cases {
        assert!(
            matches!(db.run(sql), Err(DbError::NestingTooDeep { .. })),
            "input of {} bytes not rejected by the depth limit",
            sql.len()
        );
    }
    // The engine stays usable afterwards.
    assert!(db.run("SELECT COUNT(*) FROM t").is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: `run` returns Ok or Err but never panics.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let mut db = Database::new();
        let _ = db.run(&input);
    }

    /// SQL-shaped fragments assembled at random: still no panics, and the
    /// database stays usable afterwards.
    #[test]
    fn sql_shaped_fragments_never_panic(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("*"), Just("FROM"), Just("t"), Just("WHERE"),
                Just("a"), Just("="), Just("1"), Just("("), Just(")"), Just(","),
                Just("UPDATE"), Just("SET"), Just("INSERT"), Just("INTO"),
                Just("VALUES"), Just("IF"), Just("THEN"), Just("ENDIF"),
                Just("AND"), Just("OR"), Just("NOT"), Just("MAX"), Just("'x'"),
                Just(";"), Just("+"), Just("-"), Just("/"), Just("0"),
            ],
            0..24,
        ),
    ) {
        let mut db = Database::new();
        db.run("CREATE TABLE t (a INT)").unwrap();
        db.run("INSERT INTO t VALUES (1), (0)").unwrap();
        let script = pieces.join(" ");
        let _ = db.run(&script);
        // Whatever happened, the engine must still answer queries.
        let rows = db.query("SELECT COUNT(*) FROM t");
        prop_assert!(rows.is_ok());
    }
}
