//! Robustness: the lexer/parser/executor must return errors, never panic,
//! on arbitrary input.

use proptest::prelude::*;
use ssa_minidb::{Database, DbError};

/// Hostile nesting depths: a typed error, never a stack overflow. This is
/// the untrusted-advertiser-program guarantee — `(((((…`, `NOT NOT …`,
/// nested `IF`s, and nested subqueries are all cut off at the parser's
/// depth limit long before the stack is at risk.
#[test]
fn hostile_nesting_is_a_typed_error() {
    let mut db = Database::new();
    db.run("CREATE TABLE t (a INT)").unwrap();
    let cases = [
        format!(
            "SELECT {}1{} FROM t",
            "(".repeat(50_000),
            ")".repeat(50_000)
        ),
        format!("SELECT * FROM t WHERE {}a > 0", "NOT ".repeat(50_000)),
        // Spaced so the `--` line-comment rule does not swallow the chain.
        format!("SELECT {}1 FROM t", "- ".repeat(50_000)),
        format!(
            "{}UPDATE t SET a = 1;{}",
            "IF 1 = 1 THEN ".repeat(50_000),
            " ENDIF;".repeat(50_000)
        ),
        format!(
            "SELECT {}MAX(a){} FROM t",
            "(SELECT ".repeat(50_000),
            " FROM t)".repeat(50_000)
        ),
    ];
    for sql in &cases {
        assert!(
            matches!(db.run(sql), Err(DbError::NestingTooDeep { .. })),
            "input of {} bytes not rejected by the depth limit",
            sql.len()
        );
    }
    // The engine stays usable afterwards.
    assert!(db.run("SELECT COUNT(*) FROM t").is_ok());
}

/// Lowering-targeted hostiles: statements that parse fine but stress the
/// planner — deep-but-legal predicates, unknown columns discovered at
/// plan time, type-confused index keys, and `EXPLAIN` stacked on itself.
/// Every one must come back as `Ok` or a typed error, never a panic, in
/// both planner modes.
#[test]
fn hostile_lowering_is_a_typed_error() {
    use ssa_minidb::PlannerMode;
    let deep_pred = format!("SELECT * FROM t WHERE a = 1 {}", "AND a = 1 ".repeat(2_000));
    let cases = [
        deep_pred.as_str(),
        // Unknown identifiers only detectable during lowering.
        "UPDATE t SET ghost = 1 WHERE a = 1",
        "SELECT * FROM t WHERE ghost = 1",
        "SELECT * FROM t WHERE a = ghost",
        "INSERT INTO t (ghost) VALUES (1)",
        // Type-confused equality keys the index must refuse or fall
        // back from.
        "SELECT * FROM t WHERE a = 'word'",
        "SELECT * FROM t WHERE a = 1.0 AND a = 'word'",
        "SELECT * FROM t WHERE a = (SELECT 'word' FROM t)",
        // EXPLAIN stacked on itself and on failing statements.
        "EXPLAIN EXPLAIN EXPLAIN SELECT * FROM t WHERE a = 1",
        "EXPLAIN SELECT ghost FROM t",
        "EXPLAIN UPDATE nowhere SET a = 1",
        "EXPLAIN IF 1 = 1 THEN UPDATE t SET a = 2 WHERE a = 1; ENDIF",
    ];
    for mode in [PlannerMode::Auto, PlannerMode::ForceScan] {
        let mut db = Database::new();
        db.set_planner_mode(mode);
        db.run("CREATE TABLE t (a INT)").unwrap();
        db.run("INSERT INTO t VALUES (1), (0)").unwrap();
        for sql in cases {
            let _ = db.run(sql);
            // The engine must stay usable after each hostile statement.
            assert!(
                db.run("SELECT COUNT(*) FROM t").is_ok(),
                "engine wedged after {sql:?} in {mode:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: `run` returns Ok or Err but never panics.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let mut db = Database::new();
        let _ = db.run(&input);
    }

    /// SQL-shaped fragments assembled at random: still no panics, and the
    /// database stays usable afterwards.
    #[test]
    fn sql_shaped_fragments_never_panic(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("*"), Just("FROM"), Just("t"), Just("WHERE"),
                Just("a"), Just("="), Just("1"), Just("("), Just(")"), Just(","),
                Just("UPDATE"), Just("SET"), Just("INSERT"), Just("INTO"),
                Just("VALUES"), Just("IF"), Just("THEN"), Just("ENDIF"),
                Just("EXPLAIN"),
                Just("AND"), Just("OR"), Just("NOT"), Just("MAX"), Just("'x'"),
                Just(";"), Just("+"), Just("-"), Just("/"), Just("0"),
            ],
            0..24,
        ),
    ) {
        let mut db = Database::new();
        db.run("CREATE TABLE t (a INT)").unwrap();
        db.run("INSERT INTO t VALUES (1), (0)").unwrap();
        let script = pieces.join(" ");
        let _ = db.run(&script);
        // Whatever happened, the engine must still answer queries.
        let rows = db.query("SELECT COUNT(*) FROM t");
        prop_assert!(rows.is_ok());
    }
}
