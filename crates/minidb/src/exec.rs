//! The statement interpreter.
//!
//! Semantics notes (all deliberate, see crate docs):
//!
//! * `UPDATE`/`DELETE` use **snapshot semantics**: predicates and SET
//!   expressions are evaluated against the pre-statement state, then all
//!   mutations are applied. This matches SQL and matters for the paper's
//!   Figure 5 program, whose `WHERE roi = (SELECT MAX(K.roi) FROM Keywords
//!   K)` subquery scans the very table being updated.
//! * Predicates use three-valued logic; a NULL predicate does not match.
//! * `AFTER INSERT` triggers fire once per inserted row batch, with a depth
//!   limit to keep programs non-recursive (Section II-B requires bidding
//!   programs to be "simple SQL updates without recursion").

use crate::ast::{AggFunc, CmpOp, ColumnRef, Expr, Select, SelectItem, Statement};
use crate::error::{DbError, DbResult};
use crate::index::FnvBuildHasher;
use crate::parser::parse_script;
use crate::plan::{self, ExplainLine, PlanCache, PlannedScript, PlannerCounters, PlannerMode};
use crate::prepared::{Params, Prepared, NO_PARAMS};
use crate::table::{Row, Schema, Table};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum depth of trigger-initiated statement nesting.
const MAX_TRIGGER_DEPTH: usize = 16;

/// Name-keyed map (catalog, host variables): FNV over short lowercase
/// strings beats the DoS-resistant default hasher, and the names come from
/// trusted program text, not external input.
pub(crate) type StrMap<V> = HashMap<String, V, FnvBuildHasher>;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// `CREATE TABLE` / `CREATE TRIGGER` succeeded.
    Created,
    /// `DROP TABLE` succeeded.
    Dropped,
    /// Number of rows inserted.
    Inserted(usize),
    /// Number of rows updated.
    Updated(usize),
    /// Number of rows deleted.
    Deleted(usize),
    /// Rows returned by a `SELECT`.
    Rows(Vec<Row>),
    /// A control statement (`IF`, `SET`) completed.
    Done,
    /// Access paths chosen for an `EXPLAIN`ed statement (nothing ran).
    Explain(Vec<ExplainLine>),
}

#[derive(Debug, Clone)]
pub(crate) struct TriggerDef {
    pub(crate) name_lower: String,
    pub(crate) table_lower: String,
    pub(crate) body: Arc<Vec<Statement>>,
    /// Cached per-statement plans for the body (shared across clones;
    /// entries revalidate against the catalog version).
    pub(crate) plans: Arc<PlanCache>,
    /// Owner-local memo of the planned body. Living inside `Database`, it
    /// needs no lock: repeat firings revalidate one version number and go.
    /// The shared `plans` cache above stays the source of truth that
    /// `warm_plans` and clones refill this memo from.
    pub(crate) planned: Option<Arc<PlannedScript>>,
}

/// An in-memory database: tables, triggers, and host scalar variables.
#[derive(Debug, Clone)]
pub struct Database {
    pub(crate) tables: StrMap<(String, Table)>, // lowercase name → (display, table)
    pub(crate) triggers: Vec<TriggerDef>,
    pub(crate) vars: StrMap<Value>, // lowercase name
    pub(crate) mode: PlannerMode,
    pub(crate) catalog_version: u64,
    pub(crate) counters: PlannerCounters,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database. The planner starts in
    /// [`PlannerMode::Auto`] unless the `SSA_MINIDB_FORCE_SCAN` environment
    /// variable is set (see [`Database::set_planner_mode`]).
    pub fn new() -> Self {
        Database {
            tables: StrMap::default(),
            triggers: Vec::new(),
            vars: StrMap::default(),
            mode: if plan::force_scan_env() {
                PlannerMode::ForceScan
            } else {
                PlannerMode::Auto
            },
            catalog_version: plan::next_catalog_version(),
            counters: PlannerCounters::default(),
        }
    }

    /// Parses and executes a script; returns one outcome per statement.
    ///
    /// This re-parses `sql` on every call; callers on a hot path should
    /// [`Database::prepare`] once and execute the returned [`Prepared`]
    /// plan instead.
    pub fn run(&mut self, sql: &str) -> DbResult<Vec<ExecOutcome>> {
        let statements = parse_script(sql)?;
        let mut outcomes = Vec::with_capacity(statements.len());
        for stmt in &statements {
            outcomes.push(self.execute(stmt)?);
        }
        Ok(outcomes)
    }

    /// Parses a script once into a [`Prepared`] plan whose `?`/`:name`
    /// placeholders are bound per execution — see [`crate::prepared`].
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        Prepared::parse(sql)
    }

    /// Executes a prepared plan with `params` bound; one outcome per
    /// statement. Equivalent to [`Prepared::execute`]. The plan is `&mut`
    /// because it memoises its planned script between executions.
    pub fn execute_prepared(
        &mut self,
        prepared: &mut Prepared,
        params: &Params,
    ) -> DbResult<Vec<ExecOutcome>> {
        prepared.execute(self, params)
    }

    /// Runs a single-`SELECT` prepared plan and returns its rows.
    /// Equivalent to [`Prepared::query`].
    pub fn query_prepared(
        &mut self,
        prepared: &mut Prepared,
        params: &Params,
    ) -> DbResult<Vec<Row>> {
        prepared.query(self, params)
    }

    /// Runs a single-`SELECT` script and returns its rows.
    pub fn query(&mut self, sql: &str) -> DbResult<Vec<Row>> {
        let mut outcomes = self.run(sql)?;
        match (outcomes.len(), outcomes.pop()) {
            (1, Some(ExecOutcome::Rows(rows))) => Ok(rows),
            _ => Err(DbError::Parse {
                message: "query expects exactly one SELECT statement".to_string(),
                position: 0,
            }),
        }
    }

    /// Executes one pre-parsed statement (with no parameters bound).
    pub fn execute(&mut self, stmt: &Statement) -> DbResult<ExecOutcome> {
        self.execute_with_params(stmt, NO_PARAMS)
    }

    /// Executes one pre-parsed statement with a parameter binding
    /// environment. Under [`PlannerMode::Auto`] the statement is lowered
    /// through the planner (plans from this entry point are transient; use
    /// [`Database::prepare`] to cache them); under
    /// [`PlannerMode::ForceScan`] it runs on the interpreter.
    pub(crate) fn execute_with_params(
        &mut self,
        stmt: &Statement,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        if self.mode == PlannerMode::ForceScan {
            self.execute_at_depth(stmt, 0, params)
        } else {
            let plan = plan::plan_statement(self, stmt);
            self.ensure_plan_indexes(&plan.index_reqs);
            self.exec_planned(stmt, &plan, 0, params)
        }
    }

    /// Interpreter entry point for the forced-scan oracle path.
    pub(crate) fn execute_interpreted(
        &mut self,
        stmt: &Statement,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        self.execute_at_depth(stmt, 0, params)
    }

    /// Executes a DDL statement from the planned path (DDL always runs on
    /// the interpreter, which bumps the catalog version).
    pub(crate) fn execute_ddl(
        &mut self,
        stmt: &Statement,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        self.execute_at_depth(stmt, depth, params)
    }

    /// Sets a host scalar variable (e.g. `amtSpent`, `time`).
    pub fn set_var(&mut self, name: &str, value: Value) {
        // Keys are stored lowercase, and auction drivers pass lowercase
        // names every round — overwrite in place without allocating. A
        // mixed-case name can never equal a stored key, so the miss arm
        // is the only one that needs to fold.
        if let Some(slot) = self.vars.get_mut(name) {
            *slot = value;
            return;
        }
        self.vars.insert(name.to_ascii_lowercase(), value);
    }

    /// Reads a host scalar variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(&name.to_ascii_lowercase())
    }

    /// Host access to a table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|(_, t)| t)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Host-side table creation.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables
            .insert(key, (name.to_string(), Table::new(schema)));
        self.catalog_version = plan::next_catalog_version();
        Ok(())
    }

    /// Host-side insert; fires `AFTER INSERT` triggers like SQL inserts do.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<()> {
        let key = table.to_ascii_lowercase();
        let (_, t) = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        t.insert(row)?;
        self.fire_triggers(&key, 0)
    }

    /// Names of all tables (display form), sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.values().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    // ---- execution internals ----------------------------------------------

    fn execute_at_depth(
        &mut self,
        stmt: &Statement,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(columns.iter().cloned());
                self.create_table(name, schema)?;
                Ok(ExecOutcome::Created)
            }
            Statement::DropTable { name } => {
                let key = name.to_ascii_lowercase();
                if self.tables.remove(&key).is_none() {
                    return Err(DbError::NoSuchTable(name.clone()));
                }
                self.triggers.retain(|t| t.table_lower != key);
                self.catalog_version = plan::next_catalog_version();
                Ok(ExecOutcome::Dropped)
            }
            Statement::CreateTrigger { name, table, body } => {
                let name_lower = name.to_ascii_lowercase();
                if self.triggers.iter().any(|t| t.name_lower == name_lower) {
                    return Err(DbError::TriggerExists(name.clone()));
                }
                let table_lower = table.to_ascii_lowercase();
                if !self.tables.contains_key(&table_lower) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                self.triggers.push(TriggerDef {
                    name_lower,
                    table_lower,
                    body: Arc::new(body.clone()),
                    plans: plan::new_plan_cache(),
                    planned: None,
                });
                Ok(ExecOutcome::Created)
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let inserted = self.exec_insert(table, columns.as_deref(), rows, depth, params)?;
                Ok(ExecOutcome::Inserted(inserted))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let updated = self.exec_update(table, sets, where_clause.as_ref(), params)?;
                Ok(ExecOutcome::Updated(updated))
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let deleted = self.exec_delete(table, where_clause.as_ref(), params)?;
                Ok(ExecOutcome::Deleted(deleted))
            }
            Statement::Select(select) => {
                let rows = Evaluator::global(self, params).run_select(select)?;
                Ok(ExecOutcome::Rows(rows))
            }
            Statement::If { arms, else_block } => {
                for (cond, block) in arms {
                    if Evaluator::global(self, params).eval_predicate(cond)? {
                        return self.exec_block(block, depth, params);
                    }
                }
                if let Some(block) = else_block {
                    return self.exec_block(block, depth, params);
                }
                Ok(ExecOutcome::Done)
            }
            Statement::SetVar { name, value } => {
                let v = Evaluator::global(self, params).eval(value)?;
                self.set_var(name, v);
                Ok(ExecOutcome::Done)
            }
            Statement::Explain(inner) => {
                Ok(ExecOutcome::Explain(plan::explain_statement(self, inner)?))
            }
        }
    }

    fn exec_block(
        &mut self,
        block: &[Statement],
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        for stmt in block {
            self.execute_at_depth(stmt, depth, params)?;
        }
        Ok(ExecOutcome::Done)
    }

    fn exec_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        depth: usize,
        params: &Params,
    ) -> DbResult<usize> {
        let key = table.to_ascii_lowercase();
        // Evaluate before mutating (expressions may read other tables).
        let mut materialised: Vec<Row> = Vec::with_capacity(rows.len());
        {
            let evaluator = Evaluator::global(self, params);
            let (_, t) = self
                .tables
                .get(&key)
                .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
            let schema = t.schema();
            for exprs in rows {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(evaluator.eval(e)?);
                }
                let row = match columns {
                    None => values,
                    Some(cols) => {
                        if cols.len() != values.len() {
                            return Err(DbError::Arity {
                                expected: cols.len(),
                                got: values.len(),
                            });
                        }
                        let mut full = vec![Value::Null; schema.len()];
                        for (col, v) in cols.iter().zip(values) {
                            let idx = schema
                                .index_of(col)
                                .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                            full[idx] = v;
                        }
                        full
                    }
                };
                materialised.push(row);
            }
        }
        let count = materialised.len();
        let (_, t) = self
            .tables
            .get_mut(&key)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        for row in materialised {
            t.insert(row)?;
        }
        self.fire_triggers(&key, depth)?;
        Ok(count)
    }

    pub(crate) fn fire_triggers(&mut self, table_lower: &str, depth: usize) -> DbResult<()> {
        if depth >= MAX_TRIGGER_DEPTH {
            return Err(DbError::TriggerDepthExceeded);
        }
        if self.mode == PlannerMode::ForceScan {
            let fired: Vec<Arc<Vec<Statement>>> = self
                .triggers
                .iter()
                .filter(|t| t.table_lower == table_lower)
                .map(|t| Arc::clone(&t.body))
                .collect();
            for body in fired {
                // Stored trigger bodies never see the firing statement's
                // parameters — host scalar variables are their channel.
                for stmt in body.iter() {
                    self.execute_at_depth(stmt, depth + 1, NO_PARAMS)?;
                }
            }
            return Ok(());
        }
        // Snapshot the firing set up front: bodies may themselves create or
        // drop triggers, so we never touch `self.triggers` while executing.
        // A valid owner-local memo skips the shared plan cache entirely; on
        // a miss we also carry the trigger's slot so the freshly planned
        // script can be memoised back (guarded by a body identity check in
        // case a fired body rewrote the trigger list under us).
        type Fired = (
            usize,
            Arc<Vec<Statement>>,
            Option<Arc<PlanCache>>,
            Option<Arc<PlannedScript>>,
        );
        let fired: Vec<Fired> = self
            .triggers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.table_lower == table_lower)
            .map(|(slot, t)| {
                let memo = t
                    .planned
                    .as_ref()
                    .filter(|s| s.version() == self.catalog_version)
                    .cloned();
                let plans = memo.is_none().then(|| Arc::clone(&t.plans));
                (slot, Arc::clone(&t.body), plans, memo)
            })
            .collect();
        for (slot, body, plans, memo) in fired {
            let script = match memo {
                Some(script) => script,
                None => {
                    let plans = plans.expect("snapshot pairs a plan cache with every memo miss");
                    let script = self.cached_script(&plans, &body);
                    if let Some(t) = self.triggers.get_mut(slot) {
                        if Arc::ptr_eq(&t.body, &body) {
                            t.planned = Some(Arc::clone(&script));
                        }
                    }
                    script
                }
            };
            for (stmt, plan) in body.iter().zip(script.plans()) {
                self.exec_planned(stmt, plan, depth + 1, NO_PARAMS)?;
            }
        }
        Ok(())
    }

    fn exec_update(
        &mut self,
        table: &str,
        sets: &[crate::ast::SetClause],
        where_clause: Option<&Expr>,
        params: &Params,
    ) -> DbResult<usize> {
        let key = table.to_ascii_lowercase();
        // Phase 1 (immutable): find matching rows, compute new values
        // against the snapshot.
        let mut planned: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
        {
            let (display, t) = self
                .tables
                .get(&key)
                .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
            let schema = t.schema();
            let set_indices: Vec<usize> = sets
                .iter()
                .map(|s| {
                    schema
                        .index_of(&s.column)
                        .ok_or_else(|| DbError::NoSuchColumn(s.column.clone()))
                })
                .collect::<DbResult<_>>()?;
            for (ridx, row) in t.rows().iter().enumerate() {
                PlannerCounters::bump(&self.counters.rows_scanned, 1);
                let evaluator = Evaluator::with_row(self, display, None, schema, row, params);
                let matches = match where_clause {
                    None => true,
                    Some(p) => evaluator.eval_predicate(p)?,
                };
                if !matches {
                    continue;
                }
                let mut assignments = Vec::with_capacity(sets.len());
                for (set, &cidx) in sets.iter().zip(&set_indices) {
                    assignments.push((cidx, evaluator.eval(&set.value)?));
                }
                planned.push((ridx, assignments));
            }
        }
        // Phase 2 (mutable): apply.
        let count = planned.len();
        let (_, t) = self.tables.get_mut(&key).expect("checked in phase 1");
        for (ridx, assignments) in planned {
            for (cidx, value) in assignments {
                t.set_cell(ridx, cidx, value)?;
            }
        }
        Ok(count)
    }

    fn exec_delete(
        &mut self,
        table: &str,
        where_clause: Option<&Expr>,
        params: &Params,
    ) -> DbResult<usize> {
        let key = table.to_ascii_lowercase();
        let mut doomed: Vec<usize> = Vec::new();
        {
            let (display, t) = self
                .tables
                .get(&key)
                .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
            for (ridx, row) in t.rows().iter().enumerate() {
                PlannerCounters::bump(&self.counters.rows_scanned, 1);
                let evaluator = Evaluator::with_row(self, display, None, t.schema(), row, params);
                let matches = match where_clause {
                    None => true,
                    Some(p) => evaluator.eval_predicate(p)?,
                };
                if matches {
                    doomed.push(ridx);
                }
            }
        }
        let count = doomed.len();
        let (_, t) = self.tables.get_mut(&key).expect("checked in phase 1");
        t.delete_rows(&doomed);
        Ok(count)
    }
}

/// One table-row scope for name resolution.
struct RowScope<'a> {
    name: &'a str,
    alias: Option<&'a str>,
    schema: &'a Schema,
    row: &'a [Value],
}

/// Expression evaluator over a database plus a stack of row scopes
/// (outermost first) and the statement's parameter bindings.
struct Evaluator<'a> {
    db: &'a Database,
    scopes: Vec<RowScope<'a>>,
    params: &'a Params,
}

impl<'a> Evaluator<'a> {
    fn global(db: &'a Database, params: &'a Params) -> Self {
        Evaluator {
            db,
            scopes: Vec::new(),
            params,
        }
    }

    fn with_row(
        db: &'a Database,
        name: &'a str,
        alias: Option<&'a str>,
        schema: &'a Schema,
        row: &'a [Value],
        params: &'a Params,
    ) -> Self {
        Evaluator {
            db,
            scopes: vec![RowScope {
                name,
                alias,
                schema,
                row,
            }],
            params,
        }
    }

    fn resolve_column(&self, cref: &ColumnRef) -> DbResult<Value> {
        match &cref.qualifier {
            Some(q) => {
                for scope in self.scopes.iter().rev() {
                    // SQL scoping: an alias *replaces* the table name — a
                    // scope with `FROM Keywords K` answers to `K` only, so
                    // that an outer `Keywords.x` reference skips past it
                    // (needed by self-join-style correlated subqueries).
                    let matches = match scope.alias {
                        Some(a) => a.eq_ignore_ascii_case(q),
                        None => scope.name.eq_ignore_ascii_case(q),
                    };
                    if matches {
                        let idx = scope
                            .schema
                            .index_of(&cref.column)
                            .ok_or_else(|| DbError::NoSuchColumn(format!("{q}.{}", cref.column)))?;
                        return Ok(scope.row[idx].clone());
                    }
                }
                Err(DbError::NoSuchColumn(format!("{q}.{}", cref.column)))
            }
            None => {
                for scope in self.scopes.iter().rev() {
                    if let Some(idx) = scope.schema.index_of(&cref.column) {
                        return Ok(scope.row[idx].clone());
                    }
                }
                self.db
                    .vars
                    .get(&cref.column.to_ascii_lowercase())
                    .cloned()
                    .ok_or_else(|| DbError::NoSuchColumn(cref.column.clone()))
            }
        }
    }

    fn eval(&self, expr: &Expr) -> DbResult<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(p) => self.params.resolve(p),
            Expr::Column(cref) => self.resolve_column(cref),
            Expr::Arith(a, op, b) => self.eval(a)?.arith(*op, &self.eval(b)?),
            Expr::Neg(inner) => match self.eval(inner)? {
                Value::Int(v) => v.checked_neg().map(Value::Int).ok_or(DbError::Overflow),
                Value::Float(v) => Ok(Value::Float(-v)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::Type(format!("cannot negate {other}"))),
            },
            Expr::Cmp(a, op, b) => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                match left.compare(&right)? {
                    None => Ok(Value::Null),
                    Some(ord) => {
                        let result = match op {
                            CmpOp::Eq => ord.is_eq(),
                            CmpOp::Neq => ord.is_ne(),
                            CmpOp::Lt => ord.is_lt(),
                            CmpOp::Le => ord.is_le(),
                            CmpOp::Gt => ord.is_gt(),
                            CmpOp::Ge => ord.is_ge(),
                        };
                        Ok(Value::Bool(result))
                    }
                }
            }
            Expr::And(a, b) => {
                let left = self.eval_truth(a)?;
                let right = self.eval_truth(b)?;
                // Kleene AND.
                Ok(match (left, right) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Expr::Or(a, b) => {
                let left = self.eval_truth(a)?;
                let right = self.eval_truth(b)?;
                Ok(match (left, right) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Expr::Not(inner) => Ok(match self.eval_truth(inner)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::Subquery(select) => self.eval_scalar_subquery(select),
        }
    }

    fn eval_truth(&self, expr: &Expr) -> DbResult<Option<bool>> {
        match self.eval(expr)? {
            Value::Bool(b) => Ok(Some(b)),
            Value::Null => Ok(None),
            other => Err(DbError::Type(format!("expected a condition, got {other}"))),
        }
    }

    /// Predicate position: NULL is not a match.
    fn eval_predicate(&self, expr: &Expr) -> DbResult<bool> {
        Ok(self.eval_truth(expr)?.unwrap_or(false))
    }

    fn eval_scalar_subquery(&self, select: &Select) -> DbResult<Value> {
        let mut rows = self.run_select(select)?;
        match rows.len() {
            0 => Ok(Value::Null),
            1 => {
                let row = rows.pop().expect("checked length");
                if row.len() != 1 {
                    Err(DbError::NonScalarSubquery)
                } else {
                    Ok(row.into_iter().next().expect("checked length"))
                }
            }
            _ => Err(DbError::NonScalarSubquery),
        }
    }

    fn run_select(&self, select: &Select) -> DbResult<Vec<Row>> {
        let key = select.from.to_ascii_lowercase();
        let (display, table) = self
            .db
            .tables
            .get(&key)
            .ok_or_else(|| DbError::NoSuchTable(select.from.clone()))?;
        let schema = table.schema();

        let has_agg = select
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg(..)));
        if has_agg
            && select
                .items
                .iter()
                .any(|i| !matches!(i, SelectItem::Agg(..)))
        {
            return Err(DbError::Type(
                "cannot mix aggregates with plain columns (no GROUP BY)".to_string(),
            ));
        }

        let mut matched: Vec<&[Value]> = Vec::new();
        for row in table.rows() {
            PlannerCounters::bump(&self.db.counters.rows_scanned, 1);
            let inner = self.child_scope(display, select.alias.as_deref(), schema, row);
            let ok = match &select.where_clause {
                None => true,
                Some(p) => inner.eval_predicate(p)?,
            };
            if ok {
                matched.push(row);
            }
        }

        if has_agg {
            let mut out = Vec::with_capacity(select.items.len());
            for item in &select.items {
                let SelectItem::Agg(func, inner_expr) = item else {
                    unreachable!("checked homogeneous aggregates");
                };
                out.push(self.eval_aggregate(
                    *func,
                    inner_expr.as_ref(),
                    display,
                    select.alias.as_deref(),
                    schema,
                    &matched,
                )?);
            }
            return Ok(vec![out]);
        }

        let mut rows_out = Vec::with_capacity(matched.len());
        for row in matched {
            let inner = self.child_scope(display, select.alias.as_deref(), schema, row);
            let mut out = Vec::new();
            for item in &select.items {
                match item {
                    SelectItem::Star => out.extend(row.iter().cloned()),
                    SelectItem::Expr(e) => out.push(inner.eval(e)?),
                    SelectItem::Agg(..) => unreachable!("handled above"),
                }
            }
            rows_out.push(out);
        }
        Ok(rows_out)
    }

    fn child_scope(
        &self,
        name: &'a str,
        alias: Option<&'a str>,
        schema: &'a Schema,
        row: &'a [Value],
    ) -> Evaluator<'a>
    where
        'a: 'a,
    {
        let mut scopes: Vec<RowScope<'a>> = Vec::with_capacity(self.scopes.len() + 1);
        for s in &self.scopes {
            scopes.push(RowScope {
                name: s.name,
                alias: s.alias,
                schema: s.schema,
                row: s.row,
            });
        }
        scopes.push(RowScope {
            name,
            alias,
            schema,
            row,
        });
        Evaluator {
            db: self.db,
            scopes,
            params: self.params,
        }
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        inner: Option<&Expr>,
        name: &'a str,
        alias: Option<&'a str>,
        schema: &'a Schema,
        rows: &[&'a [Value]],
    ) -> DbResult<Value> {
        // COUNT(*) counts rows without evaluating anything.
        if func == AggFunc::Count && inner.is_none() {
            return Ok(Value::Int(rows.len() as i64));
        }
        let expr = inner
            .ok_or_else(|| DbError::Type("only COUNT accepts '*' as its argument".to_string()))?;
        let mut values = Vec::with_capacity(rows.len());
        for row in rows {
            let scope = self.child_scope(name, alias, schema, row);
            let v = scope.eval(expr)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        // The fold itself is shared with the planned executor so the two
        // paths cannot diverge on aggregate semantics.
        plan::fold_aggregate(func, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_keywords() -> Database {
        let mut db = Database::new();
        db.run(
            "CREATE TABLE Keywords (\
               text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, relevance FLOAT)",
        )
        .unwrap();
        // The paper's Figure 4.
        db.run(
            "INSERT INTO Keywords VALUES \
               ('boot', 'Click AND Slot1', 5, 2.0, 4, 0.8), \
               ('shoe', 'Click', 6, 1.0, 8, 0.2)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_where_and_projection() {
        let mut db = db_with_keywords();
        let rows = db
            .query("SELECT text, bid FROM Keywords WHERE relevance > 0.5")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Text("boot".into()), Value::Int(4)]]);
        let star = db.query("SELECT * FROM Keywords").unwrap();
        assert_eq!(star.len(), 2);
        assert_eq!(star[0].len(), 6);
    }

    #[test]
    fn aggregates() {
        let mut db = db_with_keywords();
        let rows = db
            .query("SELECT MAX(roi), MIN(bid), SUM(bid), COUNT(*), AVG(maxbid) FROM Keywords")
            .unwrap();
        assert_eq!(
            rows[0],
            vec![
                Value::Float(2.0),
                Value::Int(4),
                Value::Int(12),
                Value::Int(2),
                Value::Float(5.5),
            ]
        );
    }

    #[test]
    fn empty_aggregates_follow_paper_semantics() {
        let mut db = db_with_keywords();
        let rows = db
            .query("SELECT SUM(bid), COUNT(*), MAX(bid) FROM Keywords WHERE bid > 100")
            .unwrap();
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(0), Value::Null]);
    }

    #[test]
    fn update_with_correlated_subquery() {
        let mut db = db_with_keywords();
        db.run("CREATE TABLE Bids (formula TEXT, value INT)")
            .unwrap();
        db.run("INSERT INTO Bids VALUES ('Click AND Slot1', 0), ('Click', 99)")
            .unwrap();
        // Figure 5 lines 22–27.
        db.run(
            "UPDATE Bids SET value = \
               ( SELECT SUM( K.bid ) FROM Keywords K \
                 WHERE K.relevance > 0.7 AND K.formula = Bids.formula )",
        )
        .unwrap();
        let rows = db.query("SELECT value FROM Bids").unwrap();
        // Figure 6: Click∧Slot1 → 4; Click → 0 (empty SUM).
        assert_eq!(rows, vec![vec![Value::Int(4)], vec![Value::Int(0)]]);
    }

    #[test]
    fn update_snapshot_semantics() {
        // WHERE roi = (SELECT MAX(roi) …) over the table being updated must
        // see the pre-update state for every row.
        let mut db = db_with_keywords();
        db.run(
            "UPDATE Keywords SET bid = bid + 1 \
             WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K ) \
               AND relevance > 0 AND bid < maxbid",
        )
        .unwrap();
        let rows = db.query("SELECT text, bid FROM Keywords").unwrap();
        assert_eq!(rows[0], vec![Value::Text("boot".into()), Value::Int(5)]);
        assert_eq!(rows[1], vec![Value::Text("shoe".into()), Value::Int(8)]);
    }

    #[test]
    fn if_elseif_with_host_vars() {
        let mut db = db_with_keywords();
        db.set_var("amtSpent", Value::Int(10));
        db.set_var("time", Value::Int(5));
        db.set_var("targetSpendRate", Value::Int(3));
        // 10/5 = 2 < 3 → underspending branch.
        db.run(
            "IF amtSpent / time < targetSpendRate THEN \
               UPDATE Keywords SET bid = bid + 1 WHERE relevance > 0; \
             ELSEIF amtSpent / time > targetSpendRate THEN \
               UPDATE Keywords SET bid = bid - 1 WHERE relevance > 0; \
             ENDIF",
        )
        .unwrap();
        let rows = db.query("SELECT bid FROM Keywords").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(5)], vec![Value::Int(9)]]);
    }

    #[test]
    fn triggers_fire_on_insert() {
        let mut db = Database::new();
        db.run("CREATE TABLE Query (text TEXT)").unwrap();
        db.run("CREATE TABLE Log (n INT)").unwrap();
        db.run("INSERT INTO Log VALUES (0)").unwrap();
        db.run("CREATE TRIGGER t AFTER INSERT ON Query { UPDATE Log SET n = n + 1; }")
            .unwrap();
        db.run("INSERT INTO Query VALUES ('boots')").unwrap();
        db.run("INSERT INTO Query VALUES ('shoes')").unwrap();
        let rows = db.query("SELECT n FROM Log").unwrap();
        assert_eq!(rows[0][0], Value::Int(2));
        // Host-side insert also fires.
        db.insert("Query", vec!["sneaker".into()]).unwrap();
        assert_eq!(db.query("SELECT n FROM Log").unwrap()[0][0], Value::Int(3));
    }

    #[test]
    fn trigger_recursion_capped() {
        let mut db = Database::new();
        db.run("CREATE TABLE a (n INT)").unwrap();
        db.run("CREATE TRIGGER loopy AFTER INSERT ON a { INSERT INTO a VALUES (1); }")
            .unwrap();
        let err = db.run("INSERT INTO a VALUES (0)").unwrap_err();
        assert_eq!(err, DbError::TriggerDepthExceeded);
    }

    #[test]
    fn delete_and_drop() {
        let mut db = db_with_keywords();
        db.run("DELETE FROM Keywords WHERE relevance < 0.5")
            .unwrap();
        assert_eq!(db.table("Keywords").unwrap().len(), 1);
        db.run("DROP TABLE Keywords").unwrap();
        assert!(matches!(
            db.run("SELECT * FROM Keywords"),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = Database::new();
        db.run("CREATE TABLE t (a INT, b TEXT, c FLOAT)").unwrap();
        db.run("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let rows = db.query("SELECT * FROM t").unwrap();
        assert_eq!(rows[0], vec![Value::Int(7), Value::Null, Value::Float(1.5)]);
    }

    #[test]
    fn three_valued_logic_in_predicates() {
        let mut db = Database::new();
        db.run("CREATE TABLE t (a INT)").unwrap();
        db.run("INSERT INTO t VALUES (1), (NULL)").unwrap();
        // NULL comparison does not match, NOT(NULL) does not match.
        assert_eq!(db.query("SELECT a FROM t WHERE a > 0").unwrap().len(), 1);
        assert_eq!(
            db.query("SELECT a FROM t WHERE NOT (a > 0)").unwrap().len(),
            0
        );
        // OR with a definite true side matches despite NULL.
        assert_eq!(
            db.query("SELECT a FROM t WHERE a > 0 OR 1 = 1")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn errors_surface() {
        let mut db = Database::new();
        assert!(matches!(
            db.run("SELECT * FROM missing"),
            Err(DbError::NoSuchTable(_))
        ));
        db.run("CREATE TABLE t (a INT)").unwrap();
        assert!(db.run("SELECT b FROM t").is_ok());
        db.run("INSERT INTO t VALUES (1)").unwrap();
        assert!(matches!(
            db.run("SELECT b FROM t"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            db.run("CREATE TABLE t (a INT)"),
            Err(DbError::TableExists(_))
        ));
        assert!(matches!(
            db.run("INSERT INTO t VALUES (1, 2)"),
            Err(DbError::Arity { .. })
        ));
        assert!(matches!(
            db.run("SELECT SUM(a), a FROM t"),
            Err(DbError::Type(_))
        ));
    }

    #[test]
    fn vars_are_case_insensitive() {
        let mut db = Database::new();
        db.set_var("AmtSpent", Value::Int(5));
        assert_eq!(db.var("amtspent"), Some(&Value::Int(5)));
        db.run("SET amtSpent = amtSpent + 1").unwrap();
        assert_eq!(db.var("AMTSPENT"), Some(&Value::Int(6)));
    }
}
