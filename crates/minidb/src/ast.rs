//! Abstract syntax for the SQL dialect.

use crate::value::{ArithOp, Value, ValueType};

/// A possibly-qualified column reference (`bid`, `K.roi`, `Bids.formula`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional table name or alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `MAX(expr)` — NULL on empty input.
    Max,
    /// `MIN(expr)` — NULL on empty input.
    Min,
    /// `SUM(expr)` — **0 on empty input** (paper Figure 6 semantics).
    Sum,
    /// `COUNT(expr)` / `COUNT(*)` — 0 on empty input.
    Count,
    /// `AVG(expr)` — NULL on empty input.
    Avg,
}

/// A statement parameter placeholder, bound to a [`Value`] at execution
/// time through the prepared-statement API (`crate::prepared`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamRef {
    /// The `n`-th `?` in the statement, 0-based in statement order.
    Positional(usize),
    /// A `:name` parameter (name stored lowercased).
    Named(String),
}

impl std::fmt::Display for ParamRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamRef::Positional(i) => write!(f, "?{}", i + 1),
            ParamRef::Named(n) => write!(f, ":{n}"),
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// A `?` / `:name` parameter placeholder (prepared statements).
    Param(ParamRef),
    /// Column (or host scalar variable, resolved at evaluation time).
    Column(ColumnRef),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// A scalar subquery: `( SELECT agg(e) FROM t [WHERE p] )`.
    Subquery(Box<Select>),
}

/// A projection item in a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain expression.
    Expr(Expr),
    /// An aggregate over an expression (`None` = `COUNT(*)`).
    Agg(AggFunc, Option<Expr>),
    /// `*` — all columns.
    Star,
}

/// A SELECT statement (also used as a scalar subquery).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Source table name.
    pub from: String,
    /// Optional alias for the source table (`FROM Keywords K`).
    pub alias: Option<String>,
    /// Optional filter.
    pub where_clause: Option<Expr>,
}

/// One `SET col = expr` clause in an UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub struct SetClause {
    /// Target column.
    pub column: String,
    /// New value expression (evaluated against the pre-update row).
    pub value: Expr,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ValueType)>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE TRIGGER name AFTER INSERT ON table { body }`
    CreateTrigger {
        /// Trigger name.
        name: String,
        /// Watched table.
        table: String,
        /// Statements run after each insert.
        body: Vec<Statement>,
    },
    /// `INSERT INTO table [(cols)] VALUES (exprs), …`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// One or more value tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE table SET … [WHERE p]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<SetClause>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE p]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `SELECT …`
    Select(Select),
    /// `IF c THEN … [ELSEIF c THEN …]* [ELSE …] ENDIF`
    If {
        /// `(condition, block)` arms in order.
        arms: Vec<(Expr, Vec<Statement>)>,
        /// Optional ELSE block.
        else_block: Option<Vec<Statement>>,
    },
    /// `SET var = expr` — assigns a host scalar variable.
    SetVar {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `EXPLAIN stmt` — plans the inner statement without executing it and
    /// returns the chosen physical access paths
    /// ([`crate::ExecOutcome::Explain`]).
    Explain(Box<Statement>),
}
