//! Tokenizer for the SQL dialect.

use crate::error::{DbError, DbResult};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub position: usize,
}

/// Token kinds. Keywords are recognised case-insensitively and carried as
/// `Keyword`; all other words are `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword such as `SELECT` (uppercased).
    Keyword(String),
    /// An identifier (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, quotes stripped).
    Str(String),
    /// One of `( ) { } , ; . * + - / %`.
    Symbol(char),
    /// `?` — a positional statement parameter (prepared statements).
    Question,
    /// `:name` — a named statement parameter (prepared statements);
    /// carries the name lowercased.
    NamedParam(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

const KEYWORDS: &[&str] = &[
    "CREATE", "TABLE", "TRIGGER", "AFTER", "INSERT", "ON", "INTO", "VALUES", "UPDATE", "SET",
    "WHERE", "SELECT", "FROM", "DELETE", "IF", "THEN", "ELSEIF", "ELSE", "ENDIF", "AND", "OR",
    "NOT", "NULL", "TRUE", "FALSE", "MAX", "MIN", "SUM", "COUNT", "AVG", "INT", "FLOAT", "TEXT",
    "BOOL", "AS", "INTEGER", "REAL", "VARCHAR", "BOOLEAN", "DROP",
];

/// Tokenizes an input string.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Line comments: `--` to end of line.
        if c == '-' && bytes.get(pos + 1) == Some(&b'-') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        match c {
            '(' | ')' | '{' | '}' | ',' | ';' | '.' | '*' | '+' | '-' | '/' | '%' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(c),
                    position: start,
                });
                pos += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                pos += 1;
            }
            '?' => {
                tokens.push(Token {
                    kind: TokenKind::Question,
                    position: start,
                });
                pos += 1;
            }
            ':' => {
                pos += 1;
                let mut end = pos;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                if end == pos || (bytes[pos] as char).is_ascii_digit() {
                    return Err(DbError::Lex {
                        message: "expected a parameter name after ':'".to_string(),
                        position: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::NamedParam(input[pos..end].to_ascii_lowercase()),
                    position: start,
                });
                pos = end;
            }
            '<' => {
                pos += 1;
                let kind = match bytes.get(pos) {
                    Some(b'=') => {
                        pos += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        pos += 1;
                        TokenKind::Neq
                    }
                    _ => TokenKind::Lt,
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
            }
            '>' => {
                pos += 1;
                let kind = if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
            }
            '!' => {
                pos += 1;
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        position: start,
                    });
                } else {
                    return Err(DbError::Lex {
                        message: "expected '=' after '!'".to_string(),
                        position: start,
                    });
                }
            }
            '\'' => {
                pos += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(DbError::Lex {
                                message: "unterminated string literal".to_string(),
                                position: start,
                            })
                        }
                        Some(b'\'') => {
                            // '' escapes a quote.
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                text.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            text.push(b as char);
                            pos += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    position: start,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut end = pos;
                let mut is_float = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.'
                        && !is_float
                        && bytes
                            .get(end + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[pos..end];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| DbError::Lex {
                        message: format!("bad float literal {text:?}"),
                        position: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| DbError::Lex {
                        message: format!("bad int literal {text:?}"),
                        position: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
                pos = end;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = pos;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[pos..end];
                let upper = word.to_ascii_uppercase();
                // Keywords keep their original spelling: some ("TEXT",
                // "MAX", …) may be re-used as identifiers by the parser.
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(word.to_string())
                } else {
                    TokenKind::Ident(word.to_string())
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
                pos = end;
            }
            other => {
                return Err(DbError::Lex {
                    message: format!("unexpected character {other:?}"),
                    position: start,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("SELECT bid FROM Keywords"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("bid".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("Keywords".into()),
            ]
        );
        // Keywords are recognised case-insensitively but keep their
        // spelling (the parser may re-use soft keywords as identifiers).
        assert_eq!(kinds("select")[0], TokenKind::Keyword("select".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0.7 3.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(0.7),
                TokenKind::Float(3.25),
            ]
        );
        // `1.` is Int then symbol (qualified-name dots must survive).
        assert_eq!(
            kinds("K.roi"),
            vec![
                TokenKind::Ident("K".into()),
                TokenKind::Symbol('.'),
                TokenKind::Ident("roi".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'boot' 'it''s'"),
            vec![TokenKind::Str("boot".into()), TokenKind::Str("it's".into()),]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("bid -- the tentative bid\n + 1"),
            vec![
                TokenKind::Ident("bid".into()),
                TokenKind::Symbol('+'),
                TokenKind::Int(1),
            ]
        );
    }

    #[test]
    fn parameters() {
        assert_eq!(
            kinds("? :Name :a_1"),
            vec![
                TokenKind::Question,
                TokenKind::NamedParam("name".into()),
                TokenKind::NamedParam("a_1".into()),
            ]
        );
        assert!(tokenize(":").is_err());
        assert!(tokenize(":1abc").is_err());
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(matches!(err, DbError::Lex { position: 2, .. }));
    }
}
