//! Secondary hash indexes over table columns.
//!
//! An index maps the value of one `INT` or `TEXT` column to the (ascending)
//! row indices holding that value. Indexes are *derived* state: they are
//! created on demand by the planner ([`crate::plan`]) the first time a
//! statement probes a column, and maintained incrementally by
//! [`crate::table::Table`] on every insert, cell update, delete, and clear.
//!
//! Two invariants keep the index path bit-identical to a full scan:
//!
//! * posting lists are kept **sorted ascending**, so rows come back in scan
//!   order;
//! * NULL cells are **not indexed** — a NULL never equals anything under
//!   three-valued logic, so an equality probe must not return it.
//!
//! The map is keyed by the column's native type (`i64` or `String`) rather
//! than a boxed key enum, so an equality probe borrows the probe value —
//! no allocation on the lookup path, which bidding-program triggers hit
//! several times per auction. Keys are hashed with FNV-1a: the keys are
//! machine integers and short keyword strings, where FNV beats the
//! collision-resistant default hasher and table data is not adversarial.

use crate::table::Row;
use crate::value::{Value, ValueType};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, the classic multiply-xor hash. Quality is ample for posting
/// maps keyed by row values; speed on 8-byte ints and short strings is the
/// point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }
}

/// Build-hasher handle for FNV-keyed maps; also used by [`crate::exec`] for
/// the catalog and host-variable maps, which are probed by short lowercase
/// names on every statement.
pub(crate) type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

type FnvMap<K> = HashMap<K, Vec<usize>, FnvBuildHasher>;

/// The postings keyed by the indexed column's native type. Only exact-type
/// matches are indexed: an `INT` column indexes `Value::Int` cells, a
/// `TEXT` column `Value::Text` cells. (Mixed numeric equality like
/// `Int(2) = Float(2.0)` is true under the engine's comparison rules,
/// which is exactly why the planner falls back to a scan whenever the
/// probe key's type is not the column's type.)
#[derive(Debug, Clone)]
enum KeyMap {
    /// Postings of an `INT` column.
    Int(FnvMap<i64>),
    /// Postings of a `TEXT` column.
    Text(FnvMap<String>),
}

impl KeyMap {
    fn for_type(ty: ValueType) -> Option<KeyMap> {
        match ty {
            ValueType::Int => Some(KeyMap::Int(FnvMap::default())),
            ValueType::Text => Some(KeyMap::Text(FnvMap::default())),
            ValueType::Float | ValueType::Bool => None,
        }
    }
}

/// A hash index on one column: value → sorted row indices.
#[derive(Debug, Clone)]
pub(crate) struct HashIndex {
    col: usize,
    map: KeyMap,
}

impl HashIndex {
    /// Builds an index over the existing rows. `ty` must be `INT` or
    /// `TEXT`; the planner never requests a float index (float equality is
    /// not probe-stable).
    pub(crate) fn build(col: usize, ty: ValueType, rows: &[Row]) -> Self {
        let map = KeyMap::for_type(ty).expect("only INT and TEXT columns are indexable");
        let mut index = HashIndex { col, map };
        for (ridx, row) in rows.iter().enumerate() {
            index.note_insert(ridx, row);
        }
        index
    }

    /// The indexed column ordinal.
    pub(crate) fn column(&self) -> usize {
        self.col
    }

    /// Row indices (ascending) whose cell equals `key`, or `None` when the
    /// probe value's type is not the column's type (caller must scan).
    /// Borrows the probe value — the serving path allocates nothing here.
    pub(crate) fn lookup(&self, key: &Value) -> Option<&[usize]> {
        let postings = match (&self.map, key) {
            (KeyMap::Int(map), Value::Int(i)) => map.get(i),
            (KeyMap::Text(map), Value::Text(s)) => map.get(s.as_str()),
            _ => return None,
        };
        Some(postings.map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// Maintains the index after `row` was appended at `ridx`.
    pub(crate) fn note_insert(&mut self, ridx: usize, row: &[Value]) {
        // Appended rows have the largest index so far: pushing keeps the
        // posting list sorted.
        match (&mut self.map, &row[self.col]) {
            (KeyMap::Int(map), Value::Int(i)) => map.entry(*i).or_default().push(ridx),
            (KeyMap::Text(map), Value::Text(s)) => map.entry(s.clone()).or_default().push(ridx),
            _ => {}
        }
    }

    /// Maintains the index after row `ridx`'s indexed cell changed from
    /// `old` to `new`. Call only when the mutated column is this one.
    pub(crate) fn note_set_cell(&mut self, ridx: usize, old: &Value, new: &Value) {
        match (&mut self.map, old) {
            (KeyMap::Int(map), Value::Int(i)) => unlink(map, i, ridx),
            (KeyMap::Text(map), Value::Text(s)) => unlink(map, s.as_str(), ridx),
            _ => {}
        }
        match (&mut self.map, new) {
            (KeyMap::Int(map), Value::Int(i)) => link(map.entry(*i).or_default(), ridx),
            (KeyMap::Text(map), Value::Text(s)) => link(map.entry(s.clone()).or_default(), ridx),
            _ => {}
        }
    }

    /// Maintains the index before the rows at `sorted_doomed` (ascending,
    /// deduplicated) are removed: deleted postings vanish, survivors shift
    /// down by the number of deletions below them.
    pub(crate) fn note_delete(&mut self, sorted_doomed: &[usize]) {
        let remap = |postings: &mut Vec<usize>| {
            postings.retain_mut(|ridx| match sorted_doomed.binary_search(ridx) {
                Ok(_) => false,
                Err(shift) => {
                    *ridx -= shift;
                    true
                }
            });
            !postings.is_empty()
        };
        match &mut self.map {
            KeyMap::Int(map) => map.retain(|_, postings| remap(postings)),
            KeyMap::Text(map) => map.retain(|_, postings| remap(postings)),
        }
    }

    /// Maintains the index after all rows were removed.
    pub(crate) fn note_clear(&mut self) {
        match &mut self.map {
            KeyMap::Int(map) => map.clear(),
            KeyMap::Text(map) => map.clear(),
        }
    }

    /// Total indexed postings (test introspection).
    #[cfg(test)]
    fn postings_len(&self) -> usize {
        match &self.map {
            KeyMap::Int(map) => map.values().map(Vec::len).sum(),
            KeyMap::Text(map) => map.values().map(Vec::len).sum(),
        }
    }
}

/// Removes `ridx` from the posting list under `key` (if present), dropping
/// the map entry when the list empties.
fn unlink<K, Q>(map: &mut FnvMap<K>, key: &Q, ridx: usize)
where
    K: std::borrow::Borrow<Q> + Eq + std::hash::Hash,
    Q: Eq + std::hash::Hash + ?Sized,
{
    let Some(postings) = map.get_mut(key) else {
        return;
    };
    if let Ok(at) = postings.binary_search(&ridx) {
        postings.remove(at);
    }
    if postings.is_empty() {
        map.remove(key);
    }
}

/// Inserts `ridx` into a sorted posting list (idempotent).
fn link(postings: &mut Vec<usize>, ridx: usize) {
    if let Err(at) = postings.binary_search(&ridx) {
        postings.insert(at, ridx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(5), Value::Text("a".into())],
            vec![Value::Int(7), Value::Text("b".into())],
            vec![Value::Int(5), Value::Text("c".into())],
            vec![Value::Null, Value::Text("d".into())],
        ]
    }

    #[test]
    fn build_and_lookup() {
        let idx = HashIndex::build(0, ValueType::Int, &rows());
        assert_eq!(idx.lookup(&Value::Int(5)), Some(&[0, 2][..]));
        assert_eq!(idx.lookup(&Value::Int(7)), Some(&[1][..]));
        assert_eq!(idx.lookup(&Value::Int(9)), Some(&[][..]));
        // Type-mismatched probes (and NULL) are unanswerable.
        assert_eq!(idx.lookup(&Value::Float(5.0)), None);
        assert_eq!(idx.lookup(&Value::Null), None);
    }

    #[test]
    fn nulls_are_not_indexed() {
        let idx = HashIndex::build(0, ValueType::Int, &rows());
        assert_eq!(idx.postings_len(), 3);
    }

    #[test]
    fn set_cell_moves_postings() {
        let mut idx = HashIndex::build(0, ValueType::Int, &rows());
        idx.note_set_cell(0, &Value::Int(5), &Value::Int(7));
        assert_eq!(idx.lookup(&Value::Int(5)), Some(&[2][..]));
        assert_eq!(idx.lookup(&Value::Int(7)), Some(&[0, 1][..]));
        // NULL leaves the index.
        idx.note_set_cell(1, &Value::Int(7), &Value::Null);
        assert_eq!(idx.lookup(&Value::Int(7)), Some(&[0][..]));
    }

    #[test]
    fn delete_remaps_survivors() {
        let mut idx = HashIndex::build(0, ValueType::Int, &rows());
        // Delete rows 0 and 1: old row 2 becomes row 0.
        idx.note_delete(&[0, 1]);
        assert_eq!(idx.lookup(&Value::Int(5)), Some(&[0][..]));
        assert_eq!(idx.lookup(&Value::Int(7)), Some(&[][..]));
    }

    #[test]
    fn text_index() {
        let idx = HashIndex::build(1, ValueType::Text, &rows());
        assert_eq!(idx.lookup(&Value::Text("c".into())), Some(&[2][..]));
        assert_eq!(idx.lookup(&Value::Int(1)), None);
    }

    #[test]
    fn fnv_distinguishes_lengths_and_prefixes() {
        let hash = |bytes: &[u8]| {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b""), hash(b"\0"));
        assert_ne!(hash(b"kw1"), hash(b"kw10"));
        assert_ne!(hash(b"kw1"), hash(b"kw2"));
    }
}
