//! # ssa-minidb — a small relational engine for bidding programs
//!
//! Section II-B of the paper lets advertisers submit *bidding programs*:
//! "programs can … be written using simple SQL updates without recursion and
//! side-effects. SQL triggers can be used to activate programs when an
//! auction begins". This crate is the from-scratch substrate that executes
//! those programs: an in-memory relational engine with
//!
//! * typed [`Value`]s (integers, floats, text, booleans, NULL),
//! * [`Table`]s with named, typed columns,
//! * a SQL-dialect [`parser`] covering `CREATE TABLE`, `CREATE TRIGGER …
//!   AFTER INSERT ON … { … }`, `INSERT`, `UPDATE … SET … WHERE`, `DELETE`,
//!   `SELECT` with aggregates (`MAX`/`MIN`/`SUM`/`COUNT`/`AVG`), scalar
//!   subqueries (correlated on the row being updated), and
//!   `IF/ELSEIF/ELSE/ENDIF` blocks,
//! * an [`exec`] interpreter with snapshot semantics for updates and
//!   `AFTER INSERT` trigger firing,
//! * host-visible scalar variables (`amtSpent`, `time`,
//!   `targetSpendRate`, …) that the auction engine sets before each run,
//! * a [`prepared`] statement layer ([`Database::prepare`] → [`Prepared`]
//!   plus [`Params`] binding of `?`/`:name` placeholders) so hot paths
//!   parse each program once and run it many times.
//!
//! The paper's Figure 5 "Equalize ROI" program runs unmodified (up to the
//! obvious typo on its line 11 — see `tests/figure5.rs`).
//!
//! ```
//! use ssa_minidb::Database;
//!
//! let mut db = Database::new();
//! db.run("CREATE TABLE Keywords (text TEXT, bid INT)").unwrap();
//! db.run("INSERT INTO Keywords VALUES ('boot', 4)").unwrap();
//! db.run("UPDATE Keywords SET bid = bid + 1 WHERE text = 'boot'").unwrap();
//! let rows = db.query("SELECT bid FROM Keywords").unwrap();
//! assert_eq!(rows[0][0].as_int().unwrap(), 5);
//! ```
//!
//! Deviation from ISO SQL, chosen to match the paper's Figure 6 expectation:
//! `SUM` over an empty set is `0` (not NULL); `COUNT` is `0`; `MAX`, `MIN`
//! and `AVG` over an empty set are NULL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod prepared;
pub mod table;
pub mod value;

pub use error::{DbError, DbResult};
pub use exec::{Database, ExecOutcome};
pub use prepared::{Params, Prepared};
pub use table::{Column, Row, Schema, Table};
pub use value::{Value, ValueType};
