//! # ssa-minidb — a small relational engine for bidding programs
//!
//! Section II-B of the paper lets advertisers submit *bidding programs*:
//! "programs can … be written using simple SQL updates without recursion and
//! side-effects. SQL triggers can be used to activate programs when an
//! auction begins". This crate is the from-scratch substrate that executes
//! those programs: an in-memory relational engine with
//!
//! * typed [`Value`]s (integers, floats, text, booleans, NULL),
//! * [`Table`]s with named, typed columns,
//! * a SQL-dialect [`parser`] covering `CREATE TABLE`, `CREATE TRIGGER …
//!   AFTER INSERT ON … { … }`, `INSERT`, `UPDATE … SET … WHERE`, `DELETE`,
//!   `SELECT` with aggregates (`MAX`/`MIN`/`SUM`/`COUNT`/`AVG`), scalar
//!   subqueries (correlated on the row being updated), and
//!   `IF/ELSEIF/ELSE/ENDIF` blocks,
//! * an [`exec`] interpreter with snapshot semantics for updates and
//!   `AFTER INSERT` trigger firing,
//! * host-visible scalar variables (`amtSpent`, `time`,
//!   `targetSpendRate`, …) that the auction engine sets before each run,
//! * a [`prepared`] statement layer ([`Database::prepare`] → [`Prepared`]
//!   plus [`Params`] binding of `?`/`:name` placeholders) so hot paths
//!   parse each program once and run it many times.
//!
//! The paper's Figure 5 "Equalize ROI" program runs unmodified (up to the
//! obvious typo on its line 11 — see `tests/figure5.rs`).
//!
//! ## Query planning and compiled triggers
//!
//! Execution is layered, not interpreted from the AST on every run:
//!
//! 1. **Logical lowering** — each statement of a [`Prepared`] script or
//!    trigger body is lowered once into a plan ([`plan`] module) and cached
//!    behind the statement list; clones of a [`Prepared`] or of a
//!    [`Database`] share the cache.
//! 2. **Secondary hash indexes** — [`Table`] maintains hash indexes on
//!    `INT`/`TEXT` columns incrementally through every `INSERT`, `UPDATE`,
//!    and `DELETE`. Indexes are created on demand by the planner the first
//!    time a plan needs one.
//! 3. **Access-path planning** — a tiny planner turns `WHERE col = key`
//!    into an index lookup when it can prove the result (including errors)
//!    is identical to a scan; everything else stays a full scan.
//!    [`Database::explain`] (SQL: `EXPLAIN <stmt>`) reports the chosen
//!    access path without executing anything.
//! 4. **Compiled predicates** — expressions are compiled to a flat
//!    postfix op sequence over [`Value`]s, so the per-row hot loop never
//!    recurses through the AST.
//!
//! The planned pipeline is bit-for-bit equivalent to the reference
//! interpreter — same rows, same errors, same trigger side effects — which
//! `tests/planner_equivalence.rs` checks property-style. Set the
//! `SSA_MINIDB_FORCE_SCAN` environment variable (or
//! [`Database::set_planner_mode`]) to pin the interpreter for A/B runs,
//! and read [`Database::planner_stats`] for `index_hits` / `rows_scanned` /
//! `plans_cached` counters.
//!
//! ```
//! use ssa_minidb::Database;
//!
//! let mut db = Database::new();
//! db.run("CREATE TABLE Keywords (text TEXT, bid INT)").unwrap();
//! db.run("INSERT INTO Keywords VALUES ('boot', 4)").unwrap();
//! db.run("UPDATE Keywords SET bid = bid + 1 WHERE text = 'boot'").unwrap();
//! let rows = db.query("SELECT bid FROM Keywords").unwrap();
//! assert_eq!(rows[0][0].as_int().unwrap(), 5);
//! ```
//!
//! Deviation from ISO SQL, chosen to match the paper's Figure 6 expectation:
//! `SUM` over an empty set is `0` (not NULL); `COUNT` is `0`; `MAX`, `MIN`
//! and `AVG` over an empty set are NULL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod compile;
pub mod error;
pub mod exec;
mod index;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod prepared;
pub mod table;
pub mod value;

pub use error::{DbError, DbResult};
pub use exec::{Database, ExecOutcome};
pub use plan::{ExplainAccess, ExplainLine, PlannerMode, PlannerStats};
pub use prepared::{Params, Prepared};
pub use table::{Column, Row, Schema, Table};
pub use value::{Value, ValueType};
