//! Tables, schemas, and rows.

use crate::error::{DbError, DbResult};
use crate::index::HashIndex;
use crate::value::{Value, ValueType};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

/// One row of values, aligned with a [`Schema`].
pub type Row = Vec<Value>;

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names (case-insensitive).
    pub fn new<I: IntoIterator<Item = (String, ValueType)>>(cols: I) -> Self {
        let columns: Vec<Column> = cols
            .into_iter()
            .map(|(name, ty)| Column { name, ty })
            .collect();
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert!(
                    !a.name.eq_ignore_ascii_case(&b.name),
                    "duplicate column {}",
                    a.name
                );
            }
        }
        Schema { columns }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// An in-memory table: a schema plus rows, plus any secondary indexes the
/// planner has requested (see `crate::index`). Indexes are derived state
/// and excluded from equality.
#[derive(Debug, Clone, Default)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    indexes: Vec<HashIndex>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        // Indexes are a cache over (schema, rows): two tables with the same
        // data are equal no matter which access paths have been exercised.
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after checking arity and types.
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        if row.len() != self.schema.len() {
            return Err(DbError::Arity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        let mut coerced = row;
        for (value, col) in coerced.iter_mut().zip(self.schema.columns()) {
            if !value.conforms_to(col.ty) {
                return Err(DbError::Type(format!(
                    "value {value} does not fit column {} ({})",
                    col.name, col.ty
                )));
            }
            // Widen INT into FLOAT columns eagerly so later reads are uniform.
            if col.ty == ValueType::Float {
                if let Value::Int(i) = value {
                    *value = Value::Float(*i as f64);
                }
            }
        }
        self.rows.push(coerced);
        let ridx = self.rows.len() - 1;
        let row = &self.rows[ridx];
        for index in &mut self.indexes {
            index.note_insert(ridx, row);
        }
        Ok(())
    }

    /// Mutable access for the executor (indices come from a prior scan).
    pub(crate) fn set_cell(&mut self, row: usize, col: usize, value: Value) -> DbResult<()> {
        let col_def = &self.schema.columns()[col];
        let mut value = value;
        if !value.conforms_to(col_def.ty) {
            return Err(DbError::Type(format!(
                "value {value} does not fit column {} ({})",
                col_def.name, col_def.ty
            )));
        }
        if col_def.ty == ValueType::Float {
            if let Value::Int(i) = value {
                value = Value::Float(i as f64);
            }
        }
        let old = std::mem::replace(&mut self.rows[row][col], value);
        let new = &self.rows[row][col];
        for index in &mut self.indexes {
            if index.column() == col {
                index.note_set_cell(row, &old, new);
            }
        }
        Ok(())
    }

    /// Removes the rows at the given (sorted ascending, deduplicated)
    /// indices.
    pub(crate) fn delete_rows(&mut self, sorted_indices: &[usize]) {
        for index in &mut self.indexes {
            index.note_delete(sorted_indices);
        }
        for &idx in sorted_indices.iter().rev() {
            self.rows.remove(idx);
        }
    }

    /// Removes all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
        for index in &mut self.indexes {
            index.note_clear();
        }
    }

    /// Builds a secondary index on column `col` if one does not already
    /// exist. Returns `false` (and builds nothing) when the column's type is
    /// not indexable (only `INT` and `TEXT` equality is).
    pub(crate) fn ensure_index(&mut self, col: usize) -> bool {
        if self.indexes.iter().any(|i| i.column() == col) {
            return true;
        }
        let ty = self.schema.columns()[col].ty;
        if !matches!(ty, ValueType::Int | ValueType::Text) {
            return false;
        }
        self.indexes.push(HashIndex::build(col, ty, &self.rows));
        true
    }

    /// Probes the index on `col` for rows whose cell equals `key`, in
    /// ascending row order. `None` means the probe cannot be answered by an
    /// index — none exists on that column, or the key's type is not the
    /// column's exact type — and the caller must fall back to a scan.
    pub(crate) fn index_lookup(&self, col: usize, key: &Value) -> Option<&[usize]> {
        self.indexes
            .iter()
            .find(|i| i.column() == col)
            .and_then(|i| i.lookup(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name".to_string(), ValueType::Text),
            ("bid".to_string(), ValueType::Int),
            ("roi".to_string(), ValueType::Float),
        ])
    }

    #[test]
    fn schema_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("BID"), Some(1));
        assert_eq!(s.index_of("Roi"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![
            ("a".to_string(), ValueType::Int),
            ("A".to_string(), ValueType::Int),
        ]);
    }

    #[test]
    fn insert_type_checked() {
        let mut t = Table::new(schema());
        t.insert(vec!["boot".into(), Value::Int(5), Value::Int(2)])
            .unwrap();
        // INT widened into the FLOAT column.
        assert_eq!(t.rows()[0][2], Value::Float(2.0));
        let err = t.insert(vec![Value::Int(1), Value::Int(5), Value::Float(2.0)]);
        assert!(matches!(err, Err(DbError::Type(_))));
        let err = t.insert(vec!["x".into()]);
        assert!(matches!(
            err,
            Err(DbError::Arity {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn null_fits_any_column() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn indexes_follow_mutations() {
        let mut t = Table::new(schema());
        assert!(t.ensure_index(1)); // bid INT — indexable
        assert!(!t.ensure_index(2)); // roi FLOAT — not indexable
        for i in 0..4 {
            t.insert(vec!["k".into(), Value::Int(i % 2), Value::Float(0.0)])
                .unwrap();
        }
        assert_eq!(t.index_lookup(1, &Value::Int(0)), Some(&[0, 2][..]));
        assert_eq!(t.index_lookup(2, &Value::Float(0.0)), None);
        t.set_cell(0, 1, Value::Int(1)).unwrap();
        assert_eq!(t.index_lookup(1, &Value::Int(1)), Some(&[0, 1, 3][..]));
        t.delete_rows(&[1]);
        assert_eq!(t.index_lookup(1, &Value::Int(1)), Some(&[0, 2][..]));
        t.clear();
        assert_eq!(t.index_lookup(1, &Value::Int(1)), Some(&[][..]));
        // Equality ignores derived index state.
        assert_eq!(t, Table::new(schema()));
    }

    #[test]
    fn delete_rows_in_reverse() {
        let mut t = Table::new(Schema::new(vec![("v".to_string(), ValueType::Int)]));
        for i in 0..5 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t.delete_rows(&[1, 3]);
        let left: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(left, vec![0, 2, 4]);
    }
}
