//! Compiled expressions: the `Expr` tree lowered to a flat op sequence.
//!
//! The interpreter in [`crate::exec`] walks the AST for every row; this
//! module lowers an expression **once** — resolving every column reference
//! to a `(scope depth, column offset)` pair against the statically known
//! scope stack — into a postfix op sequence evaluated by a small stack
//! machine with no name resolution and no AST recursion (scalar subqueries,
//! which carry their own plans, are the one re-entry point).
//!
//! Lowering is *total*: references that cannot resolve compile to ops that
//! raise the exact error the interpreter would raise at the same point in
//! evaluation order. `AND`/`OR` compile to non-short-circuit Kleene ops
//! (`a, TRUTH, b, TRUTH, AND`) so that both operands are always evaluated —
//! including their errors — exactly as the interpreter does.

use crate::ast::{CmpOp, ColumnRef, Expr};
use crate::error::{DbError, DbResult};
use crate::exec::Database;
use crate::plan::{run_planned_select, PlannedSelect};
use crate::prepared::Params;
use crate::table::Schema;
use crate::value::{ArithOp, Value, ValueType};

/// One op of the expression stack machine.
#[derive(Debug)]
pub(crate) enum Op {
    /// Push a literal value.
    PushLiteral(Value),
    /// Push a bound parameter (`?n` / `:name`).
    PushParam(crate::ast::ParamRef),
    /// Push the cell at `(scope depth, column offset)` — depths are absolute
    /// in the runtime scope stack, outermost first.
    PushColumn {
        /// Absolute scope depth.
        depth: usize,
        /// Column offset within that scope's row.
        col: usize,
    },
    /// Push a host scalar variable (the unqualified-name fallback).
    PushVar {
        /// Lowercased variable name.
        lower: String,
        /// Original spelling, for the `NoSuchColumn` error.
        display: String,
    },
    /// Pop two, apply arithmetic, push.
    Arith(ArithOp),
    /// Pop one, negate, push.
    Neg,
    /// Pop two, compare (three-valued), push `Bool`/`Null`.
    Cmp(CmpOp),
    /// Pop one, require `Bool`/`Null` (truth position), push it back.
    Truth,
    /// Pop two truth values, push their Kleene AND.
    AndK,
    /// Pop two truth values, push their Kleene OR.
    OrK,
    /// Pop one truth value, push its Kleene NOT.
    NotK,
    /// Run a planned scalar subquery, push its value.
    Subquery(Box<PlannedSelect>),
    /// Raise a lazily-diagnosed lowering error (e.g. an unresolvable
    /// qualified column) at exactly the evaluation point where the
    /// interpreter would raise it.
    Raise(DbError),
}

/// A compiled expression: a postfix op sequence, plus a pre-classified
/// evaluation shape so the (very common) tiny expressions — a lone leaf, or
/// `leaf ⊕ leaf` — skip the stack machine entirely.
#[derive(Debug, Default)]
pub(crate) struct CompiledExpr {
    ops: Vec<Op>,
    shape: Shape,
}

/// Static evaluation shape of an op sequence. Fast shapes evaluate in
/// exactly the stack machine's order (left leaf, right leaf, combine) so
/// values *and errors* are bit-identical to the general path.
#[derive(Debug, Default, Clone, Copy)]
enum Shape {
    /// One push op: the expression is a single leaf.
    Leaf,
    /// `[leaf, Truth]`: a leaf in condition position.
    LeafTruth,
    /// `[leaf, leaf, Cmp(op)]` — optionally followed by `Truth`, which is
    /// the identity after a comparison (a `Cmp` yields only `Bool` or
    /// `NULL`, both of which `Truth` passes through unchanged).
    CmpLeaves(CmpOp),
    /// `[leaf, leaf, Arith(op)]`.
    ArithLeaves(ArithOp),
    /// Anything else: run the stack machine.
    #[default]
    General,
}

fn is_leaf(op: &Op) -> bool {
    matches!(
        op,
        Op::PushLiteral(_) | Op::PushParam(_) | Op::PushColumn { .. } | Op::PushVar { .. }
    )
}

fn classify(ops: &[Op]) -> Shape {
    match ops {
        [l] if is_leaf(l) => Shape::Leaf,
        [l, Op::Truth] if is_leaf(l) => Shape::LeafTruth,
        [a, b, Op::Cmp(op)] | [a, b, Op::Cmp(op), Op::Truth] if is_leaf(a) && is_leaf(b) => {
            Shape::CmpLeaves(*op)
        }
        [a, b, Op::Arith(op)] if is_leaf(a) && is_leaf(b) => Shape::ArithLeaves(*op),
        _ => Shape::General,
    }
}

impl CompiledExpr {
    fn from_ops(ops: Vec<Op>) -> Self {
        let shape = classify(&ops);
        CompiledExpr { ops, shape }
    }
}

/// Evaluates a push op directly to its value (fast-shape path).
fn leaf_value(op: &Op, cx: &EvalCx<'_>) -> DbResult<Value> {
    match op {
        Op::PushLiteral(v) => Ok(v.clone()),
        Op::PushParam(p) => cx.params.resolve(p),
        Op::PushColumn { depth, col } => Ok(cx.scopes[*depth][*col].clone()),
        Op::PushVar { lower, display } => match cx.db.vars.get(lower) {
            Some(v) => Ok(v.clone()),
            None => Err(DbError::NoSuchColumn(display.clone())),
        },
        _ => unreachable!("classify only marks push ops as leaves"),
    }
}

/// Row scopes live inline up to this nesting depth; real statements nest a
/// scan inside at most a couple of subqueries, so the spill vector stays
/// empty (and unallocated) in practice.
const INLINE_SCOPES: usize = 8;

/// The stack of row slices in scope (outermost first, matching the depths
/// baked into `PushColumn`). Inline storage keeps the serving path free of
/// a per-statement heap allocation — a lifetime-parameterised `Vec` cannot
/// join the thread-local pool the value stack uses.
pub(crate) struct ScopeStack<'a> {
    len: usize,
    inline: [&'a [Value]; INLINE_SCOPES],
    spill: Vec<&'a [Value]>,
}

impl<'a> ScopeStack<'a> {
    fn new() -> Self {
        ScopeStack {
            len: 0,
            inline: [&[]; INLINE_SCOPES],
            spill: Vec::new(),
        }
    }

    /// Pushes the row entering scope (a scan or subquery descending).
    pub(crate) fn push(&mut self, row: &'a [Value]) {
        if self.len < INLINE_SCOPES {
            self.inline[self.len] = row;
        } else {
            self.spill.push(row);
        }
        self.len += 1;
    }

    /// Pops the innermost scope.
    pub(crate) fn pop(&mut self) {
        debug_assert!(self.len > 0, "scope stack underflow");
        self.len -= 1;
        if self.len >= INLINE_SCOPES {
            self.spill.pop();
        }
    }
}

impl std::ops::Index<usize> for ScopeStack<'_> {
    type Output = [Value];

    fn index(&self, depth: usize) -> &[Value] {
        if depth < INLINE_SCOPES {
            self.inline[depth]
        } else {
            self.spill[depth - INLINE_SCOPES]
        }
    }
}

/// The runtime context compiled expressions evaluate in: the database (for
/// variables, subquery tables, and counters), the statement's parameter
/// bindings, the scope stack of row slices (outermost first, matching the
/// depths baked into `PushColumn`), and a reusable value stack.
pub(crate) struct EvalCx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) params: &'a Params,
    pub(crate) scopes: ScopeStack<'a>,
    stack: Vec<Value>,
}

// One warm value stack per thread: statements execute back to back (a few
// hundred thousand per serving run), and paying a fresh heap allocation for
// every statement's stack dominated the planned path's fixed cost. The pool
// holds at most one buffer; a nested context (none exist today, but the
// take/put protocol tolerates them) simply starts cold.
thread_local! {
    static STACK_POOL: std::cell::Cell<Vec<Value>> = const { std::cell::Cell::new(Vec::new()) };
}

impl<'a> EvalCx<'a> {
    pub(crate) fn new(db: &'a Database, params: &'a Params) -> Self {
        EvalCx {
            db,
            params,
            scopes: ScopeStack::new(),
            stack: STACK_POOL.with(std::cell::Cell::take),
        }
    }
}

impl Drop for EvalCx<'_> {
    fn drop(&mut self) {
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        STACK_POOL.with(|pool| pool.set(stack));
    }
}

fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Neq => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

fn kleene_and(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn kleene_or(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

impl CompiledExpr {
    /// Evaluates to a value, leaving `cx`'s stack balanced even on error.
    /// Fast shapes never touch the stack; evaluation order (and therefore
    /// which error surfaces) is identical to the general machine.
    pub(crate) fn eval(&self, cx: &mut EvalCx<'_>) -> DbResult<Value> {
        match self.shape {
            Shape::Leaf => leaf_value(&self.ops[0], cx),
            Shape::LeafTruth => match leaf_value(&self.ops[0], cx)? {
                v @ (Value::Bool(_) | Value::Null) => Ok(v),
                other => Err(DbError::Type(format!("expected a condition, got {other}"))),
            },
            Shape::CmpLeaves(op) => {
                let lhs = leaf_value(&self.ops[0], cx)?;
                let rhs = leaf_value(&self.ops[1], cx)?;
                Ok(match lhs.compare(&rhs)? {
                    None => Value::Null,
                    Some(ord) => Value::Bool(cmp_holds(op, ord)),
                })
            }
            Shape::ArithLeaves(op) => {
                let lhs = leaf_value(&self.ops[0], cx)?;
                let rhs = leaf_value(&self.ops[1], cx)?;
                lhs.arith(op, &rhs)
            }
            Shape::General => {
                let base = cx.stack.len();
                let result = self.eval_inner(cx);
                if result.is_err() {
                    cx.stack.truncate(base);
                }
                result
            }
        }
    }

    fn eval_inner(&self, cx: &mut EvalCx<'_>) -> DbResult<Value> {
        for op in &self.ops {
            match op {
                Op::PushLiteral(v) => cx.stack.push(v.clone()),
                Op::PushParam(p) => {
                    let v = cx.params.resolve(p)?;
                    cx.stack.push(v);
                }
                Op::PushColumn { depth, col } => cx.stack.push(cx.scopes[*depth][*col].clone()),
                Op::PushVar { lower, display } => match cx.db.vars.get(lower) {
                    Some(v) => cx.stack.push(v.clone()),
                    None => return Err(DbError::NoSuchColumn(display.clone())),
                },
                Op::Arith(op) => {
                    let rhs = cx.stack.pop().expect("compiled arith has two operands");
                    let lhs = cx.stack.pop().expect("compiled arith has two operands");
                    cx.stack.push(lhs.arith(*op, &rhs)?);
                }
                Op::Neg => {
                    let v = cx.stack.pop().expect("compiled neg has an operand");
                    cx.stack.push(match v {
                        Value::Int(i) => {
                            i.checked_neg().map(Value::Int).ok_or(DbError::Overflow)?
                        }
                        Value::Float(f) => Value::Float(-f),
                        Value::Null => Value::Null,
                        other => return Err(DbError::Type(format!("cannot negate {other}"))),
                    });
                }
                Op::Cmp(op) => {
                    let rhs = cx.stack.pop().expect("compiled cmp has two operands");
                    let lhs = cx.stack.pop().expect("compiled cmp has two operands");
                    cx.stack.push(match lhs.compare(&rhs)? {
                        None => Value::Null,
                        Some(ord) => Value::Bool(cmp_holds(*op, ord)),
                    });
                }
                Op::Truth => {
                    let v = cx.stack.pop().expect("compiled truth has an operand");
                    match v {
                        Value::Bool(_) | Value::Null => cx.stack.push(v),
                        other => {
                            return Err(DbError::Type(format!("expected a condition, got {other}")))
                        }
                    }
                }
                Op::AndK => {
                    let rhs = cx.stack.pop().expect("compiled AND has two operands");
                    let lhs = cx.stack.pop().expect("compiled AND has two operands");
                    cx.stack.push(kleene_and(&lhs, &rhs));
                }
                Op::OrK => {
                    let rhs = cx.stack.pop().expect("compiled OR has two operands");
                    let lhs = cx.stack.pop().expect("compiled OR has two operands");
                    cx.stack.push(kleene_or(&lhs, &rhs));
                }
                Op::NotK => {
                    let v = cx.stack.pop().expect("compiled NOT has an operand");
                    cx.stack.push(match v {
                        Value::Bool(b) => Value::Bool(!b),
                        _ => Value::Null,
                    });
                }
                Op::Subquery(select) => {
                    let mut rows = run_planned_select(select, cx)?;
                    let v = match rows.len() {
                        0 => Value::Null,
                        1 => {
                            let row = rows.pop().expect("checked length");
                            if row.len() != 1 {
                                return Err(DbError::NonScalarSubquery);
                            }
                            row.into_iter().next().expect("checked length")
                        }
                        _ => return Err(DbError::NonScalarSubquery),
                    };
                    cx.stack.push(v);
                }
                Op::Raise(e) => return Err(e.clone()),
            }
        }
        Ok(cx
            .stack
            .pop()
            .expect("a compiled expression leaves exactly one value"))
    }

    /// Predicate position: NULL (and only NULL) is "no match"; any
    /// non-boolean value is the interpreter's condition type error.
    pub(crate) fn eval_predicate(&self, cx: &mut EvalCx<'_>) -> DbResult<bool> {
        match self.eval(cx)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(DbError::Type(format!("expected a condition, got {other}"))),
        }
    }

    /// The planned subqueries embedded in this expression (for explain
    /// rendering and index-requirement collection).
    pub(crate) fn subqueries(&self) -> impl Iterator<Item = &PlannedSelect> {
        self.ops.iter().filter_map(|op| match op {
            Op::Subquery(s) => Some(&**s),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Compilation.
// ---------------------------------------------------------------------------

/// One statically-known name scope (a table being scanned), mirroring the
/// interpreter's `RowScope` minus the row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CScope<'a> {
    /// Display name of the table.
    pub(crate) name: &'a str,
    /// Alias, which *replaces* the name for qualified lookups.
    pub(crate) alias: Option<&'a str>,
    /// The table's schema.
    pub(crate) schema: &'a Schema,
}

/// Where a column reference lands under the interpreter's resolution rules.
pub(crate) enum Resolution {
    /// A table cell at an absolute scope depth.
    Cell {
        /// Absolute scope depth (outermost = 0).
        depth: usize,
        /// Column offset.
        col: usize,
    },
    /// Falls through every scope to the host-variable namespace.
    Var(String),
    /// Cannot resolve: raises `NoSuchColumn` with this display name.
    Missing(String),
}

/// Resolves a column reference against the static scope stack, replicating
/// `Evaluator::resolve_column` exactly (innermost-first; aliases replace
/// table names; unqualified misses fall back to host variables).
pub(crate) fn resolve_static(cref: &ColumnRef, scopes: &[CScope<'_>]) -> Resolution {
    match &cref.qualifier {
        Some(q) => {
            for (depth, scope) in scopes.iter().enumerate().rev() {
                let matches = match scope.alias {
                    Some(a) => a.eq_ignore_ascii_case(q),
                    None => scope.name.eq_ignore_ascii_case(q),
                };
                if matches {
                    return match scope.schema.index_of(&cref.column) {
                        Some(col) => Resolution::Cell { depth, col },
                        None => Resolution::Missing(format!("{q}.{}", cref.column)),
                    };
                }
            }
            Resolution::Missing(format!("{q}.{}", cref.column))
        }
        None => {
            for (depth, scope) in scopes.iter().enumerate().rev() {
                if let Some(col) = scope.schema.index_of(&cref.column) {
                    return Resolution::Cell { depth, col };
                }
            }
            Resolution::Var(cref.column.clone())
        }
    }
}

/// Lowers one expression against the static scope stack. Total: resolution
/// failures become `Raise` ops at their evaluation position.
pub(crate) fn compile_expr(expr: &Expr, db: &Database, scopes: &[CScope<'_>]) -> CompiledExpr {
    let mut ops = Vec::new();
    emit(expr, db, scopes, &mut ops);
    CompiledExpr::from_ops(ops)
}

/// Lowers a list of conjuncts into one Kleene-AND chain (the planner's
/// residual predicate). Kleene AND is associative and commutative over
/// truth values, so any grouping of the same conjuncts is equivalent.
pub(crate) fn compile_conjunction(
    conjuncts: &[&Expr],
    db: &Database,
    scopes: &[CScope<'_>],
) -> CompiledExpr {
    let mut ops = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        emit(c, db, scopes, &mut ops);
        ops.push(Op::Truth);
        if i > 0 {
            ops.push(Op::AndK);
        }
    }
    CompiledExpr::from_ops(ops)
}

fn emit(expr: &Expr, db: &Database, scopes: &[CScope<'_>], ops: &mut Vec<Op>) {
    match expr {
        Expr::Literal(v) => ops.push(Op::PushLiteral(v.clone())),
        Expr::Param(p) => ops.push(Op::PushParam(p.clone())),
        Expr::Column(cref) => match resolve_static(cref, scopes) {
            Resolution::Cell { depth, col } => ops.push(Op::PushColumn { depth, col }),
            Resolution::Var(name) => ops.push(Op::PushVar {
                lower: name.to_ascii_lowercase(),
                display: name,
            }),
            Resolution::Missing(display) => ops.push(Op::Raise(DbError::NoSuchColumn(display))),
        },
        Expr::Arith(a, op, b) => {
            emit(a, db, scopes, ops);
            emit(b, db, scopes, ops);
            ops.push(Op::Arith(*op));
        }
        Expr::Neg(inner) => {
            emit(inner, db, scopes, ops);
            ops.push(Op::Neg);
        }
        Expr::Cmp(a, op, b) => {
            emit(a, db, scopes, ops);
            emit(b, db, scopes, ops);
            ops.push(Op::Cmp(*op));
        }
        Expr::And(a, b) => {
            // Non-short-circuit, like the interpreter: both sides are
            // evaluated and truth-checked (in order) before combining.
            emit(a, db, scopes, ops);
            ops.push(Op::Truth);
            emit(b, db, scopes, ops);
            ops.push(Op::Truth);
            ops.push(Op::AndK);
        }
        Expr::Or(a, b) => {
            emit(a, db, scopes, ops);
            ops.push(Op::Truth);
            emit(b, db, scopes, ops);
            ops.push(Op::Truth);
            ops.push(Op::OrK);
        }
        Expr::Not(inner) => {
            emit(inner, db, scopes, ops);
            ops.push(Op::Truth);
            ops.push(Op::NotK);
        }
        Expr::Subquery(select) => {
            ops.push(Op::Subquery(Box::new(crate::plan::plan_select(
                db, select, scopes,
            ))));
        }
    }
}

// ---------------------------------------------------------------------------
// Static analysis for the planner.
// ---------------------------------------------------------------------------

/// A static value type: the runtime value is this type *or NULL*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum STy {
    Int,
    Float,
    Text,
    Bool,
    /// Statically NULL.
    Null,
}

fn sty_of(ty: ValueType) -> STy {
    match ty {
        ValueType::Int => STy::Int,
        ValueType::Float => STy::Float,
        ValueType::Text => STy::Text,
        ValueType::Bool => STy::Bool,
    }
}

fn numeric(ty: STy) -> bool {
    matches!(ty, STy::Int | STy::Float)
}

/// Conservative infallibility analysis: `Some(ty)` means evaluating the
/// expression can never return an error (its value is `ty` or NULL);
/// `None` means it *might* error. Used by the planner: every residual
/// conjunct of an index probe must be infallible, because rows the probe
/// skips never evaluate the residual — an error there would otherwise
/// surface under a scan but not under the probe.
pub(crate) fn infallible_type(expr: &Expr, scopes: &[CScope<'_>]) -> Option<STy> {
    match expr {
        Expr::Literal(v) => match v {
            Value::Int(_) => Some(STy::Int),
            Value::Float(_) => Some(STy::Float),
            Value::Text(_) => Some(STy::Text),
            Value::Bool(_) => Some(STy::Bool),
            Value::Null => Some(STy::Null),
        },
        Expr::Param(_) => None, // unknown type, possibly unbound
        Expr::Column(cref) => match resolve_static(cref, scopes) {
            Resolution::Cell { depth, col } => Some(sty_of(scopes[depth].schema.columns()[col].ty)),
            // Variables may be missing or of any type.
            Resolution::Var(_) | Resolution::Missing(_) => None,
        },
        // Arithmetic can overflow or divide by zero; keep it fallible.
        Expr::Arith(..) => None,
        Expr::Neg(inner) => match infallible_type(inner, scopes)? {
            STy::Float => Some(STy::Float), // -f64 never errors
            STy::Null => Some(STy::Null),
            _ => None, // INT negation can overflow; others are type errors
        },
        Expr::Cmp(a, _, b) => {
            let ta = infallible_type(a, scopes)?;
            let tb = infallible_type(b, scopes)?;
            let comparable = ta == STy::Null
                || tb == STy::Null
                || (numeric(ta) && numeric(tb))
                || (ta == STy::Text && tb == STy::Text)
                || (ta == STy::Bool && tb == STy::Bool);
            comparable.then_some(STy::Bool)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            let ta = infallible_type(a, scopes)?;
            let tb = infallible_type(b, scopes)?;
            (matches!(ta, STy::Bool | STy::Null) && matches!(tb, STy::Bool | STy::Null))
                .then_some(STy::Bool)
        }
        Expr::Not(inner) => {
            matches!(infallible_type(inner, scopes)?, STy::Bool | STy::Null).then_some(STy::Bool)
        }
        Expr::Subquery(_) => None,
    }
}

/// `true` if evaluating `expr` cannot read the scan scope at `scan_depth`
/// (so the planner may hoist it out of the per-row loop as an index probe
/// key). Subqueries are conservatively rejected.
pub(crate) fn scope_independent(expr: &Expr, scopes: &[CScope<'_>], scan_depth: usize) -> bool {
    match expr {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Column(cref) => match resolve_static(cref, scopes) {
            Resolution::Cell { depth, .. } => depth != scan_depth,
            // Variables are read from the database, not the scan row; a
            // missing reference raises the same error probed once or per row.
            Resolution::Var(_) | Resolution::Missing(_) => true,
        },
        Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            scope_independent(a, scopes, scan_depth) && scope_independent(b, scopes, scan_depth)
        }
        Expr::Not(inner) | Expr::Neg(inner) => scope_independent(inner, scopes, scan_depth),
        Expr::Subquery(_) => false,
    }
}
