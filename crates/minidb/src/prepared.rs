//! Prepared statements: parse once, bind parameters, run many.
//!
//! Re-parsing SQL text on every auction round is the single largest cost of
//! running bidding programs at marketplace scale (and string-interpolating
//! values into SQL invites precision loss and injection). This module is
//! the standard fix: [`Database::prepare`] parses a script once into a
//! [`Prepared`] plan; each execution binds a fresh [`Params`] set — `?`
//! positional placeholders bound in order, `:name` placeholders bound by
//! name — and runs the stored AST directly.
//!
//! ```
//! use ssa_minidb::{Database, Params, Value};
//!
//! let mut db = Database::new();
//! db.run("CREATE TABLE Keywords (text TEXT, bid INT)").unwrap();
//! db.run("INSERT INTO Keywords VALUES ('boot', 4)").unwrap();
//!
//! let mut bump = db
//!     .prepare("UPDATE Keywords SET bid = bid + :delta WHERE text = ?")
//!     .unwrap();
//! let mut read = db.prepare("SELECT bid FROM Keywords WHERE text = ?").unwrap();
//! for _ in 0..3 {
//!     bump.execute(&mut db, &Params::new().push("boot").bind("delta", 2))
//!         .unwrap();
//! }
//! let rows = read.query(&mut db, &Params::new().push("boot")).unwrap();
//! assert_eq!(rows[0][0], Value::Int(10));
//! ```
//!
//! Parameters are bound to the prepared statements themselves: stored
//! trigger bodies fired by a prepared `INSERT` run with an empty binding
//! environment. A `?`/`:name` inside a `CREATE TRIGGER` body is rejected
//! at parse time (the body outlives any binding that could supply it);
//! host scalar variables are the channel for values shared with
//! triggers.

use crate::ast::{Expr, ParamRef, Select, SelectItem, Statement};
use crate::error::{DbError, DbResult};
use crate::exec::{Database, ExecOutcome};
use crate::parser::parse_script;
use crate::plan::{new_plan_cache, PlanCache, PlannedScript};
use crate::table::Row;
use crate::value::Value;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Values bound to a prepared statement's parameters for one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    positional: Vec<Value>,
    named: Vec<(String, Value)>,
}

/// The shared empty binding environment (plain `run`/`execute` paths and
/// trigger bodies).
pub(crate) const NO_PARAMS: &Params = &Params {
    positional: Vec::new(),
    named: Vec::new(),
};

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Appends the next positional (`?`) value.
    pub fn push(mut self, value: impl Into<Value>) -> Self {
        self.positional.push(value.into());
        self
    }

    /// Binds a named (`:name`) value; names are case-insensitive. Binding
    /// the same name again replaces the earlier value.
    pub fn bind(mut self, name: &str, value: impl Into<Value>) -> Self {
        let key = name.to_ascii_lowercase();
        let value = value.into();
        match self.named.iter_mut().find(|(n, _)| *n == key) {
            Some(slot) => slot.1 = value,
            None => self.named.push((key, value)),
        }
        self
    }

    /// Number of positional values bound.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Resolves a parameter reference.
    pub(crate) fn resolve(&self, param: &ParamRef) -> DbResult<Value> {
        match param {
            ParamRef::Positional(i) => self.positional.get(*i).cloned(),
            ParamRef::Named(n) => self
                .named
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| v.clone()),
        }
        .ok_or_else(|| DbError::UnboundParameter(param.to_string()))
    }
}

/// A script parsed once and executable many times with fresh parameter
/// bindings. Created by [`Database::prepare`]; cheap to clone (the AST is
/// shared) and `Send + Sync`, so prepared plans migrate with their owners
/// across shard worker threads.
#[derive(Debug, Clone)]
pub struct Prepared {
    statements: Arc<Vec<Statement>>,
    /// Number of `?` placeholders.
    positional: usize,
    /// Names of `:name` placeholders (lowercased, deduplicated).
    named: Vec<String>,
    /// Per-statement plan cache, lazily filled on first execution and
    /// shared by clones. Entries are revalidated against the database's
    /// catalog version, so one `Prepared` can serve several databases.
    plans: Arc<PlanCache>,
    /// This handle's private memo of the planned script — revalidated
    /// against the catalog version on every execution, so the serving hot
    /// path takes no lock at all. (The shared `plans` cache above still
    /// lets clones reuse one planning pass.)
    planned: Option<Arc<PlannedScript>>,
}

impl Prepared {
    pub(crate) fn parse(sql: &str) -> DbResult<Prepared> {
        let statements = parse_script(sql)?;
        let mut positional = 0usize;
        let mut named = BTreeSet::new();
        for stmt in &statements {
            collect_statement_params(stmt, &mut positional, &mut named);
        }
        let plans = new_plan_cache();
        Ok(Prepared {
            statements: Arc::new(statements),
            positional,
            named: named.into_iter().collect(),
            plans,
            planned: None,
        })
    }

    /// Number of positional (`?`) placeholders in the script.
    pub fn positional_params(&self) -> usize {
        self.positional
    }

    /// Names of the `:name` placeholders in the script (lowercased,
    /// sorted, deduplicated).
    pub fn named_params(&self) -> &[String] {
        &self.named
    }

    /// The parsed statements (for hosts that want to execute them one at a
    /// time through [`Database::execute`]-style paths).
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Validates `params` against the script's placeholder signature:
    /// exact positional arity, every named placeholder bound.
    fn check(&self, params: &Params) -> DbResult<()> {
        if params.positional_len() != self.positional {
            return Err(DbError::ParamArity {
                expected: self.positional,
                got: params.positional_len(),
            });
        }
        for name in &self.named {
            params.resolve(&ParamRef::Named(name.clone()))?;
        }
        Ok(())
    }

    /// Executes the script against `db` with `params` bound; returns one
    /// outcome per statement (the prepared twin of [`Database::run`]).
    ///
    /// Takes `&mut self` to memoise the planned script in this handle:
    /// repeat executions — the auction serving path — revalidate one
    /// version number and go, with no lock and no reference-count traffic.
    pub fn execute(&mut self, db: &mut Database, params: &Params) -> DbResult<Vec<ExecOutcome>> {
        self.check(params)?;
        if db.planner_mode() == crate::PlannerMode::ForceScan {
            return db.execute_prepared_script(&self.statements, &self.plans, params);
        }
        if !matches!(&self.planned, Some(s) if s.version() == db.catalog_version) {
            self.planned = Some(db.cached_script(&self.plans, &self.statements));
        }
        let script = self.planned.as_ref().expect("planned above");
        db.execute_planned_script(&self.statements, script, params)
    }

    /// Runs a single-`SELECT` prepared script and returns its rows (the
    /// prepared twin of [`Database::query`]).
    pub fn query(&mut self, db: &mut Database, params: &Params) -> DbResult<Vec<Row>> {
        let mut outcomes = self.execute(db, params)?;
        match (outcomes.len(), outcomes.pop()) {
            (1, Some(ExecOutcome::Rows(rows))) => Ok(rows),
            _ => Err(DbError::Parse {
                message: "query expects exactly one SELECT statement".to_string(),
                position: 0,
            }),
        }
    }
}

fn collect_statement_params(
    stmt: &Statement,
    positional: &mut usize,
    named: &mut BTreeSet<String>,
) {
    let mut on_expr = |e: &Expr| collect_expr_params(e, positional, named);
    match stmt {
        Statement::CreateTable { .. } | Statement::DropTable { .. } => {}
        Statement::CreateTrigger { .. } => {
            // Trigger bodies cannot contain parameters (the parser rejects
            // them), so there is nothing to collect.
        }
        Statement::Insert { rows, .. } => {
            for row in rows {
                for e in row {
                    on_expr(e);
                }
            }
        }
        Statement::Update {
            sets, where_clause, ..
        } => {
            for s in sets {
                on_expr(&s.value);
            }
            if let Some(w) = where_clause {
                on_expr(w);
            }
        }
        Statement::Delete { where_clause, .. } => {
            if let Some(w) = where_clause {
                on_expr(w);
            }
        }
        Statement::Select(select) => collect_select_params(select, positional, named),
        Statement::If { arms, else_block } => {
            for (cond, block) in arms {
                collect_expr_params(cond, positional, named);
                for s in block {
                    collect_statement_params(s, positional, named);
                }
            }
            if let Some(block) = else_block {
                for s in block {
                    collect_statement_params(s, positional, named);
                }
            }
        }
        Statement::SetVar { value, .. } => on_expr(value),
        Statement::Explain(_) => {
            // EXPLAIN only plans its inner statement — parameters are never
            // resolved, so they contribute nothing to the binding signature.
        }
    }
}

fn collect_select_params(select: &Select, positional: &mut usize, named: &mut BTreeSet<String>) {
    for item in &select.items {
        match item {
            SelectItem::Expr(e) => collect_expr_params(e, positional, named),
            SelectItem::Agg(_, Some(e)) => collect_expr_params(e, positional, named),
            SelectItem::Agg(_, None) | SelectItem::Star => {}
        }
    }
    if let Some(w) = &select.where_clause {
        collect_expr_params(w, positional, named);
    }
}

fn collect_expr_params(expr: &Expr, positional: &mut usize, named: &mut BTreeSet<String>) {
    match expr {
        Expr::Literal(_) | Expr::Column(_) => {}
        Expr::Param(ParamRef::Positional(i)) => *positional = (*positional).max(i + 1),
        Expr::Param(ParamRef::Named(n)) => {
            named.insert(n.clone());
        }
        Expr::Arith(a, _, b) | Expr::Cmp(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            collect_expr_params(a, positional, named);
            collect_expr_params(b, positional, named);
        }
        Expr::Not(inner) | Expr::Neg(inner) => collect_expr_params(inner, positional, named),
        Expr::Subquery(select) => collect_select_params(select, positional, named),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.run("CREATE TABLE t (a INT, b TEXT, c FLOAT)").unwrap();
        db
    }

    #[test]
    fn prepare_reports_the_signature() {
        let db = db();
        let p = db
            .prepare("INSERT INTO t VALUES (?, :name, ?); SELECT a FROM t WHERE b = :name")
            .unwrap();
        assert_eq!(p.positional_params(), 2);
        assert_eq!(p.named_params(), ["name".to_string()]);
        assert_eq!(p.statements().len(), 2);
    }

    #[test]
    fn execute_binds_positional_and_named() {
        let mut db = db();
        let mut insert = db.prepare("INSERT INTO t VALUES (?, ?, :f)").unwrap();
        let mut select = db
            .prepare("SELECT a, c FROM t WHERE b = ? AND a >= :floor")
            .unwrap();
        for i in 0..3i64 {
            insert
                .execute(
                    &mut db,
                    &Params::new().push(i).push("row").bind("f", 0.5 * i as f64),
                )
                .unwrap();
        }
        let rows = select
            .query(&mut db, &Params::new().push("row").bind("floor", 1))
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(2), Value::Float(1.0)],
            ]
        );
    }

    #[test]
    fn float_binding_is_exact() {
        // The whole point versus string interpolation: an arbitrary f64
        // round-trips bit-for-bit through a bound parameter.
        let mut db = db();
        let exact = 0.1f64 + 0.2f64; // not representable as a short decimal
        db.prepare("INSERT INTO t VALUES (1, 'x', ?)")
            .unwrap()
            .execute(&mut db, &Params::new().push(exact))
            .unwrap();
        let rows = db.query("SELECT c FROM t").unwrap();
        assert_eq!(rows[0][0], Value::Float(exact));
    }

    #[test]
    fn arity_and_unbound_are_typed_errors() {
        let mut db = db();
        let mut p = db.prepare("INSERT INTO t VALUES (?, ?, :f)").unwrap();
        assert_eq!(
            p.execute(&mut db, &Params::new().push(1).bind("f", 0.0)),
            Err(DbError::ParamArity {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            p.execute(&mut db, &Params::new().push(1).push("b")),
            Err(DbError::UnboundParameter(":f".to_string()))
        );
        // Running a parameterised script through the unprepared path leaves
        // every placeholder unbound.
        db.run("INSERT INTO t VALUES (1, 'x', 0.0)").unwrap();
        assert_eq!(
            db.run("SELECT a FROM t WHERE a = ?"),
            Err(DbError::UnboundParameter("?1".to_string()))
        );
    }

    #[test]
    fn trigger_bodies_do_not_capture_statement_params() {
        let mut db = db();
        db.run("CREATE TABLE Log (n INT)").unwrap();
        db.run("INSERT INTO Log VALUES (0)").unwrap();
        // The trigger body references the host var `inc`, not a parameter.
        db.run("CREATE TRIGGER tick AFTER INSERT ON t { UPDATE Log SET n = n + inc; }")
            .unwrap();
        db.set_var("inc", Value::Int(5));
        let mut insert = db.prepare("INSERT INTO t VALUES (?, 'x', 0.0)").unwrap();
        insert.execute(&mut db, &Params::new().push(1)).unwrap();
        assert_eq!(db.query("SELECT n FROM Log").unwrap()[0][0], Value::Int(5));
        // A trigger body that *does* name a parameter is rejected up
        // front: the stored body outlives any binding environment.
        db.run("CREATE TABLE u (a INT)").unwrap();
        for bad in [
            "CREATE TRIGGER bad AFTER INSERT ON u { UPDATE Log SET n = ?; }",
            "CREATE TRIGGER bad AFTER INSERT ON u { UPDATE Log SET n = :v; }",
        ] {
            assert!(
                matches!(db.run(bad), Err(DbError::Parse { message, .. })
                    if message.contains("trigger bodies")),
                "{bad} accepted"
            );
        }
        // The signature of a mixed script counts only bindable
        // placeholders — a trigger definition alongside a parameterised
        // statement does not inflate the arity.
        let mut mixed = db
            .prepare(
                "CREATE TRIGGER ok AFTER INSERT ON u { UPDATE Log SET n = n + inc; }; \
                 INSERT INTO u VALUES (?)",
            )
            .unwrap();
        assert_eq!(mixed.positional_params(), 1);
        mixed.execute(&mut db, &Params::new().push(4)).unwrap();
        assert_eq!(db.query("SELECT n FROM Log").unwrap()[0][0], Value::Int(10));
    }

    #[test]
    fn prepared_if_and_setvar_bind() {
        let mut db = db();
        db.run("INSERT INTO t VALUES (1, 'x', 0.0)").unwrap();
        let mut p = db
            .prepare(
                "SET goal = :goal; \
                 IF goal > 0 THEN UPDATE t SET a = a + :goal; \
                 ELSE UPDATE t SET a = 0; ENDIF",
            )
            .unwrap();
        p.execute(&mut db, &Params::new().bind("goal", 10)).unwrap();
        assert_eq!(db.query("SELECT a FROM t").unwrap()[0][0], Value::Int(11));
        p.execute(&mut db, &Params::new().bind("goal", -1)).unwrap();
        assert_eq!(db.query("SELECT a FROM t").unwrap()[0][0], Value::Int(0));
    }

    #[test]
    fn rebinding_a_name_replaces_it() {
        let params = Params::new().bind("x", 1).bind("X", 2);
        assert_eq!(
            params.resolve(&ParamRef::Named("x".into())).unwrap(),
            Value::Int(2)
        );
    }
}
