//! Error types for the relational engine.

use std::fmt;

/// Any error from lexing, parsing, or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Lexical error (bad character, unterminated string, malformed number).
    Lex {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        position: usize,
    },
    /// Syntax error.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        position: usize,
    },
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column (possibly qualified).
    NoSuchColumn(String),
    /// Unknown scalar variable.
    NoSuchVariable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A trigger with this name already exists.
    TriggerExists(String),
    /// Type error during evaluation.
    Type(String),
    /// Division by zero.
    DivisionByZero,
    /// Integer arithmetic overflowed 64 bits.
    Overflow,
    /// Expression or statement nesting exceeded the parser's depth limit
    /// (untrusted advertiser programs must not be able to overflow the
    /// stack).
    NestingTooDeep {
        /// The configured maximum nesting depth.
        limit: usize,
    },
    /// A statement referenced a parameter (`?` or `:name`) with no bound
    /// value.
    UnboundParameter(String),
    /// A prepared statement was executed with the wrong number of
    /// positional parameters.
    ParamArity {
        /// Positional placeholders in the statement.
        expected: usize,
        /// Positional values supplied.
        got: usize,
    },
    /// A scalar subquery returned more than one row/column.
    NonScalarSubquery,
    /// Wrong number of values in an INSERT.
    Arity {
        /// Columns expected.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Trigger recursion exceeded the depth limit.
    TriggerDepthExceeded,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            DbError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::NoSuchVariable(v) => write!(f, "no such variable: {v}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::TriggerExists(t) => write!(f, "trigger already exists: {t}"),
            DbError::Type(msg) => write!(f, "type error: {msg}"),
            DbError::DivisionByZero => write!(f, "division by zero"),
            DbError::Overflow => write!(f, "integer arithmetic overflow"),
            DbError::NestingTooDeep { limit } => {
                write!(f, "nesting deeper than the {limit}-level parser limit")
            }
            DbError::UnboundParameter(p) => write!(f, "unbound parameter {p}"),
            DbError::ParamArity { expected, got } => {
                write!(
                    f,
                    "prepared statement has {expected} positional parameters, {got} values bound"
                )
            }
            DbError::NonScalarSubquery => {
                write!(f, "scalar subquery returned more than one value")
            }
            DbError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::TriggerDepthExceeded => write!(f, "trigger recursion too deep"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience result alias.
pub type DbResult<T> = Result<T, DbError>;
