//! Query planning: logical → physical plans, secondary-index selection,
//! and the planned executor.
//!
//! [`crate::exec`] keeps the reference tree-walking interpreter; this module
//! adds the layered pipeline in front of it:
//!
//! 1. **Logical plan** — `plan_statement` lowers a parsed [`Statement`]
//!    once: the target table is resolved to its catalog key, every column
//!    reference to a `(scope depth, offset)` pair, every expression to a
//!    flat compiled op sequence (`crate::compile`), and parameter slots
//!    stay symbolic so one plan serves every binding.
//! 2. **Physical plan** — a tiny planner picks the access path per
//!    table scan: an equality conjunct `col = key` over an `INT`/`TEXT`
//!    column whose key is row-independent becomes an
//!    `AccessKind::IndexEq` probe against a hash index
//!    (`crate::index`); anything else stays a full scan.
//! 3. **Execution** — [`Database`] methods here run the planned form,
//!    creating requested indexes on demand (maintained incrementally by
//!    [`crate::table::Table`] afterwards) and updating
//!    [`PlannerStats`] counters.
//!
//! Plans are validated against a catalog version stamped on every
//! `CREATE TABLE`/`DROP TABLE`; a stale plan is transparently replanned, so
//! cached plans (in [`crate::prepared::Prepared`] and trigger definitions)
//! never observe a renamed schema.
//!
//! **Equivalence guarantee**: for every script, the planned executor
//! produces bit-identical outcomes — rows, errors, trigger effects, and
//! final table contents — to the interpreter with
//! [`PlannerMode::ForceScan`]. The planner only emits an index probe when
//! it can prove the remaining conjuncts cannot raise an error the scan
//! would have surfaced on a row the probe skips; probes whose key type
//! does not match the column fall back to a scan at run time.

use crate::ast::{AggFunc, CmpOp, Expr, Select, SelectItem, Statement};
use crate::compile::{
    compile_conjunction, compile_expr, infallible_type, resolve_static, scope_independent, CScope,
    CompiledExpr, EvalCx, Resolution, STy,
};
use crate::error::{DbError, DbResult};
use crate::exec::{Database, ExecOutcome};
use crate::parser::parse_script;
use crate::prepared::Params;
use crate::table::{Row, Table};
use crate::value::{ArithOp, Value, ValueType};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Modes, counters, and versions.
// ---------------------------------------------------------------------------

/// How the engine chooses physical access paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// Plan statements, use secondary indexes where eligible (default).
    Auto,
    /// Bypass planning entirely: every statement runs on the reference
    /// tree-walking interpreter with full table scans. Used as the oracle
    /// in equivalence tests and by the `SSA_MINIDB_FORCE_SCAN` env toggle.
    ForceScan,
}

/// Monotonic planner counters for one [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerStats {
    /// Number of statement executions answered by an index probe.
    pub index_hits: u64,
    /// Rows examined by full-scan access paths (both engines count).
    pub rows_scanned: u64,
    /// Statement plans built and stored in a plan cache.
    pub plans_cached: u64,
}

/// Interior-mutability counters so read-only execution paths can count.
/// Plain `Cell`s, not atomics: `rows_scanned` ticks once per scanned row on
/// the serving path, where a locked read-modify-write per row is measurable
/// at marketplace scale. A database is owned by one thread at a time (it is
/// `Send` but not `Sync`), so unsynchronised counters are sound.
#[derive(Debug, Default, Clone)]
pub(crate) struct PlannerCounters {
    pub(crate) index_hits: Cell<u64>,
    pub(crate) rows_scanned: Cell<u64>,
    pub(crate) plans_cached: Cell<u64>,
}

impl PlannerCounters {
    pub(crate) fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }
}

/// Hands out globally unique catalog versions, so a plan stamped with a
/// version is valid exactly for databases whose catalog lineage carries the
/// same stamp (clones share plans; any DDL diverges them).
pub(crate) fn next_catalog_version() -> u64 {
    static CATALOG_EPOCH: AtomicU64 = AtomicU64::new(1);
    CATALOG_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Reads the `SSA_MINIDB_FORCE_SCAN` toggle once per process: set to
/// anything non-empty other than `0` to start every database in
/// [`PlannerMode::ForceScan`].
pub(crate) fn force_scan_env() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("SSA_MINIDB_FORCE_SCAN")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// A whole script (prepared statement list or trigger body) planned at one
/// catalog version. Caching the script as a unit means executing it costs a
/// single lock acquisition and `Arc` bump, not one per statement — the
/// per-statement `version` check in [`Database::exec_planned`] still
/// catches DDL executed mid-script.
#[derive(Debug)]
pub(crate) struct PlannedScript {
    version: u64,
    /// Stored inline (not `Arc`-boxed per statement): the script is the
    /// sharing unit, and one contiguous allocation keeps the serving path's
    /// cold-cache footprint down.
    plans: Vec<StmtPlan>,
}

impl PlannedScript {
    /// The statement plans, in script order.
    pub(crate) fn plans(&self) -> &[StmtPlan] {
        &self.plans
    }

    /// The catalog version the script was planned at. Owners that memoise
    /// a script (prepared statements, trigger definitions) revalidate
    /// against [`Database::catalog_version`] before reusing it.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }
}

/// A per-script plan cache, shared by clones of its owner. An uncontended
/// mutex here measured *faster* than a per-database hash memo: the cache
/// line is touched either way, and the lock is never contended on the
/// serving path (each campaign database is driven by one thread at a time).
pub(crate) type PlanCache = Mutex<Option<Arc<PlannedScript>>>;

/// Builds an empty plan cache.
pub(crate) fn new_plan_cache() -> Arc<PlanCache> {
    Arc::new(Mutex::new(None))
}

fn lock_cache(cache: &PlanCache) -> std::sync::MutexGuard<'_, Option<Arc<PlannedScript>>> {
    cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Explain surface.
// ---------------------------------------------------------------------------

/// The physical access path a plan line uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainAccess {
    /// The operation reads no table (INSERT, SET, IF, DDL).
    None,
    /// Every row of the table is scanned.
    FullScan,
    /// A hash-index equality probe on the named column.
    IndexLookup {
        /// Canonical (schema-cased) name of the probed column.
        column: String,
    },
}

/// One line of `EXPLAIN` output: an operation plus its access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainLine {
    /// Operation description, e.g. `SELECT FROM Keywords`.
    pub op: String,
    /// Chosen access path.
    pub access: ExplainAccess,
}

// ---------------------------------------------------------------------------
// Plan structures.
// ---------------------------------------------------------------------------

/// A fully lowered statement: the catalog version it was planned against,
/// the executable form, and the indexes it wants materialised.
#[derive(Debug)]
pub(crate) struct StmtPlan {
    version: u64,
    kind: PlanKind,
    /// `(table key, column ordinal)` pairs this plan probes.
    pub(crate) index_reqs: Vec<(String, usize)>,
}

#[derive(Debug)]
enum PlanKind {
    /// DDL executes on the interpreter (and bumps the catalog version).
    Ddl,
    /// Planning already diagnosed the statement's first runtime error.
    Raise(DbError),
    Insert(PlannedInsert),
    Update(PlannedUpdate),
    Delete(PlannedDelete),
    Select(PlannedSelect),
    If {
        arms: Vec<(CompiledExpr, PlannedBlock)>,
        else_block: Option<PlannedBlock>,
    },
    SetVar {
        name: String,
        value: CompiledExpr,
    },
    /// `EXPLAIN stmt`: the rendered plan of the inner statement.
    Explain(Vec<ExplainLine>),
}

#[derive(Debug)]
struct PlannedBlock {
    /// Source + plan pairs; nested plans revalidate their version at
    /// execution (DDL earlier in the block may have invalidated them).
    stmts: Vec<(Statement, StmtPlan)>,
}

#[derive(Debug)]
struct PlannedInsert {
    key: String,
    from: String,
    display: String,
    schema_len: usize,
    rows: Vec<PRow>,
}

#[derive(Debug)]
struct PRow {
    exprs: Vec<CompiledExpr>,
    map: RowMap,
}

/// How one VALUES tuple maps onto the schema.
#[derive(Debug)]
enum RowMap {
    /// No column list: values align with the schema positionally.
    Direct,
    /// Explicit column list: `slots[i]` is the schema offset of value `i`.
    Mapped(Vec<usize>),
    /// The column list itself is invalid; the error fires *after* this
    /// tuple's expressions evaluate, matching the interpreter's order.
    Err(DbError),
}

#[derive(Debug)]
struct PlannedUpdate {
    key: String,
    from: String,
    display: String,
    access: AccessPlan,
    sets: Vec<(usize, CompiledExpr)>,
}

#[derive(Debug)]
struct PlannedDelete {
    key: String,
    from: String,
    display: String,
    access: AccessPlan,
}

/// A planned SELECT (also the body of a scalar subquery op).
#[derive(Debug)]
pub(crate) struct PlannedSelect {
    /// Pre-diagnosed error (missing table, or aggregates mixed with plain
    /// columns), raised before any row work — exactly like the interpreter.
    error: Option<DbError>,
    key: String,
    from: String,
    display: String,
    access: AccessPlan,
    proj: Proj,
}

#[derive(Debug)]
enum Proj {
    Rows(Vec<PItem>),
    Aggs(Vec<PAgg>),
}

#[derive(Debug)]
enum PItem {
    Star,
    Expr(CompiledExpr),
}

#[derive(Debug)]
enum PAgg {
    CountStar,
    Over(AggFunc, CompiledExpr),
    /// `*` under a non-COUNT aggregate: errors at this item's turn.
    StarError,
}

#[derive(Debug)]
struct AccessPlan {
    kind: AccessKind,
    /// The whole WHERE clause, compiled — used by scans and by the run-time
    /// fallback when a probe key's type does not match the column.
    full_pred: Option<CompiledExpr>,
}

#[derive(Debug)]
enum AccessKind {
    Scan,
    IndexEq {
        col: usize,
        /// Row-independent probe key, evaluated once per statement (only
        /// when the table is non-empty, matching interpreter error order).
        key: CompiledExpr,
        /// Remaining conjuncts (all statically infallible), evaluated on
        /// each probed row.
        residual: Option<CompiledExpr>,
        column_display: String,
    },
}

// ---------------------------------------------------------------------------
// Planning.
// ---------------------------------------------------------------------------

/// Lowers one statement against the current catalog. Pure: reads the
/// database, never mutates it (no index creation, no counters).
pub(crate) fn plan_statement(db: &Database, stmt: &Statement) -> StmtPlan {
    let kind = plan_kind(db, stmt);
    let mut reqs = Vec::new();
    collect_reqs_kind(&kind, &mut reqs);
    reqs.sort();
    reqs.dedup();
    StmtPlan {
        version: db.catalog_version,
        kind,
        index_reqs: reqs,
    }
}

fn plan_kind(db: &Database, stmt: &Statement) -> PlanKind {
    match stmt {
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::CreateTrigger { .. } => PlanKind::Ddl,
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let key = table.to_ascii_lowercase();
            let Some((display, t)) = db.tables.get(&key) else {
                return PlanKind::Raise(DbError::NoSuchTable(table.clone()));
            };
            let schema = t.schema();
            let planned_rows = rows
                .iter()
                .map(|exprs| {
                    let compiled = exprs.iter().map(|e| compile_expr(e, db, &[])).collect();
                    let map = match columns {
                        None => RowMap::Direct,
                        Some(cols) => {
                            if cols.len() != exprs.len() {
                                RowMap::Err(DbError::Arity {
                                    expected: cols.len(),
                                    got: exprs.len(),
                                })
                            } else {
                                match cols
                                    .iter()
                                    .map(|c| {
                                        schema
                                            .index_of(c)
                                            .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                                    })
                                    .collect::<DbResult<Vec<usize>>>()
                                {
                                    Ok(slots) => RowMap::Mapped(slots),
                                    Err(e) => RowMap::Err(e),
                                }
                            }
                        }
                    };
                    PRow {
                        exprs: compiled,
                        map,
                    }
                })
                .collect();
            PlanKind::Insert(PlannedInsert {
                key,
                from: table.clone(),
                display: display.clone(),
                schema_len: schema.len(),
                rows: planned_rows,
            })
        }
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let key = table.to_ascii_lowercase();
            let Some((display, t)) = db.tables.get(&key) else {
                return PlanKind::Raise(DbError::NoSuchTable(table.clone()));
            };
            let schema = t.schema();
            let mut set_plans = Vec::with_capacity(sets.len());
            let scopes = [CScope {
                name: display,
                alias: None,
                schema,
            }];
            // Set targets resolve before any row work, like the interpreter.
            let mut set_indices = Vec::with_capacity(sets.len());
            for s in sets {
                match schema.index_of(&s.column) {
                    Some(idx) => set_indices.push(idx),
                    None => return PlanKind::Raise(DbError::NoSuchColumn(s.column.clone())),
                }
            }
            for (s, idx) in sets.iter().zip(set_indices) {
                set_plans.push((idx, compile_expr(&s.value, db, &scopes)));
            }
            let access = plan_access(db, where_clause.as_ref(), &scopes, 0);
            PlanKind::Update(PlannedUpdate {
                key,
                from: table.clone(),
                display: display.clone(),
                access,
                sets: set_plans,
            })
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let key = table.to_ascii_lowercase();
            let Some((display, t)) = db.tables.get(&key) else {
                return PlanKind::Raise(DbError::NoSuchTable(table.clone()));
            };
            let scopes = [CScope {
                name: display,
                alias: None,
                schema: t.schema(),
            }];
            let access = plan_access(db, where_clause.as_ref(), &scopes, 0);
            PlanKind::Delete(PlannedDelete {
                key,
                from: table.clone(),
                display: display.clone(),
                access,
            })
        }
        Statement::Select(select) => PlanKind::Select(plan_select(db, select, &[])),
        Statement::If { arms, else_block } => PlanKind::If {
            arms: arms
                .iter()
                .map(|(cond, block)| (compile_expr(cond, db, &[]), plan_block(db, block)))
                .collect(),
            else_block: else_block.as_ref().map(|b| plan_block(db, b)),
        },
        Statement::SetVar { name, value } => PlanKind::SetVar {
            name: name.clone(),
            value: compile_expr(value, db, &[]),
        },
        Statement::Explain(inner) => match explain_statement(db, inner) {
            Ok(lines) => PlanKind::Explain(lines),
            Err(e) => PlanKind::Raise(e),
        },
    }
}

fn plan_block(db: &Database, block: &[Statement]) -> PlannedBlock {
    PlannedBlock {
        stmts: block
            .iter()
            .map(|s| (s.clone(), plan_statement(db, s)))
            .collect(),
    }
}

/// Plans a SELECT given the statically known outer scopes (empty for a
/// top-level statement; the enclosing rows' scopes for a subquery).
pub(crate) fn plan_select(db: &Database, select: &Select, outer: &[CScope<'_>]) -> PlannedSelect {
    let key = select.from.to_ascii_lowercase();
    let dummy = |error: DbError| PlannedSelect {
        error: Some(error),
        key: key.clone(),
        from: select.from.clone(),
        display: select.from.clone(),
        access: AccessPlan {
            kind: AccessKind::Scan,
            full_pred: None,
        },
        proj: Proj::Rows(Vec::new()),
    };
    let Some((display, t)) = db.tables.get(&key) else {
        return dummy(DbError::NoSuchTable(select.from.clone()));
    };
    let has_agg = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Agg(..)));
    if has_agg
        && select
            .items
            .iter()
            .any(|i| !matches!(i, SelectItem::Agg(..)))
    {
        return dummy(DbError::Type(
            "cannot mix aggregates with plain columns (no GROUP BY)".to_string(),
        ));
    }
    let mut scopes: Vec<CScope<'_>> = outer.to_vec();
    scopes.push(CScope {
        name: display,
        alias: select.alias.as_deref(),
        schema: t.schema(),
    });
    let scan_depth = scopes.len() - 1;
    let access = plan_access(db, select.where_clause.as_ref(), &scopes, scan_depth);
    let proj = if has_agg {
        Proj::Aggs(
            select
                .items
                .iter()
                .map(|item| {
                    let SelectItem::Agg(func, inner) = item else {
                        unreachable!("checked homogeneous aggregates");
                    };
                    match (func, inner) {
                        (AggFunc::Count, None) => PAgg::CountStar,
                        (_, None) => PAgg::StarError,
                        (f, Some(e)) => PAgg::Over(*f, compile_expr(e, db, &scopes)),
                    }
                })
                .collect(),
        )
    } else {
        Proj::Rows(
            select
                .items
                .iter()
                .map(|item| match item {
                    SelectItem::Star => PItem::Star,
                    SelectItem::Expr(e) => PItem::Expr(compile_expr(e, db, &scopes)),
                    SelectItem::Agg(..) => unreachable!("handled above"),
                })
                .collect(),
        )
    };
    PlannedSelect {
        error: None,
        key,
        from: select.from.clone(),
        display: display.clone(),
        access,
        proj,
    }
}

fn plan_access(
    db: &Database,
    where_clause: Option<&Expr>,
    scopes: &[CScope<'_>],
    scan_depth: usize,
) -> AccessPlan {
    let Some(pred) = where_clause else {
        return AccessPlan {
            kind: AccessKind::Scan,
            full_pred: None,
        };
    };
    let full = compile_expr(pred, db, scopes);
    if db.mode == PlannerMode::ForceScan {
        return AccessPlan {
            kind: AccessKind::Scan,
            full_pred: Some(full),
        };
    }
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    for i in 0..conjuncts.len() {
        let Some((col, key_expr, column_display)) = eq_probe(conjuncts[i], scopes, scan_depth)
        else {
            continue;
        };
        // Rows the probe skips never evaluate the residual conjuncts, so
        // every one of them must be provably error-free (and a truth value,
        // or the interpreter's per-row condition check would have fired).
        let others: Vec<&Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, c)| *c)
            .collect();
        if !others
            .iter()
            .all(|c| matches!(infallible_type(c, scopes), Some(STy::Bool | STy::Null)))
        {
            continue;
        }
        let residual = if others.is_empty() {
            None
        } else {
            Some(compile_conjunction(&others, db, scopes))
        };
        return AccessPlan {
            kind: AccessKind::IndexEq {
                col,
                key: compile_expr(key_expr, db, scopes),
                residual,
                column_display,
            },
            full_pred: Some(full),
        };
    }
    AccessPlan {
        kind: AccessKind::Scan,
        full_pred: Some(full),
    }
}

fn flatten_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::And(a, b) = expr {
        flatten_and(a, out);
        flatten_and(b, out);
    } else {
        out.push(expr);
    }
}

/// Checks whether a conjunct has the shape `col = key` (either side) with
/// `col` an indexable column of the scanned table and `key` independent of
/// the scanned row. Returns the column ordinal, the key expression, and
/// the column's canonical (schema-cased) name.
fn eq_probe<'e>(
    conjunct: &'e Expr,
    scopes: &[CScope<'_>],
    scan_depth: usize,
) -> Option<(usize, &'e Expr, String)> {
    let Expr::Cmp(l, CmpOp::Eq, r) = conjunct else {
        return None;
    };
    for (col_side, key_side) in [(&**l, &**r), (&**r, &**l)] {
        let Expr::Column(cref) = col_side else {
            continue;
        };
        let Resolution::Cell { depth, col } = resolve_static(cref, scopes) else {
            continue;
        };
        if depth != scan_depth {
            continue;
        }
        let column = &scopes[depth].schema.columns()[col];
        if !matches!(column.ty, ValueType::Int | ValueType::Text) {
            continue;
        }
        if scope_independent(key_side, scopes, scan_depth) {
            return Some((col, key_side, column.name.clone()));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Index requirements.
// ---------------------------------------------------------------------------

fn collect_reqs_kind(kind: &PlanKind, out: &mut Vec<(String, usize)>) {
    match kind {
        PlanKind::Ddl | PlanKind::Raise(_) | PlanKind::Explain(_) => {}
        PlanKind::Insert(pi) => {
            for prow in &pi.rows {
                for ce in &prow.exprs {
                    collect_reqs_expr(ce, out);
                }
            }
        }
        PlanKind::Update(pu) => {
            collect_reqs_access(&pu.key, &pu.access, out);
            for (_, ce) in &pu.sets {
                collect_reqs_expr(ce, out);
            }
        }
        PlanKind::Delete(pd) => collect_reqs_access(&pd.key, &pd.access, out),
        PlanKind::Select(ps) => collect_reqs_select(ps, out),
        PlanKind::If { arms, else_block } => {
            for (cond, block) in arms {
                collect_reqs_expr(cond, out);
                for (_, plan) in &block.stmts {
                    out.extend(plan.index_reqs.iter().cloned());
                }
            }
            if let Some(block) = else_block {
                for (_, plan) in &block.stmts {
                    out.extend(plan.index_reqs.iter().cloned());
                }
            }
        }
        PlanKind::SetVar { value, .. } => collect_reqs_expr(value, out),
    }
}

fn collect_reqs_select(ps: &PlannedSelect, out: &mut Vec<(String, usize)>) {
    if ps.error.is_some() {
        return;
    }
    collect_reqs_access(&ps.key, &ps.access, out);
    match &ps.proj {
        Proj::Rows(items) => {
            for item in items {
                if let PItem::Expr(ce) = item {
                    collect_reqs_expr(ce, out);
                }
            }
        }
        Proj::Aggs(aggs) => {
            for agg in aggs {
                if let PAgg::Over(_, ce) = agg {
                    collect_reqs_expr(ce, out);
                }
            }
        }
    }
}

fn collect_reqs_access(table_key: &str, access: &AccessPlan, out: &mut Vec<(String, usize)>) {
    if let AccessKind::IndexEq {
        col, key, residual, ..
    } = &access.kind
    {
        out.push((table_key.to_string(), *col));
        collect_reqs_expr(key, out);
        if let Some(r) = residual {
            collect_reqs_expr(r, out);
        }
    }
    if let Some(p) = &access.full_pred {
        collect_reqs_expr(p, out);
    }
}

fn collect_reqs_expr(ce: &CompiledExpr, out: &mut Vec<(String, usize)>) {
    for sub in ce.subqueries() {
        collect_reqs_select(sub, out);
    }
}

// ---------------------------------------------------------------------------
// Explain rendering.
// ---------------------------------------------------------------------------

/// Plans `stmt` and renders the chosen access paths. Pure (`&Database`):
/// never creates an index, caches a plan, or bumps a counter.
pub(crate) fn explain_statement(db: &Database, stmt: &Statement) -> DbResult<Vec<ExplainLine>> {
    let plan = plan_statement(db, stmt);
    let mut out = Vec::new();
    render_kind(&plan.kind, &mut out)?;
    Ok(out)
}

fn access_of(access: &AccessPlan) -> ExplainAccess {
    match &access.kind {
        AccessKind::Scan => ExplainAccess::FullScan,
        AccessKind::IndexEq { column_display, .. } => ExplainAccess::IndexLookup {
            column: column_display.clone(),
        },
    }
}

fn render_kind(kind: &PlanKind, out: &mut Vec<ExplainLine>) -> DbResult<()> {
    match kind {
        PlanKind::Ddl => out.push(ExplainLine {
            op: "DDL".to_string(),
            access: ExplainAccess::None,
        }),
        PlanKind::Raise(e) => return Err(e.clone()),
        PlanKind::Explain(lines) => out.extend(lines.iter().cloned()),
        PlanKind::SetVar { name, value } => {
            out.push(ExplainLine {
                op: format!("SET {name}"),
                access: ExplainAccess::None,
            });
            render_expr_subqueries(value, out)?;
        }
        PlanKind::If { arms, else_block } => {
            out.push(ExplainLine {
                op: "IF".to_string(),
                access: ExplainAccess::None,
            });
            for (cond, block) in arms {
                render_expr_subqueries(cond, out)?;
                for (_, plan) in &block.stmts {
                    render_kind(&plan.kind, out)?;
                }
            }
            if let Some(block) = else_block {
                for (_, plan) in &block.stmts {
                    render_kind(&plan.kind, out)?;
                }
            }
        }
        PlanKind::Insert(pi) => {
            out.push(ExplainLine {
                op: format!("INSERT INTO {}", pi.display),
                access: ExplainAccess::None,
            });
            for prow in &pi.rows {
                for ce in &prow.exprs {
                    render_expr_subqueries(ce, out)?;
                }
            }
        }
        PlanKind::Update(pu) => {
            out.push(ExplainLine {
                op: format!("UPDATE {}", pu.display),
                access: access_of(&pu.access),
            });
            render_access_subqueries(&pu.access, out)?;
            for (_, ce) in &pu.sets {
                render_expr_subqueries(ce, out)?;
            }
        }
        PlanKind::Delete(pd) => {
            out.push(ExplainLine {
                op: format!("DELETE FROM {}", pd.display),
                access: access_of(&pd.access),
            });
            render_access_subqueries(&pd.access, out)?;
        }
        PlanKind::Select(ps) => render_select_lines(ps, "SELECT", out)?,
    }
    Ok(())
}

fn render_select_lines(
    ps: &PlannedSelect,
    label: &str,
    out: &mut Vec<ExplainLine>,
) -> DbResult<()> {
    if let Some(e) = &ps.error {
        return Err(e.clone());
    }
    out.push(ExplainLine {
        op: format!("{label} FROM {}", ps.display),
        access: access_of(&ps.access),
    });
    render_access_subqueries(&ps.access, out)?;
    match &ps.proj {
        Proj::Rows(items) => {
            for item in items {
                if let PItem::Expr(ce) = item {
                    render_expr_subqueries(ce, out)?;
                }
            }
        }
        Proj::Aggs(aggs) => {
            for agg in aggs {
                if let PAgg::Over(_, ce) = agg {
                    render_expr_subqueries(ce, out)?;
                }
            }
        }
    }
    Ok(())
}

fn render_access_subqueries(access: &AccessPlan, out: &mut Vec<ExplainLine>) -> DbResult<()> {
    match &access.kind {
        AccessKind::Scan => {
            if let Some(p) = &access.full_pred {
                render_expr_subqueries(p, out)?;
            }
        }
        AccessKind::IndexEq { key, residual, .. } => {
            render_expr_subqueries(key, out)?;
            if let Some(r) = residual {
                render_expr_subqueries(r, out)?;
            }
        }
    }
    Ok(())
}

fn render_expr_subqueries(ce: &CompiledExpr, out: &mut Vec<ExplainLine>) -> DbResult<()> {
    for sub in ce.subqueries() {
        render_select_lines(sub, "SUBQUERY SELECT", out)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Planned execution.
// ---------------------------------------------------------------------------

/// Folds pre-filtered (non-NULL) aggregate inputs; shared verbatim by both
/// the interpreter and the planned executor so the two cannot diverge.
pub(crate) fn fold_aggregate(func: AggFunc, values: Vec<Value>) -> DbResult<Value> {
    match func {
        AggFunc::Count => Ok(Value::Int(values.len() as i64)),
        AggFunc::Sum => {
            // Paper Figure 6 semantics: empty SUM is 0.
            let mut acc = Value::Int(0);
            for v in &values {
                acc = acc.arith(ArithOp::Add, v)?;
            }
            Ok(acc)
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0;
            for v in &values {
                sum += v.as_f64()?;
            }
            Ok(Value::Float(sum / values.len() as f64))
        }
        AggFunc::Max | AggFunc::Min => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.compare(&b)?.ok_or_else(|| {
                            DbError::Type("NULL slipped into aggregate".to_string())
                        })?;
                        let take_new = if func == AggFunc::Max {
                            ord.is_gt()
                        } else {
                            ord.is_lt()
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Runs the candidate rows of `access` over `table`, calling `on_match`
/// (with the row's scope still pushed on `cx`) for every row the predicate
/// accepts. Preserves the interpreter's row order and error order.
fn for_each_match<'a>(
    cx: &mut EvalCx<'a>,
    table: &'a Table,
    access: &AccessPlan,
    mut on_match: impl FnMut(&mut EvalCx<'a>, usize, &'a [Value]) -> DbResult<()>,
) -> DbResult<()> {
    let db = cx.db;
    match &access.kind {
        AccessKind::Scan => scan_matches(cx, table, access.full_pred.as_ref(), &mut on_match),
        AccessKind::IndexEq {
            col, key, residual, ..
        } => {
            // An empty table evaluates nothing at all (the interpreter's
            // per-row loop never runs), so the key must not run either.
            if table.is_empty() {
                return Ok(());
            }
            let key_value = key.eval(cx)?;
            let Some(postings) = table.index_lookup(*col, &key_value) else {
                // Key type ≠ column type: equality semantics across types
                // (numeric widening, type errors) are the scan's business.
                return scan_matches(cx, table, access.full_pred.as_ref(), &mut on_match);
            };
            PlannerCounters::bump(&db.counters.index_hits, 1);
            for &ridx in postings {
                let row = table.rows()[ridx].as_slice();
                cx.scopes.push(row);
                let ok = match residual {
                    None => Ok(true),
                    Some(r) => r.eval_predicate(cx),
                };
                let result = match ok {
                    Ok(true) => on_match(cx, ridx, row),
                    Ok(false) => Ok(()),
                    Err(e) => Err(e),
                };
                cx.scopes.pop();
                result?;
            }
            Ok(())
        }
    }
}

fn scan_matches<'a>(
    cx: &mut EvalCx<'a>,
    table: &'a Table,
    pred: Option<&CompiledExpr>,
    on_match: &mut impl FnMut(&mut EvalCx<'a>, usize, &'a [Value]) -> DbResult<()>,
) -> DbResult<()> {
    let db = cx.db;
    for (ridx, row) in table.rows().iter().enumerate() {
        PlannerCounters::bump(&db.counters.rows_scanned, 1);
        let row = row.as_slice();
        cx.scopes.push(row);
        let ok = match pred {
            None => Ok(true),
            Some(p) => p.eval_predicate(cx),
        };
        let result = match ok {
            Ok(true) => on_match(cx, ridx, row),
            Ok(false) => Ok(()),
            Err(e) => Err(e),
        };
        cx.scopes.pop();
        result?;
    }
    Ok(())
}

/// Executes a planned SELECT in the given evaluation context (empty scopes
/// for a top-level statement; the outer rows for a scalar subquery).
pub(crate) fn run_planned_select<'a>(
    ps: &PlannedSelect,
    cx: &mut EvalCx<'a>,
) -> DbResult<Vec<Row>> {
    if let Some(e) = &ps.error {
        return Err(e.clone());
    }
    let db = cx.db;
    let Some((_, table)) = db.tables.get(&ps.key) else {
        return Err(DbError::NoSuchTable(ps.from.clone()));
    };
    let mut matched: Vec<&'a [Value]> = Vec::new();
    for_each_match(cx, table, &ps.access, |_cx, _ridx, row| {
        matched.push(row);
        Ok(())
    })?;
    match &ps.proj {
        Proj::Aggs(aggs) => {
            let mut out = Vec::with_capacity(aggs.len());
            for agg in aggs {
                match agg {
                    PAgg::CountStar => out.push(Value::Int(matched.len() as i64)),
                    PAgg::StarError => {
                        return Err(DbError::Type(
                            "only COUNT accepts '*' as its argument".to_string(),
                        ))
                    }
                    PAgg::Over(func, ce) => {
                        let mut values = Vec::with_capacity(matched.len());
                        for row in &matched {
                            cx.scopes.push(row);
                            let v = ce.eval(cx);
                            cx.scopes.pop();
                            let v = v?;
                            if !v.is_null() {
                                values.push(v);
                            }
                        }
                        out.push(fold_aggregate(*func, values)?);
                    }
                }
            }
            Ok(vec![out])
        }
        Proj::Rows(items) => {
            let mut rows_out = Vec::with_capacity(matched.len());
            for row in matched {
                cx.scopes.push(row);
                let mut out = Vec::new();
                let mut failed = None;
                for item in items {
                    match item {
                        PItem::Star => out.extend(row.iter().cloned()),
                        PItem::Expr(ce) => match ce.eval(cx) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        },
                    }
                }
                cx.scopes.pop();
                if let Some(e) = failed {
                    return Err(e);
                }
                rows_out.push(out);
            }
            Ok(rows_out)
        }
    }
}

impl Database {
    /// Returns (planning if needed) the cached plan for statement `idx` of
    /// a script, revalidating the cached entry's catalog version.
    /// Fetches (or builds and caches) the whole-script plan, materialising
    /// any indexes a freshly built plan requests. Cache hits — the steady
    /// state — cost one lock acquisition and touch no table state at all.
    pub(crate) fn cached_script(
        &mut self,
        cache: &PlanCache,
        statements: &[Statement],
    ) -> Arc<PlannedScript> {
        let script = {
            let mut guard = lock_cache(cache);
            if let Some(script) = &*guard {
                if script.version == self.catalog_version {
                    return Arc::clone(script);
                }
            }
            let plans: Vec<StmtPlan> = statements
                .iter()
                .map(|stmt| plan_statement(self, stmt))
                .collect();
            PlannerCounters::bump(&self.counters.plans_cached, plans.len() as u64);
            let script = Arc::new(PlannedScript {
                version: self.catalog_version,
                plans,
            });
            *guard = Some(Arc::clone(&script));
            script
        };
        let mut reqs: Vec<(String, usize)> = script
            .plans
            .iter()
            .flat_map(|p| p.index_reqs.iter().cloned())
            .collect();
        reqs.sort();
        reqs.dedup();
        self.ensure_plan_indexes(&reqs);
        script
    }

    /// Executes a prepared script through the plan cache (or the
    /// interpreter under [`PlannerMode::ForceScan`]).
    pub(crate) fn execute_prepared_script(
        &mut self,
        statements: &[Statement],
        cache: &PlanCache,
        params: &Params,
    ) -> DbResult<Vec<ExecOutcome>> {
        let script =
            (self.mode != PlannerMode::ForceScan).then(|| self.cached_script(cache, statements));
        let mut outcomes = Vec::with_capacity(statements.len());
        for (idx, stmt) in statements.iter().enumerate() {
            let outcome = match &script {
                None => self.execute_interpreted(stmt, params)?,
                Some(script) => self.exec_planned(stmt, &script.plans[idx], 0, params)?,
            };
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Executes a whole pre-planned script: the lock-free fast path for
    /// owners that memoise their [`PlannedScript`] (see
    /// [`crate::Prepared::execute`]). The caller has already revalidated
    /// the script's version; the per-statement check in
    /// [`Database::exec_planned`] still catches DDL executed mid-script.
    pub(crate) fn execute_planned_script(
        &mut self,
        statements: &[Statement],
        script: &PlannedScript,
        params: &Params,
    ) -> DbResult<Vec<ExecOutcome>> {
        let mut outcomes = Vec::with_capacity(statements.len());
        for (stmt, plan) in statements.iter().zip(script.plans()) {
            outcomes.push(self.exec_planned(stmt, plan, 0, params)?);
        }
        Ok(outcomes)
    }

    /// Executes a statement against a plan, transparently replanning when
    /// the catalog has moved since the plan was built.
    pub(crate) fn exec_planned(
        &mut self,
        source: &Statement,
        plan: &StmtPlan,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        if plan.version != self.catalog_version {
            let fresh = plan_statement(self, source);
            self.ensure_plan_indexes(&fresh.index_reqs);
            return self.exec_plan_kind(source, &fresh, depth, params);
        }
        self.exec_plan_kind(source, plan, depth, params)
    }

    pub(crate) fn ensure_plan_indexes(&mut self, reqs: &[(String, usize)]) {
        for (key, col) in reqs {
            if let Some((_, table)) = self.tables.get_mut(key) {
                table.ensure_index(*col);
            }
        }
    }

    fn exec_plan_kind(
        &mut self,
        source: &Statement,
        plan: &StmtPlan,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        // Indexes were materialised when the plan was built (cached_plan,
        // warm_plans, or the replan above) — execution only probes them.
        match &plan.kind {
            PlanKind::Ddl => self.execute_ddl(source, depth, params),
            PlanKind::Raise(e) => Err(e.clone()),
            PlanKind::Explain(lines) => Ok(ExecOutcome::Explain(lines.clone())),
            PlanKind::SetVar { name, value } => {
                let v = {
                    let mut cx = EvalCx::new(&*self, params);
                    value.eval(&mut cx)?
                };
                self.set_var(name, v);
                Ok(ExecOutcome::Done)
            }
            PlanKind::If { arms, else_block } => {
                for (cond, block) in arms {
                    let hit = {
                        let mut cx = EvalCx::new(&*self, params);
                        cond.eval_predicate(&mut cx)?
                    };
                    if hit {
                        return self.exec_planned_block(block, depth, params);
                    }
                }
                if let Some(block) = else_block {
                    return self.exec_planned_block(block, depth, params);
                }
                Ok(ExecOutcome::Done)
            }
            PlanKind::Select(ps) => {
                let rows = {
                    let mut cx = EvalCx::new(&*self, params);
                    run_planned_select(ps, &mut cx)?
                };
                Ok(ExecOutcome::Rows(rows))
            }
            PlanKind::Insert(pi) => self.exec_planned_insert(pi, depth, params),
            PlanKind::Update(pu) => self.exec_planned_update(pu, params),
            PlanKind::Delete(pd) => self.exec_planned_delete(pd, params),
        }
    }

    fn exec_planned_block(
        &mut self,
        block: &PlannedBlock,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        for (stmt, plan) in &block.stmts {
            self.exec_planned(stmt, plan, depth, params)?;
        }
        Ok(ExecOutcome::Done)
    }

    fn exec_planned_insert(
        &mut self,
        pi: &PlannedInsert,
        depth: usize,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        // Evaluate before mutating (expressions may read other tables),
        // mapping each tuple onto the schema in interpreter order.
        let mut materialised: Vec<Row> = Vec::with_capacity(pi.rows.len());
        {
            let mut cx = EvalCx::new(&*self, params);
            for prow in &pi.rows {
                let mut values = Vec::with_capacity(prow.exprs.len());
                for ce in &prow.exprs {
                    values.push(ce.eval(&mut cx)?);
                }
                let row = match &prow.map {
                    RowMap::Direct => values,
                    RowMap::Mapped(slots) => {
                        let mut full = vec![Value::Null; pi.schema_len];
                        for (slot, v) in slots.iter().zip(values) {
                            full[*slot] = v;
                        }
                        full
                    }
                    RowMap::Err(e) => return Err(e.clone()),
                };
                materialised.push(row);
            }
        }
        let count = materialised.len();
        let (_, t) = self
            .tables
            .get_mut(&pi.key)
            .ok_or_else(|| DbError::NoSuchTable(pi.from.clone()))?;
        for row in materialised {
            t.insert(row)?;
        }
        self.fire_triggers(&pi.key, depth)?;
        Ok(ExecOutcome::Inserted(count))
    }

    fn exec_planned_update(
        &mut self,
        pu: &PlannedUpdate,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        // Phase 1 (immutable): snapshot semantics — find matches and compute
        // new values, interleaved per row exactly like the interpreter.
        let mut planned_rows: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
        {
            let mut cx = EvalCx::new(&*self, params);
            let db = cx.db;
            let (_, t) = db
                .tables
                .get(&pu.key)
                .ok_or_else(|| DbError::NoSuchTable(pu.from.clone()))?;
            for_each_match(&mut cx, t, &pu.access, |cx, ridx, _row| {
                let mut assignments = Vec::with_capacity(pu.sets.len());
                for (cidx, ce) in &pu.sets {
                    assignments.push((*cidx, ce.eval(cx)?));
                }
                planned_rows.push((ridx, assignments));
                Ok(())
            })?;
        }
        // Phase 2 (mutable): apply.
        let count = planned_rows.len();
        let (_, t) = self.tables.get_mut(&pu.key).expect("checked in phase 1");
        for (ridx, assignments) in planned_rows {
            for (cidx, value) in assignments {
                t.set_cell(ridx, cidx, value)?;
            }
        }
        Ok(ExecOutcome::Updated(count))
    }

    fn exec_planned_delete(
        &mut self,
        pd: &PlannedDelete,
        params: &Params,
    ) -> DbResult<ExecOutcome> {
        let mut doomed: Vec<usize> = Vec::new();
        {
            let mut cx = EvalCx::new(&*self, params);
            let db = cx.db;
            let (_, t) = db
                .tables
                .get(&pd.key)
                .ok_or_else(|| DbError::NoSuchTable(pd.from.clone()))?;
            for_each_match(&mut cx, t, &pd.access, |_cx, ridx, _row| {
                doomed.push(ridx);
                Ok(())
            })?;
        }
        let count = doomed.len();
        let (_, t) = self.tables.get_mut(&pd.key).expect("checked in phase 1");
        t.delete_rows(&doomed);
        Ok(ExecOutcome::Deleted(count))
    }

    // ---- public planner API ----------------------------------------------

    /// Plans every statement of `sql` and returns the chosen physical
    /// access paths without executing anything.
    ///
    /// Introspection is pure: it takes `&self`, creates no indexes, caches
    /// no plans, and bumps no counters — serve paths draw identical RNG
    /// streams whether or not an explain call happens between auctions.
    /// The same output is available through SQL as `EXPLAIN <stmt>`
    /// ([`ExecOutcome::Explain`]).
    ///
    /// ```
    /// use ssa_minidb::{Database, ExplainAccess};
    ///
    /// let mut db = Database::new();
    /// db.run("CREATE TABLE Keywords (text TEXT, bid INT)").unwrap();
    /// db.run("INSERT INTO Keywords VALUES ('boot', 4)").unwrap();
    ///
    /// let lines = db.explain("SELECT bid FROM Keywords WHERE text = 'boot'").unwrap();
    /// assert_eq!(lines[0].op, "SELECT FROM Keywords");
    /// assert_eq!(
    ///     lines[0].access,
    ///     ExplainAccess::IndexLookup { column: "text".into() }
    /// );
    ///
    /// let lines = db.explain("SELECT bid FROM Keywords WHERE bid > 2").unwrap();
    /// assert_eq!(lines[0].access, ExplainAccess::FullScan);
    /// ```
    pub fn explain(&self, sql: &str) -> DbResult<Vec<ExplainLine>> {
        let statements = parse_script(sql)?;
        let mut lines = Vec::new();
        for stmt in &statements {
            lines.extend(explain_statement(self, stmt)?);
        }
        Ok(lines)
    }

    /// Plans every stored trigger body now (instead of on first firing)
    /// and materialises the indexes those plans request. Campaign hosts
    /// call this once after installing a bidding program, so the first
    /// auction pays no planning cost. A no-op under
    /// [`PlannerMode::ForceScan`].
    pub fn warm_plans(&mut self) {
        if self.mode == PlannerMode::ForceScan {
            return;
        }
        let triggers: Vec<_> = self
            .triggers
            .iter()
            .map(|t| (Arc::clone(&t.body), Arc::clone(&t.plans)))
            .collect();
        for (body, cache) in triggers {
            self.cached_script(&cache, &body);
        }
    }

    /// Current planner counters (monotonic since the database was created).
    pub fn planner_stats(&self) -> PlannerStats {
        PlannerStats {
            index_hits: self.counters.index_hits.get(),
            rows_scanned: self.counters.rows_scanned.get(),
            plans_cached: self.counters.plans_cached.get(),
        }
    }

    /// Switches between the planned pipeline and the forced-scan
    /// interpreter. Both produce bit-identical results; the toggle exists
    /// for equivalence tests and overhead measurements.
    pub fn set_planner_mode(&mut self, mode: PlannerMode) {
        self.mode = mode;
    }

    /// The active [`PlannerMode`].
    pub fn planner_mode(&self) -> PlannerMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecOutcome;
    use crate::value::Value;

    fn seeded(mode: PlannerMode) -> Database {
        let mut db = Database::new();
        db.set_planner_mode(mode);
        db.run("CREATE TABLE Keywords (Text TEXT, Bid INT)")
            .unwrap();
        for (t, b) in [("boot", 4), ("shoe", 7), ("boot", 9), ("sock", 1)] {
            db.run(&format!("INSERT INTO Keywords VALUES ('{t}', {b})"))
                .unwrap();
        }
        db
    }

    #[test]
    fn mixed_case_references_share_one_index() {
        let mut db = seeded(PlannerMode::Auto);
        // Same logical query under three casings of the table and column.
        let spellings = [
            "SELECT Bid FROM Keywords WHERE Text = 'boot'",
            "SELECT Bid FROM keywords WHERE text = 'boot'",
            "SELECT Bid FROM KEYWORDS WHERE TEXT = 'boot'",
        ];
        let before = db.planner_stats();
        let mut results = Vec::new();
        for sql in spellings {
            // Explain reports the canonical, schema-cased column every time.
            let lines = db.explain(sql).unwrap();
            assert_eq!(
                lines[0].access,
                ExplainAccess::IndexLookup {
                    column: "Text".into()
                },
                "spelling {sql:?} must plan an index probe"
            );
            results.push(db.query(sql).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[0].len(), 2);
        let after = db.planner_stats();
        assert_eq!(
            after.index_hits - before.index_hits,
            3,
            "every casing must hit the same index"
        );
        assert_eq!(
            after.rows_scanned, before.rows_scanned,
            "index probes must not scan"
        );
    }

    #[test]
    fn explain_does_not_execute_or_cache() {
        let mut db = seeded(PlannerMode::Auto);
        db.run(
            "CREATE TRIGGER bump AFTER INSERT ON Keywords { \
             UPDATE Keywords SET Bid = Bid + 1 WHERE Text = 'boot' }",
        )
        .unwrap();
        let rows_before = db.query("SELECT Text, Bid FROM Keywords").unwrap();
        let stats_before = db.planner_stats();
        for sql in [
            "EXPLAIN SELECT * FROM Keywords WHERE Text = 'boot'",
            "EXPLAIN INSERT INTO Keywords VALUES ('new', 1)",
            "EXPLAIN UPDATE Keywords SET Bid = 0 WHERE Bid = 4",
            "EXPLAIN DELETE FROM Keywords WHERE Text = 'sock'",
        ] {
            let out = db.run(sql).unwrap();
            assert!(matches!(out[0], ExecOutcome::Explain(_)));
        }
        // Nothing ran: no rows changed, no trigger fired, no counters moved.
        assert_eq!(
            db.query("SELECT Text, Bid FROM Keywords").unwrap(),
            rows_before
        );
        let stats_after = db.planner_stats();
        assert_eq!(stats_after.index_hits, stats_before.index_hits);
        assert_eq!(stats_after.plans_cached, stats_before.plans_cached);
    }

    #[test]
    fn planned_and_interpreted_agree_on_triggers_and_errors() {
        let script = "CREATE TABLE Stats (clicks INT, cost FLOAT);\
                      CREATE TABLE Keywords (word TEXT, bid INT);\
                      CREATE TRIGGER t AFTER INSERT ON Stats { \
                        UPDATE Keywords SET bid = bid + (SELECT COUNT(*) FROM Stats) \
                        WHERE word = 'boot' };\
                      INSERT INTO Keywords VALUES ('boot', 10), ('shoe', 20);\
                      INSERT INTO Stats VALUES (3, 1.5);\
                      INSERT INTO Stats VALUES (4, 2.5)";
        let mut auto = Database::new();
        auto.set_planner_mode(PlannerMode::Auto);
        let mut scan = Database::new();
        scan.set_planner_mode(PlannerMode::ForceScan);
        assert_eq!(auto.run(script).unwrap(), scan.run(script).unwrap());
        let probe = "SELECT word, bid FROM Keywords WHERE word = 'boot'";
        assert_eq!(auto.query(probe).unwrap(), scan.query(probe).unwrap());
        assert_eq!(
            auto.query(probe).unwrap()[0][1],
            Value::Int(13),
            "trigger must have fired twice (10 + 1 + 2)"
        );
        // Errors are identical too, down to the message.
        for bad in [
            "SELECT missing FROM Keywords",
            "SELECT * FROM Keywords WHERE word = 3",
            "UPDATE Keywords SET bid = bid + 'x' WHERE word = 'boot'",
            "SELECT * FROM Nowhere WHERE a = 1",
        ] {
            assert_eq!(auto.run(bad), scan.run(bad), "statement: {bad}");
        }
        assert_eq!(auto.query(probe).unwrap(), scan.query(probe).unwrap());
    }

    #[test]
    fn prepared_plans_are_cached_once() {
        let mut db = seeded(PlannerMode::Auto);
        let mut stmt = db
            .prepare("SELECT Bid FROM Keywords WHERE Text = ?")
            .unwrap();
        let params = crate::prepared::Params::new().push("boot");
        db.execute_prepared(&mut stmt, &params).unwrap();
        let after_first = db.planner_stats().plans_cached;
        for _ in 0..10 {
            db.execute_prepared(&mut stmt, &params).unwrap();
        }
        assert_eq!(
            db.planner_stats().plans_cached,
            after_first,
            "repeat executions must reuse the cached plan"
        );
    }

    #[test]
    fn type_mismatched_keys_fall_back_identically() {
        // Float key probing an INT column: the index cannot answer, so the
        // planned path falls back to a scan and must agree with the
        // interpreter (numeric equality across Int/Float is true).
        let mut auto = seeded(PlannerMode::Auto);
        let mut scan = seeded(PlannerMode::ForceScan);
        let float_key = "SELECT Text FROM Keywords WHERE Bid = 4.0";
        assert_eq!(auto.run(float_key), scan.run(float_key));
        assert_eq!(auto.query(float_key).unwrap().len(), 1);
        // Int key probing a TEXT column: both engines raise the same error.
        let bad_key = "SELECT Text FROM Keywords WHERE Text = 3";
        let a = auto.run(bad_key);
        assert!(a.is_err());
        assert_eq!(a, scan.run(bad_key));
    }

    #[test]
    fn ddl_invalidates_stale_plans() {
        let mut db = seeded(PlannerMode::Auto);
        let mut stmt = db
            .prepare("SELECT Bid FROM Keywords WHERE Text = ?")
            .unwrap();
        let params = crate::prepared::Params::new().push("boot");
        assert_eq!(
            db.execute_prepared(&mut stmt, &params).unwrap(),
            vec![ExecOutcome::Rows(vec![
                vec![Value::Int(4)],
                vec![Value::Int(9)]
            ])]
        );
        db.run("DROP TABLE Keywords").unwrap();
        db.run("CREATE TABLE Keywords (Other INT, Text TEXT, Bid INT)")
            .unwrap();
        db.run("INSERT INTO Keywords VALUES (0, 'boot', 42)")
            .unwrap();
        // The cached plan is stale (column positions moved); execution must
        // replan against the new catalog rather than read the wrong cell.
        assert_eq!(
            db.execute_prepared(&mut stmt, &params).unwrap(),
            vec![ExecOutcome::Rows(vec![vec![Value::Int(42)]])]
        );
    }
}
