//! Typed values and their coercion rules.

use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::fmt;

/// The type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Text => write!(f, "TEXT"),
            ValueType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A dynamically-typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null => None,
        }
    }

    /// `true` if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (exact).
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(DbError::Type(format!("expected INT, got {other}"))),
        }
    }

    /// Numeric view: INT and FLOAT both coerce to `f64`.
    pub fn as_f64(&self) -> DbResult<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            other => Err(DbError::Type(format!("expected a number, got {other}"))),
        }
    }

    /// Text view.
    pub fn as_text(&self) -> DbResult<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(DbError::Type(format!("expected TEXT, got {other}"))),
        }
    }

    /// Boolean view. NULL is "unknown" and treated as `false` in predicate
    /// position by the executor, but `as_bool` itself is strict.
    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DbError::Type(format!("expected BOOL, got {other}"))),
        }
    }

    /// `true` if both values are numeric (INT or FLOAT).
    fn both_numeric(&self, other: &Value) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
            && matches!(other, Value::Int(_) | Value::Float(_))
    }

    /// SQL three-valued comparison: NULL compares as None.
    pub fn compare(&self, other: &Value) -> DbResult<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        if self.both_numeric(other) {
            // INT/INT comparisons stay exact.
            if let (Value::Int(a), Value::Int(b)) = (self, other) {
                return Ok(Some(a.cmp(b)));
            }
            let (a, b) = (self.as_f64()?, other.as_f64()?);
            return Ok(a.partial_cmp(&b));
        }
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Ok(Some(a.cmp(b))),
            (Value::Bool(a), Value::Bool(b)) => Ok(Some(a.cmp(b))),
            _ => Err(DbError::Type(format!("cannot compare {self} with {other}"))),
        }
    }

    /// Arithmetic with INT-preserving semantics and NULL propagation.
    pub fn arith(&self, op: ArithOp, other: &Value) -> DbResult<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            // Checked arithmetic throughout: bids near i64::MAX must error,
            // not silently wrap (and i64::MIN / -1 and % -1 must not trap).
            return match op {
                ArithOp::Add => a.checked_add(*b).map(Value::Int).ok_or(DbError::Overflow),
                ArithOp::Sub => a.checked_sub(*b).map(Value::Int).ok_or(DbError::Overflow),
                ArithOp::Mul => a.checked_mul(*b).map(Value::Int).ok_or(DbError::Overflow),
                ArithOp::Div => {
                    if *b == 0 {
                        Err(DbError::DivisionByZero)
                    } else {
                        // SQL-style: integer division when exact, float
                        // otherwise — the ROI heuristic divides cents by
                        // time and expects a rate.
                        match a.checked_rem(*b) {
                            None => Err(DbError::Overflow),
                            Some(0) => a.checked_div(*b).map(Value::Int).ok_or(DbError::Overflow),
                            Some(_) => Ok(Value::Float(*a as f64 / *b as f64)),
                        }
                    }
                }
                ArithOp::Mod => {
                    if *b == 0 {
                        Err(DbError::DivisionByZero)
                    } else {
                        a.checked_rem(*b).map(Value::Int).ok_or(DbError::Overflow)
                    }
                }
            };
        }
        if !self.both_numeric(other) {
            return Err(DbError::Type(format!(
                "arithmetic on non-numbers: {self} {op} {other}"
            )));
        }
        let (a, b) = (self.as_f64()?, other.as_f64()?);
        let out = match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return Err(DbError::DivisionByZero);
                }
                a / b
            }
            ArithOp::Mod => {
                if b == 0.0 {
                    return Err(DbError::DivisionByZero);
                }
                a % b
            }
        };
        Ok(Value::Float(out))
    }

    /// Checks assignability into a column of the given type (NULL fits
    /// anywhere; INT widens into FLOAT).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ValueType::Int | ValueType::Float)
                | (Value::Float(_), ValueType::Float)
                | (Value::Text(_), ValueType::Text)
                | (Value::Bool(_), ValueType::Bool)
        )
    }
}

/// Arithmetic operators used by [`Value::arith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            Value::Int(3)
                .arith(ArithOp::Add, &Value::Float(0.5))
                .unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            Value::Int(7).arith(ArithOp::Div, &Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            Value::Int(6).arith(ArithOp::Div, &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::Int(7).arith(ArithOp::Mod, &Value::Int(4)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            Value::Null.arith(ArithOp::Add, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(Value::Int(1).compare(&Value::Null).unwrap(), None);
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(
            Value::Int(1).arith(ArithOp::Div, &Value::Int(0)),
            Err(DbError::DivisionByZero)
        );
        assert_eq!(
            Value::Float(1.0).arith(ArithOp::Mod, &Value::Float(0.0)),
            Err(DbError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let max = Value::Int(i64::MAX);
        let min = Value::Int(i64::MIN);
        assert_eq!(
            max.arith(ArithOp::Add, &Value::Int(1)),
            Err(DbError::Overflow)
        );
        assert_eq!(
            min.arith(ArithOp::Sub, &Value::Int(1)),
            Err(DbError::Overflow)
        );
        assert_eq!(
            max.arith(ArithOp::Mul, &Value::Int(2)),
            Err(DbError::Overflow)
        );
        assert_eq!(
            min.arith(ArithOp::Div, &Value::Int(-1)),
            Err(DbError::Overflow)
        );
        assert_eq!(
            min.arith(ArithOp::Mod, &Value::Int(-1)),
            Err(DbError::Overflow)
        );
        // Near the edge but in range stays exact.
        assert_eq!(
            max.arith(ArithOp::Sub, &Value::Int(1)).unwrap(),
            Value::Int(i64::MAX - 1)
        );
        assert_eq!(
            max.arith(ArithOp::Add, &Value::Int(0)).unwrap(),
            Value::Int(i64::MAX)
        );
    }

    #[test]
    fn comparisons() {
        use Ordering::*;
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)).unwrap(),
            Some(Less)
        );
        assert_eq!(
            Value::Text("a".into())
                .compare(&Value::Text("b".into()))
                .unwrap(),
            Some(Less)
        );
        assert_eq!(
            Value::Bool(true).compare(&Value::Bool(true)).unwrap(),
            Some(Equal)
        );
        assert!(Value::Int(1).compare(&Value::Text("x".into())).is_err());
    }

    #[test]
    fn type_conformance() {
        assert!(Value::Int(1).conforms_to(ValueType::Float));
        assert!(!Value::Float(1.0).conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Text));
        assert!(!Value::Text("x".into()).conforms_to(ValueType::Bool));
    }

    #[test]
    fn strict_accessors() {
        assert!(Value::Text("x".into()).as_f64().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Float(2.0).as_f64().unwrap(), 2.0);
        assert_eq!(Value::Text("hi".into()).as_text().unwrap(), "hi");
    }

    #[test]
    fn display() {
        assert_eq!(Value::Text("a".into()).to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
