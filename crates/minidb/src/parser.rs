//! Recursive-descent parser for the SQL dialect.

use crate::ast::{
    AggFunc, CmpOp, ColumnRef, Expr, ParamRef, Select, SelectItem, SetClause, Statement,
};
use crate::error::{DbError, DbResult};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::{ArithOp, Value, ValueType};

/// Maximum combined statement/expression nesting depth. Bidding programs
/// come from untrusted advertisers; unbounded recursive descent would let
/// `((((…` or deeply nested `IF`s overflow the parser stack.
pub const MAX_PARSE_DEPTH: usize = 64;

/// Parses a script of one or more `;`-separated statements.
pub fn parse_script(input: &str) -> DbResult<Vec<Statement>> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        index: 0,
        input_len: input.len(),
        depth: 0,
        positional: 0,
        in_trigger_body: false,
    };
    let mut statements = Vec::new();
    loop {
        p.skip_semicolons();
        if p.at_end() {
            break;
        }
        statements.push(p.parse_statement()?);
    }
    Ok(statements)
}

/// Parses exactly one statement.
pub fn parse_statement(input: &str) -> DbResult<Statement> {
    let mut statements = parse_script(input)?;
    match statements.len() {
        1 => Ok(statements.pop().expect("checked length")),
        n => Err(DbError::Parse {
            message: format!("expected exactly one statement, found {n}"),
            position: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
    input_len: usize,
    /// Current recursive-descent nesting depth (statements + expressions).
    depth: usize,
    /// Positional (`?`) parameters seen so far, in statement order.
    positional: usize,
    /// Inside a `CREATE TRIGGER` body. Stored bodies run long after the
    /// creating statement's parameters are gone, so placeholders in them
    /// are rejected at parse time instead of failing when the trigger
    /// eventually fires.
    in_trigger_body: bool,
}

impl Parser {
    /// Enters one nesting level; errors once [`MAX_PARSE_DEPTH`] is hit.
    fn descend(&mut self) -> DbResult<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(DbError::NestingTooDeep {
                limit: MAX_PARSE_DEPTH,
            })
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }
    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.index)
            .map(|t| t.position)
            .unwrap_or(self.input_len)
    }

    fn error(&self, message: impl Into<String>) -> DbError {
        DbError::Parse {
            message: message.into(),
            position: self.position(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.index).map(|t| &t.kind)
    }

    fn peek_at(&self, offset: usize) -> Option<&TokenKind> {
        self.tokens.get(self.index + offset).map(|t| &t.kind)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.index).map(|t| t.kind.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Keyword(k)) if k.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(TokenKind::Symbol(c)) if *c == sym) {
            self.index += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char) -> DbResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{sym}'")))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.peek() {
            Some(kind) => match ident_like(kind) {
                Some(name) => {
                    self.index += 1;
                    Ok(name)
                }
                None => Err(self.error("expected an identifier")),
            },
            None => Err(self.error("expected an identifier")),
        }
    }

    fn skip_semicolons(&mut self) {
        while self.eat_symbol(';') {}
    }

    // ---- statements ------------------------------------------------------

    fn parse_statement(&mut self) -> DbResult<Statement> {
        self.descend()?;
        let statement = self.parse_statement_at_depth();
        self.ascend();
        statement
    }

    fn parse_statement_at_depth(&mut self) -> DbResult<Statement> {
        match self.peek() {
            Some(TokenKind::Keyword(k)) => match k.to_ascii_uppercase().as_str() {
                "CREATE" => self.parse_create(),
                "DROP" => self.parse_drop(),
                "INSERT" => self.parse_insert(),
                "UPDATE" => self.parse_update(),
                "DELETE" => self.parse_delete(),
                "SELECT" => Ok(Statement::Select(self.parse_select()?)),
                "IF" => self.parse_if(),
                "SET" => self.parse_set_var(),
                other => Err(self.error(format!("unexpected keyword {other}"))),
            },
            // `EXPLAIN` is deliberately not a reserved keyword (it stays
            // usable as a table or column name); it is only special as the
            // leading word of a statement.
            Some(TokenKind::Ident(word)) if word.eq_ignore_ascii_case("EXPLAIN") => {
                self.index += 1;
                let inner = self.parse_statement()?;
                Ok(Statement::Explain(Box::new(inner)))
            }
            _ => Err(self.error("expected a statement")),
        }
    }

    fn parse_create(&mut self) -> DbResult<Statement> {
        self.expect_keyword("CREATE")?;
        if self.eat_keyword("TABLE") {
            let name = self.expect_ident()?;
            self.expect_symbol('(')?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_ident()?;
                let ty = self.parse_type()?;
                columns.push((col, ty));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_keyword("TRIGGER") {
            let name = self.expect_ident()?;
            self.expect_keyword("AFTER")?;
            self.expect_keyword("INSERT")?;
            self.expect_keyword("ON")?;
            let table = self.expect_ident()?;
            self.expect_symbol('{')?;
            let mut body = Vec::new();
            let outer = std::mem::replace(&mut self.in_trigger_body, true);
            loop {
                self.skip_semicolons();
                if self.eat_symbol('}') {
                    break;
                }
                if self.at_end() {
                    self.in_trigger_body = outer;
                    return Err(self.error("unterminated trigger body"));
                }
                let statement = self.parse_statement();
                match statement {
                    Ok(s) => body.push(s),
                    Err(e) => {
                        self.in_trigger_body = outer;
                        return Err(e);
                    }
                }
            }
            self.in_trigger_body = outer;
            Ok(Statement::CreateTrigger { name, table, body })
        } else {
            Err(self.error("expected TABLE or TRIGGER after CREATE"))
        }
    }

    fn parse_drop(&mut self) -> DbResult<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name })
    }

    fn parse_type(&mut self) -> DbResult<ValueType> {
        let kw = match self.advance() {
            Some(TokenKind::Keyword(k)) => k,
            _ => return Err(self.error("expected a column type")),
        };
        let ty = match kw.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" => ValueType::Int,
            "FLOAT" | "REAL" => ValueType::Float,
            "TEXT" | "VARCHAR" => {
                // Optional length: VARCHAR(40).
                if self.eat_symbol('(') {
                    match self.advance() {
                        Some(TokenKind::Int(_)) => {}
                        _ => return Err(self.error("expected length")),
                    }
                    self.expect_symbol(')')?;
                }
                ValueType::Text
            }
            "BOOL" | "BOOLEAN" => ValueType::Bool,
            other => return Err(self.error(format!("unknown type {other}"))),
        };
        Ok(ty)
    }

    fn parse_insert(&mut self) -> DbResult<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.eat_symbol('(') {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut exprs = Vec::new();
            loop {
                exprs.push(self.parse_expr()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            rows.push(exprs);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> DbResult<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let column = self.expect_ident()?;
            if !matches!(self.advance(), Some(TokenKind::Eq)) {
                return Err(self.error("expected '=' in SET clause"));
            }
            let value = self.parse_expr()?;
            sets.push(SetClause { column, value });
            if !self.eat_symbol(',') {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> DbResult<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn parse_if(&mut self) -> DbResult<Statement> {
        self.expect_keyword("IF")?;
        let mut arms = Vec::new();
        let mut else_block = None;
        let cond = self.parse_expr()?;
        self.expect_keyword("THEN")?;
        let block = self.parse_block_until(&["ELSEIF", "ELSE", "ENDIF"])?;
        arms.push((cond, block));
        loop {
            if self.eat_keyword("ELSEIF") {
                let cond = self.parse_expr()?;
                self.expect_keyword("THEN")?;
                let block = self.parse_block_until(&["ELSEIF", "ELSE", "ENDIF"])?;
                arms.push((cond, block));
            } else if self.eat_keyword("ELSE") {
                else_block = Some(self.parse_block_until(&["ENDIF"])?);
            } else if self.eat_keyword("ENDIF") {
                break;
            } else {
                return Err(self.error("expected ELSEIF, ELSE, or ENDIF"));
            }
        }
        Ok(Statement::If { arms, else_block })
    }

    fn parse_block_until(&mut self, terminators: &[&str]) -> DbResult<Vec<Statement>> {
        let mut block = Vec::new();
        loop {
            self.skip_semicolons();
            match self.peek() {
                Some(TokenKind::Keyword(k))
                    if terminators.contains(&k.to_ascii_uppercase().as_str()) =>
                {
                    break
                }
                None => return Err(self.error("unterminated IF block")),
                _ => block.push(self.parse_statement()?),
            }
        }
        Ok(block)
    }

    fn parse_set_var(&mut self) -> DbResult<Statement> {
        self.expect_keyword("SET")?;
        let name = self.expect_ident()?;
        if !matches!(self.advance(), Some(TokenKind::Eq)) {
            return Err(self.error("expected '=' in SET"));
        }
        let value = self.parse_expr()?;
        Ok(Statement::SetVar { name, value })
    }

    fn parse_select(&mut self) -> DbResult<Select> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.expect_ident()?;
        let alias = match self.peek() {
            Some(TokenKind::Ident(_)) => Some(self.expect_ident()?),
            Some(TokenKind::Keyword(k)) if k.eq_ignore_ascii_case("AS") => {
                self.index += 1;
                Some(self.expect_ident()?)
            }
            _ => None,
        };
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            alias,
            where_clause,
        })
    }

    fn parse_select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat_symbol('*') {
            return Ok(SelectItem::Star);
        }
        if let Some(TokenKind::Keyword(k)) = self.peek() {
            // Aggregate only when followed by '(' — `SELECT max FROM t`
            // reads a column called "max".
            if let Some(agg) = agg_from_keyword(k) {
                if matches!(self.peek_at(1), Some(TokenKind::Symbol('('))) {
                    self.index += 2;
                    let inner = if self.eat_symbol('*') {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect_symbol(')')?;
                    return Ok(SelectItem::Agg(agg, inner));
                }
            }
        }
        Ok(SelectItem::Expr(self.parse_expr()?))
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> DbResult<Expr> {
        self.descend()?;
        let expr = self.parse_or();
        self.ascend();
        expr
    }

    fn parse_or(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_and()?;
        let mut charged = 0usize;
        while self.eat_keyword("OR") {
            // Chained operators build a left-nested tree whose spine later
            // tree walks (lowering, evaluation) recurse down, so each term
            // draws on the same depth budget as parenthesised nesting.
            self.descend()?;
            charged += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        self.depth -= charged;
        Ok(lhs)
    }

    fn parse_and(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_not()?;
        let mut charged = 0usize;
        while self.eat_keyword("AND") {
            self.descend()?;
            charged += 1;
            let rhs = self.parse_not()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        self.depth -= charged;
        Ok(lhs)
    }

    fn parse_not(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("NOT") {
            self.descend()?;
            let inner = self.parse_not();
            self.ascend();
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> DbResult<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(CmpOp::Eq),
            Some(TokenKind::Neq) => Some(CmpOp::Neq),
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.index += 1;
            let rhs = self.parse_additive()?;
            Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        let mut charged = 0usize;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Symbol('+')) => ArithOp::Add,
                Some(TokenKind::Symbol('-')) => ArithOp::Sub,
                _ => break,
            };
            self.index += 1;
            self.descend()?;
            charged += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        self.depth -= charged;
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> DbResult<Expr> {
        let mut lhs = self.parse_unary()?;
        let mut charged = 0usize;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Symbol('*')) => ArithOp::Mul,
                Some(TokenKind::Symbol('/')) => ArithOp::Div,
                Some(TokenKind::Symbol('%')) => ArithOp::Mod,
                _ => break,
            };
            self.index += 1;
            self.descend()?;
            charged += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        self.depth -= charged;
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> DbResult<Expr> {
        if self.eat_symbol('-') {
            self.descend()?;
            let inner = self.parse_unary();
            self.ascend();
            Ok(Expr::Neg(Box::new(inner?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Question) => {
                if self.in_trigger_body {
                    return Err(self.error(
                        "parameters are not allowed in trigger bodies \
                         (use host variables for per-firing values)",
                    ));
                }
                self.index += 1;
                let i = self.positional;
                self.positional += 1;
                Ok(Expr::Param(ParamRef::Positional(i)))
            }
            Some(TokenKind::NamedParam(name)) => {
                if self.in_trigger_body {
                    return Err(self.error(
                        "parameters are not allowed in trigger bodies \
                         (use host variables for per-firing values)",
                    ));
                }
                self.index += 1;
                Ok(Expr::Param(ParamRef::Named(name)))
            }
            Some(TokenKind::Int(v)) => {
                self.index += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(TokenKind::Float(v)) => {
                self.index += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(TokenKind::Str(s)) => {
                self.index += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(TokenKind::Keyword(k)) if k.eq_ignore_ascii_case("NULL") => {
                self.index += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(TokenKind::Keyword(k)) if k.eq_ignore_ascii_case("TRUE") => {
                self.index += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(TokenKind::Keyword(k)) if k.eq_ignore_ascii_case("FALSE") => {
                self.index += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(TokenKind::Symbol('(')) => {
                self.index += 1;
                if self.peek_keyword("SELECT") {
                    let select = self.parse_select()?;
                    self.expect_symbol(')')?;
                    Ok(Expr::Subquery(Box::new(select)))
                } else {
                    let inner = self.parse_expr()?;
                    self.expect_symbol(')')?;
                    Ok(inner)
                }
            }
            Some(ref kind) if ident_like(kind).is_some() => {
                let first = self.expect_ident()?;
                if matches!(self.peek(), Some(TokenKind::Symbol('.')))
                    && self
                        .peek_at(1)
                        .map(|k| ident_like(k).is_some())
                        .unwrap_or(false)
                {
                    self.index += 1; // '.'
                    let column = self.expect_ident()?;
                    Ok(Expr::Column(ColumnRef {
                        qualifier: Some(first),
                        column,
                    }))
                } else {
                    Ok(Expr::Column(ColumnRef {
                        qualifier: None,
                        column: first,
                    }))
                }
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Keywords that may double as identifiers ("soft" keywords). The paper's
/// own Figure 4 names a column `text`, so type and aggregate names must not
/// be reserved in identifier position.
const SOFT_IDENT_KEYWORDS: &[&str] = &[
    "TEXT", "INT", "FLOAT", "BOOL", "INTEGER", "REAL", "VARCHAR", "BOOLEAN", "MAX", "MIN", "SUM",
    "AVG", "COUNT",
];

fn ident_like(kind: &TokenKind) -> Option<String> {
    match kind {
        TokenKind::Ident(name) => Some(name.clone()),
        TokenKind::Keyword(k) if SOFT_IDENT_KEYWORDS.contains(&k.to_ascii_uppercase().as_str()) => {
            Some(k.clone())
        }
        _ => None,
    }
}

fn agg_from_keyword(k: &str) -> Option<AggFunc> {
    match k.to_ascii_uppercase().as_str() {
        "MAX" => Some(AggFunc::Max),
        "MIN" => Some(AggFunc::Min),
        "SUM" => Some(AggFunc::Sum),
        "COUNT" => Some(AggFunc::Count),
        "AVG" => Some(AggFunc::Avg),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_statement("CREATE TABLE Keywords (text TEXT, bid INT, roi FLOAT)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "Keywords".into(),
                columns: vec![
                    ("text".into(), ValueType::Text),
                    ("bid".into(), ValueType::Int),
                    ("roi".into(), ValueType::Float),
                ],
            }
        );
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_with_subquery() {
        let s = parse_statement(
            "UPDATE Keywords SET bid = bid + 1 \
             WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K ) AND relevance > 0",
        )
        .unwrap();
        match s {
            Statement::Update {
                sets, where_clause, ..
            } => {
                assert_eq!(sets.len(), 1);
                let w = where_clause.expect("where");
                // AND of (roi = subquery) and (relevance > 0).
                assert!(matches!(w, Expr::And(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elseif_endif() {
        let s = parse_statement(
            "IF a < b THEN UPDATE t SET x = 1; \
             ELSEIF a > b THEN UPDATE t SET x = 2; \
             ELSE UPDATE t SET x = 3; ENDIF",
        )
        .unwrap();
        match s {
            Statement::If { arms, else_block } => {
                assert_eq!(arms.len(), 2);
                assert!(else_block.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trigger_with_body() {
        let s = parse_statement(
            "CREATE TRIGGER bid AFTER INSERT ON Query { \
               UPDATE Bids SET value = 0; \
               UPDATE Bids SET value = 1 WHERE formula = 'Click'; \
             }",
        )
        .unwrap();
        match s {
            Statement::CreateTrigger { name, table, body } => {
                assert_eq!(name, "bid");
                assert_eq!(table, "Query");
                assert_eq!(body.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_star_and_aggregates() {
        let s = parse_statement("SELECT * FROM t WHERE a >= 2").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        let s = parse_statement("SELECT COUNT(*), SUM(bid), AVG(roi) FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 3);
                assert!(matches!(
                    sel.items[0],
                    SelectItem::Agg(AggFunc::Count, None)
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let s = parse_statement("SELECT a + b * 2 FROM t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr(Expr::Arith(_, ArithOp::Add, rhs)) => {
                    assert!(matches!(**rhs, Expr::Arith(_, ArithOp::Mul, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qualified_columns_and_alias() {
        let s = parse_statement("SELECT K.bid FROM Keywords K WHERE K.relevance > 0.7").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.alias.as_deref(), Some("K"));
                assert!(matches!(
                    &sel.items[0],
                    SelectItem::Expr(Expr::Column(ColumnRef { qualifier: Some(q), .. })) if q == "K"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_var_statement() {
        let s = parse_statement("SET amtSpent = amtSpent + 3").unwrap();
        assert!(matches!(s, Statement::SetVar { .. }));
    }

    #[test]
    fn parameters_positional_and_named() {
        let s = parse_statement("UPDATE t SET a = ?, b = :bee WHERE c = ?").unwrap();
        match s {
            Statement::Update {
                sets, where_clause, ..
            } => {
                assert_eq!(
                    sets[0].value,
                    Expr::Param(ParamRef::Positional(0)),
                    "first ? is index 0"
                );
                assert_eq!(sets[1].value, Expr::Param(ParamRef::Named("bee".into())));
                let w = where_clause.expect("where");
                assert!(matches!(
                    w,
                    Expr::Cmp(_, CmpOp::Eq, rhs) if *rhs == Expr::Param(ParamRef::Positional(1))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Parenthesised expressions.
        let deep = format!(
            "SELECT {}1{} FROM t",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        assert_eq!(
            parse_statement(&deep),
            Err(DbError::NestingTooDeep {
                limit: MAX_PARSE_DEPTH
            })
        );
        // NOT and unary-minus chains recurse without parentheses.
        let nots = format!("SELECT * FROM t WHERE {} a > 0", "NOT ".repeat(10_000));
        assert!(matches!(
            parse_statement(&nots),
            Err(DbError::NestingTooDeep { .. })
        ));
        let negs = format!("SELECT {}1 FROM t", "- ".repeat(10_000));
        assert!(matches!(
            parse_statement(&negs),
            Err(DbError::NestingTooDeep { .. })
        ));
        // Nested IF statements.
        let ifs = format!(
            "{} UPDATE t SET a = 1; {}",
            "IF 1 = 1 THEN ".repeat(10_000),
            "ENDIF; ".repeat(10_000)
        );
        assert!(matches!(
            parse_statement(&ifs),
            Err(DbError::NestingTooDeep { .. })
        ));
        // Nested scalar subqueries.
        let subs = format!(
            "SELECT {} MAX(a) {} FROM t",
            "( SELECT ".repeat(10_000),
            "FROM t )".repeat(10_000)
        );
        assert!(matches!(
            parse_statement(&subs),
            Err(DbError::NestingTooDeep { .. })
        ));
        // Reasonable nesting still parses.
        let ok = format!("SELECT {}1{} FROM t", "(".repeat(20), ")".repeat(20));
        assert!(parse_statement(&ok).is_ok());
    }

    #[test]
    fn errors() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement("CREATE").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("IF a THEN UPDATE t SET x = 1;").is_err()); // no ENDIF
        assert!(parse_statement("INSERT INTO t VALUES (1); SELECT * FROM t").is_err()); // two stmts
        assert!(parse_script("SELECT * FROM t; SELECT * FROM u").map(|v| v.len()) == Ok(2));
    }

    #[test]
    fn script_with_trailing_semicolons() {
        let script = parse_script(";;SELECT * FROM t;;;").unwrap();
        assert_eq!(script.len(), 1);
    }
}
