//! Section V load-driving over the wire: population, verification twins,
//! and latency reporting for the `ssa-load` binary and the bench driver.
//!
//! The helpers here mirror `ssa_bench`'s Section V conventions *exactly*
//! (builder seed `workload seed ^ 0xD1CE_D1CE`, `advertiser-{i}` names,
//! one per-click campaign per keyword at the workload-initial bid), so a
//! remote marketplace configured through [`market_config_for`] +
//! [`populate_remote`] is bit-for-bit the market the bench harness builds
//! in process — which is what lets [`local_twin`] act as the equivalence
//! oracle for wire-served auctions.

use std::time::Duration;

use ssa_bidlang::{Money, SlotId};
use ssa_core::{PricingScheme, ShardedMarketplace, WdMethod};
use ssa_workload::{SectionVConfig, SectionVWorkload};

use crate::client::{Client, NetError};
use crate::proto::MarketConfig;
use crate::server::build_market;

/// The bench harness's marketplace-seed convention: the builder is seeded
/// with the *workload* seed XOR this tag, so user-action randomness and
/// bid randomness stay decoupled.
pub const MARKET_SEED_TAG: u64 = 0xD1CE_D1CE;

/// The [`MarketConfig`] matching `ssa_bench`'s Section V marketplace for a
/// given workload: same slots/keywords, same derived seed, caller-chosen
/// method, pricing, shard count, and solver toggles.
pub fn market_config_for(
    config: &SectionVConfig,
    method: WdMethod,
    pricing: PricingScheme,
    shards: usize,
    pruned: bool,
) -> MarketConfig {
    MarketConfig {
        slots: config.num_slots as u64,
        keywords: config.num_keywords as u64,
        seed: config.seed ^ MARKET_SEED_TAG,
        method,
        pricing,
        shards: shards as u64,
        pruned,
        warm_start: true,
    }
}

/// Per-slot click probabilities of advertiser `i` under the workload's
/// click model.
fn click_probs_of(workload: &SectionVWorkload, advertiser: usize) -> Vec<f64> {
    (0..workload.config.num_slots)
        .map(|j| workload.clicks.p_click(advertiser, SlotId::from_index0(j)))
        .collect()
}

/// Registers the Section V population over the wire: one advertiser
/// (`advertiser-{i}`) and one per-click campaign per keyword, at the
/// workload-initial bid and click value — the same population
/// `ssa_bench`'s in-process builders register.
pub fn populate_remote(client: &mut Client, workload: &SectionVWorkload) -> Result<(), NetError> {
    for (i, bidder) in workload.bidders.iter().enumerate() {
        let advertiser = client.register_advertiser(&format!("advertiser-{i}"))?;
        let click_probs = click_probs_of(workload, i);
        for (keyword, &(value, bid, _)) in bidder.keywords.iter().enumerate() {
            client.add_campaign(
                advertiser,
                keyword,
                Money::from_cents(bid.max(0)),
                Money::from_cents(value),
                None,
                Some(click_probs.clone()),
            )?;
        }
    }
    Ok(())
}

/// Builds the in-process marketplace a remote server holds after
/// [`crate::proto::Request::Configure`]\(`config`\) + [`populate_remote`]:
/// the oracle for equivalence checks. Thanks to the keyword-local-RNG
/// guarantee, outcomes do not depend on `config.shards`, so the twin may
/// run any shard count.
pub fn local_twin(workload: &SectionVWorkload, config: &MarketConfig) -> ShardedMarketplace {
    let mut market = build_market(config).expect("twin configuration is valid");
    for (i, bidder) in workload.bidders.iter().enumerate() {
        let advertiser = market.register_advertiser(format!("advertiser-{i}"));
        let click_probs = click_probs_of(workload, i);
        for (keyword, &(value, bid, _)) in bidder.keywords.iter().enumerate() {
            market
                .add_campaign(
                    advertiser,
                    keyword,
                    ssa_core::marketplace::CampaignSpec::per_click(Money::from_cents(bid.max(0)))
                        .click_value(Money::from_cents(value))
                        .click_probs(click_probs.clone()),
                )
                .expect("Section V campaign is valid");
        }
    }
    market
}

/// Collects request latencies and reports percentiles.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one request's latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
    }

    /// Merges another recorder's samples in (per-worker recorders are
    /// folded into one before reporting).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) latency in milliseconds, by the
    /// nearest-rank method; 0 if empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[rank] as f64 / 1e3
    }

    /// Maximum latency in milliseconds; 0 if empty.
    pub fn max_ms(&self) -> f64 {
        self.samples_us.iter().copied().max().unwrap_or(0) as f64 / 1e3
    }

    /// Mean latency in milliseconds; 0 if empty.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.samples_us.iter().sum();
        sum as f64 / self.samples_us.len() as f64 / 1e3
    }
}

/// Aggregate outcome of an `ssa-load` run, serialisable as one JSON line
/// in the bench-report stream.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Advertisers in the Section V population.
    pub advertisers: usize,
    /// Keyword universe size.
    pub keywords: usize,
    /// Slots per page.
    pub slots: usize,
    /// Winner-determination method the server ran.
    pub method: WdMethod,
    /// Shard count the server ran.
    pub shards: usize,
    /// Workload seed.
    pub seed: u64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Queries answered successfully (excludes refused ones).
    pub queries: u64,
    /// Unmeasured warm-up queries.
    pub warmup: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Per-request latencies of the measured phase.
    pub latencies: LatencyRecorder,
    /// Requests refused with `Overloaded`.
    pub overloaded: u64,
    /// Logical cores available to the *client* process.
    pub cores: usize,
    /// Outcome of the bit-exactness check against the local twin:
    /// `Some(true)` verified, `Some(false)` mismatch, `None` not checked.
    pub verified: Option<bool>,
    /// Hostile stream shape the run drew its queries from (`--workload`),
    /// or `None` for the workload's own pre-drawn uniform stream.
    pub workload: Option<ssa_workload::WorkloadShape>,
}

impl LoadReport {
    /// Queries per second over the measured phase.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// One JSON object (stable keys, no dependencies) in the style of
    /// `ssa_bench::MethodRun::to_json`, tagged `"metric":"net_load"`.
    pub fn to_json(&self) -> String {
        let verified = match self.verified {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let workload = match self.workload {
            Some(shape) => format!("\"{shape}\""),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"metric\":\"net_load\",\"method\":\"{}\",\"advertisers\":{},",
                "\"keywords\":{},\"slots\":{},\"shards\":{},\"seed\":{},",
                "\"connections\":{},\"queries\":{},\"warmup\":{},",
                "\"elapsed_ms\":{:.3},\"qps\":{:.1},\"p50_ms\":{:.3},",
                "\"p99_ms\":{:.3},\"max_ms\":{:.3},\"mean_ms\":{:.3},",
                "\"overloaded\":{},\"cores\":{},\"verified\":{},",
                "\"workload\":{}}}"
            ),
            self.method,
            self.advertisers,
            self.keywords,
            self.slots,
            self.shards,
            self.seed,
            self.connections,
            self.queries,
            self.warmup,
            self.elapsed.as_secs_f64() * 1e3,
            self.qps(),
            self.latencies.quantile_ms(0.50),
            self.latencies.quantile_ms(0.99),
            self.latencies.max_ms(),
            self.latencies.mean_ms(),
            self.overloaded,
            self.cores,
            verified,
            workload,
        )
    }
}

/// Logical cores available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for us in [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10_000] {
            rec.record(Duration::from_micros(us));
        }
        assert_eq!(rec.quantile_ms(0.5), 5.0);
        assert_eq!(rec.quantile_ms(0.99), 10.0);
        assert_eq!(rec.max_ms(), 10.0);
        assert_eq!(rec.mean_ms(), 5.5);
        assert_eq!(LatencyRecorder::new().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn report_json_has_the_contract_fields() {
        let mut latencies = LatencyRecorder::new();
        latencies.record(Duration::from_micros(1500));
        let report = LoadReport {
            advertisers: 50,
            keywords: 10,
            slots: 15,
            method: WdMethod::Reduced,
            shards: 4,
            seed: 42,
            connections: 2,
            queries: 4096,
            warmup: 512,
            elapsed: Duration::from_millis(100),
            latencies,
            overloaded: 0,
            cores: available_cores(),
            verified: Some(true),
            workload: Some(ssa_workload::WorkloadShape::Zipf { s: 1.1 }),
        };
        let json = report.to_json();
        for key in [
            "\"metric\":\"net_load\"",
            "\"qps\":",
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"max_ms\":",
            "\"cores\":",
            "\"verified\":true",
            "\"method\":\"rh\"",
            "\"workload\":\"zipf:1.1\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
