//! Blocking client for the `ssa_net` protocol.
//!
//! [`Client`] wraps a [`TcpStream`] with the framing + proto layers and a
//! request-id counter. The typed wrappers ([`Client::serve`],
//! [`Client::add_campaign`], …) are strictly request/response; pipelining
//! callers (the load driver, the overload tests) use the split
//! [`Client::send_request`] / [`Client::read_response`] halves to keep
//! many requests in flight on one connection.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use ssa_bidlang::Money;
use ssa_core::marketplace::{AdvertiserHandle, AuctionResponse, CampaignId};
use ssa_core::UserAttrs;

use crate::frame::{read_frame, write_frame, FrameError, FrameKind, PROTO_VERSION};
use crate::proto::{
    BatchSummary, ErrorCode, MarketConfig, ProtoError, Request, Response, ServerStats,
};

/// Typed failure parsing a `--server <addr>` value: the flag is rejected
/// with a message, never a panic (contract-tested in `bench/tests/cli.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    raw: String,
}

impl std::fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid server address {:?} (expected host:port, e.g. 127.0.0.1:7878)",
            self.raw
        )
    }
}

impl std::error::Error for ParseAddrError {}

/// Parses a `host:port` server address, resolving host names; typed error
/// on anything unresolvable.
pub fn parse_addr(s: &str) -> Result<SocketAddr, ParseAddrError> {
    s.trim()
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .ok_or_else(|| ParseAddrError { raw: s.to_string() })
}

/// Everything that can go wrong talking to a server.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The peer sent bytes we could not decode.
    Proto(ProtoError),
    /// The connection closed where a response was expected.
    Disconnected,
    /// The server answered [`Response::Failed`].
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server refused a data-plane request under load.
    Overloaded {
        /// Server-suggested back-off, in milliseconds.
        retry_after_ms: u32,
    },
    /// The server answered with a response type the call did not expect.
    UnexpectedResponse(Response),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Proto(e) => write!(f, "protocol: {e}"),
            NetError::Disconnected => f.write_str("server disconnected mid-request"),
            NetError::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            NetError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            NetError::UnexpectedResponse(r) => write!(f, "unexpected response {r:?}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Proto(ProtoError::Frame(e))
    }
}

/// A blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 0 })
    }

    /// Sends a request frame without waiting for its response; returns the
    /// request id to correlate against [`Client::read_response`].
    /// Building block for pipelined clients.
    pub fn send_request(&mut self, request: &Request) -> Result<u64, NetError> {
        self.next_id += 1;
        let id = self.next_id;
        write_frame(&mut self.stream, FrameKind::Request, id, &request.encode())?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Reads the next response frame as `(request_id, response)`.
    pub fn read_response(&mut self) -> Result<(u64, Response), NetError> {
        let frame = read_frame(&mut self.stream)?.ok_or(NetError::Disconnected)?;
        if frame.kind != FrameKind::Response {
            return Err(NetError::Proto(ProtoError::UnknownTag {
                what: "frame kind (expected response)",
                tag: 0,
            }));
        }
        Ok((frame.request_id, Response::decode(&frame.payload)?))
    }

    /// One request, one response: the single-outstanding round trip every
    /// typed wrapper is built on. `Failed` and `Overloaded` become typed
    /// [`NetError`]s here so wrappers only see their success type.
    pub fn request(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.send_request(request)?;
        let (got_id, response) = self.read_response()?;
        if got_id != id {
            return Err(NetError::UnexpectedResponse(response));
        }
        match response {
            Response::Failed { code, message } => Err(NetError::Server { code, message }),
            Response::Overloaded { retry_after_ms } => Err(NetError::Overloaded { retry_after_ms }),
            other => Ok(other),
        }
    }

    /// Liveness probe; returns the server-assigned session id.
    pub fn ping(&mut self) -> Result<u64, NetError> {
        match self.request(&Request::Ping)? {
            Response::Pong {
                session,
                proto_version,
            } if proto_version == PROTO_VERSION => Ok(session),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Rebuilds the server's marketplace to `config`.
    pub fn configure(&mut self, config: &MarketConfig) -> Result<(), NetError> {
        match self.request(&Request::Configure(config.clone()))? {
            Response::Ack => Ok(()),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Runs one auction with no user attributes, returning the full
    /// in-process outcome type.
    pub fn serve(&mut self, keyword: usize) -> Result<AuctionResponse, NetError> {
        self.serve_with_attrs(keyword, UserAttrs::new())
    }

    /// Runs one auction for a query carrying typed user attributes
    /// (targeted campaigns only participate when their expression matches).
    pub fn serve_with_attrs(
        &mut self,
        keyword: usize,
        attrs: UserAttrs,
    ) -> Result<AuctionResponse, NetError> {
        match self.request(&Request::Serve {
            keyword: keyword as u64,
            attrs,
        })? {
            Response::Served(auction) => Ok(auction.to_response()),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Runs an attribute-free query stream in one server-side
    /// `serve_batch`.
    pub fn serve_batch(&mut self, keywords: &[usize]) -> Result<BatchSummary, NetError> {
        self.serve_batch_queries(
            keywords
                .iter()
                .map(|&kw| (kw, UserAttrs::new()))
                .collect::<Vec<_>>(),
        )
    }

    /// Runs a typed `(keyword, attributes)` query stream in one
    /// server-side `serve_batch`.
    pub fn serve_batch_queries(
        &mut self,
        queries: Vec<(usize, UserAttrs)>,
    ) -> Result<BatchSummary, NetError> {
        match self.request(&Request::ServeBatch {
            queries: queries
                .into_iter()
                .map(|(kw, attrs)| (kw as u64, attrs))
                .collect(),
        })? {
            Response::BatchServed(summary) => Ok(summary),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Registers an advertiser.
    pub fn register_advertiser(&mut self, name: &str) -> Result<AdvertiserHandle, NetError> {
        match self.request(&Request::RegisterAdvertiser {
            name: name.to_string(),
        })? {
            Response::AdvertiserRegistered { advertiser } => {
                Ok(AdvertiserHandle::from_index(advertiser as usize))
            }
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Opens an untargeted per-click campaign.
    #[allow(clippy::too_many_arguments)]
    pub fn add_campaign(
        &mut self,
        advertiser: AdvertiserHandle,
        keyword: usize,
        bid: Money,
        click_value: Money,
        roi_target: Option<f64>,
        click_probs: Option<Vec<f64>>,
    ) -> Result<CampaignId, NetError> {
        self.add_targeted_campaign(
            advertiser,
            keyword,
            bid,
            click_value,
            roi_target,
            click_probs,
            None,
        )
    }

    /// Opens a per-click campaign, optionally with a targeting expression
    /// source. A malformed or hostile source is rejected server-side with
    /// [`ErrorCode::InvalidTargeting`] and the campaign is not registered.
    #[allow(clippy::too_many_arguments)]
    pub fn add_targeted_campaign(
        &mut self,
        advertiser: AdvertiserHandle,
        keyword: usize,
        bid: Money,
        click_value: Money,
        roi_target: Option<f64>,
        click_probs: Option<Vec<f64>>,
        targeting: Option<String>,
    ) -> Result<CampaignId, NetError> {
        match self.request(&Request::AddCampaign {
            advertiser: advertiser.index() as u64,
            keyword: keyword as u64,
            bid_cents: bid.cents(),
            click_value_cents: click_value.cents(),
            roi_target,
            click_probs,
            targeting,
        })? {
            Response::CampaignAdded { keyword, index } => {
                Ok(CampaignId::from_parts(keyword as usize, index as usize))
            }
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Sets a per-click campaign's bid.
    pub fn update_bid(&mut self, id: CampaignId, bid: Money) -> Result<(), NetError> {
        self.expect_ack(&Request::UpdateBid {
            keyword: id.keyword() as u64,
            index: id.index() as u64,
            bid_cents: bid.cents(),
        })
    }

    /// Pauses a campaign.
    pub fn pause_campaign(&mut self, id: CampaignId) -> Result<(), NetError> {
        self.expect_ack(&Request::PauseCampaign {
            keyword: id.keyword() as u64,
            index: id.index() as u64,
        })
    }

    /// Resumes a paused campaign.
    pub fn resume_campaign(&mut self, id: CampaignId) -> Result<(), NetError> {
        self.expect_ack(&Request::ResumeCampaign {
            keyword: id.keyword() as u64,
            index: id.index() as u64,
        })
    }

    /// Sets or clears a campaign's ROI target.
    pub fn set_roi_target(&mut self, id: CampaignId, target: Option<f64>) -> Result<(), NetError> {
        self.expect_ack(&Request::SetRoiTarget {
            keyword: id.keyword() as u64,
            index: id.index() as u64,
            target,
        })
    }

    /// The highest effective bids on a keyword, descending.
    pub fn top_bids(
        &mut self,
        keyword: usize,
        limit: usize,
    ) -> Result<Vec<(CampaignId, Money)>, NetError> {
        match self.request(&Request::TopBids {
            keyword: keyword as u64,
            limit: limit as u64,
        })? {
            Response::TopBids { bids } => Ok(bids
                .into_iter()
                .map(|(kw, idx, cents)| {
                    (
                        CampaignId::from_parts(kw as usize, idx as usize),
                        Money::from_cents(cents),
                    )
                })
                .collect()),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Server + marketplace counters.
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        self.expect_ack(&Request::Shutdown)
    }

    fn expect_ack(&mut self, request: &Request) -> Result<(), NetError> {
        match self.request(request)? {
            Response::Ack => Ok(()),
            other => Err(NetError::UnexpectedResponse(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_addr_accepts_socket_addrs_and_rejects_garbage() {
        assert_eq!(
            parse_addr("127.0.0.1:7878"),
            Ok("127.0.0.1:7878".parse().unwrap())
        );
        assert_eq!(parse_addr(" 127.0.0.1:0 ").unwrap().port(), 0);
        for bad in ["", "not an addr", "127.0.0.1", "host:notaport"] {
            let err = parse_addr(bad).expect_err(bad);
            assert!(err.to_string().contains("invalid server address"), "{err}");
        }
    }
}
