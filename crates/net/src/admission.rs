//! Bounded per-shard admission control for the data plane.
//!
//! Every data-plane request ([`crate::proto::Request::Serve`],
//! [`crate::proto::Request::ServeBatch`]) must win a slot in its keyword's
//! shard lane before it may enter the executor queue; the slot is held —
//! via an RAII [`Ticket`] — until the request has *finished executing*,
//! so the bound covers queued **and** in-flight work. A full lane refuses
//! the request immediately with
//! [`crate::proto::Response::Overloaded`] instead of buffering without
//! limit: the client gets typed backpressure and a retry hint, the server
//! keeps its memory bounded.
//!
//! Control-plane requests bypass admission entirely — a drowning data
//! plane must never lock an operator out of `Stats`, bid updates, or
//! graceful shutdown.
//!
//! Shards map onto a fixed array of [`LANES`] counters
//! (`shard % LANES`), so the structure never reallocates when
//! [`crate::proto::Request::Configure`] changes the shard count
//! mid-flight.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of admission lanes; shards map onto lanes by `shard % LANES`.
pub const LANES: usize = 64;

/// Bounded admission state shared by all connection reader threads.
#[derive(Debug)]
pub struct Admission {
    lanes: Vec<AtomicUsize>,
    per_lane: usize,
    retry_after_ms: u32,
    overloaded: AtomicU64,
}

impl Admission {
    /// Creates admission control allowing `per_lane` queued-or-in-flight
    /// data requests per lane, advising refused clients to retry after
    /// `retry_after_ms`.
    pub fn new(per_lane: usize, retry_after_ms: u32) -> Arc<Self> {
        Arc::new(Admission {
            lanes: (0..LANES).map(|_| AtomicUsize::new(0)).collect(),
            per_lane: per_lane.max(1),
            retry_after_ms,
            overloaded: AtomicU64::new(0),
        })
    }

    /// The back-off hint sent with every `Overloaded` response.
    pub fn retry_after_ms(&self) -> u32 {
        self.retry_after_ms
    }

    /// Total data-plane requests refused so far.
    pub fn overloaded_count(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Attempts to occupy one slot in `lane`; `None` (and a bumped
    /// overload counter) if the lane is at capacity.
    fn try_enter(&self, lane: usize) -> bool {
        let counter = &self.lanes[lane % LANES];
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            if current >= self.per_lane {
                return false;
            }
            match counter.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    fn leave(&self, lane: usize) {
        self.lanes[lane % LANES].fetch_sub(1, Ordering::AcqRel);
    }

    /// Admits a single-shard request: a slot in the shard's lane, or
    /// `None` if full.
    pub fn try_admit(self: &Arc<Self>, shard: usize) -> Option<Ticket> {
        self.try_admit_shards(std::iter::once(shard))
    }

    /// Admits a request touching several shards (a mixed-keyword
    /// `ServeBatch`): all-or-nothing — either every distinct lane yields a
    /// slot or none is taken and the request is refused.
    pub fn try_admit_shards(
        self: &Arc<Self>,
        shards: impl IntoIterator<Item = usize>,
    ) -> Option<Ticket> {
        let mut lanes: Vec<usize> = shards.into_iter().map(|s| s % LANES).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let mut taken = Vec::with_capacity(lanes.len());
        for &lane in &lanes {
            if self.try_enter(lane) {
                taken.push(lane);
            } else {
                for &t in &taken {
                    self.leave(t);
                }
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        Some(Ticket {
            admission: Arc::clone(self),
            lanes: taken,
        })
    }

    /// Current occupancy of a shard's lane (tests and stats only).
    pub fn occupancy(&self, shard: usize) -> usize {
        self.lanes[shard % LANES].load(Ordering::Relaxed)
    }
}

/// An admitted request's hold on its lanes; dropping it — after the
/// request executed, or on any error path — releases the slots.
#[derive(Debug)]
pub struct Ticket {
    admission: Arc<Admission>,
    lanes: Vec<usize>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        for &lane in &self.lanes {
            self.admission.leave(lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_capacity_is_enforced() {
        let adm = Admission::new(2, 5);
        let t1 = adm.try_admit(0).expect("slot 1");
        let _t2 = adm.try_admit(0).expect("slot 2");
        assert!(adm.try_admit(0).is_none(), "lane full");
        assert_eq!(adm.overloaded_count(), 1);
        // Other lanes are unaffected.
        assert!(adm.try_admit(1).is_some());
        // Releasing a ticket frees the slot.
        drop(t1);
        assert!(adm.try_admit(0).is_some());
    }

    #[test]
    fn multi_shard_admission_is_all_or_nothing() {
        let adm = Admission::new(1, 5);
        let _t = adm.try_admit(3).expect("slot");
        // A batch touching lanes {2, 3} must take neither.
        assert!(adm.try_admit_shards([2, 3]).is_none());
        assert_eq!(adm.occupancy(2), 0, "partial admission leaked a slot");
        assert_eq!(adm.overloaded_count(), 1);
        // Duplicate shards count once.
        let t = adm.try_admit_shards([2, 2, 2]).expect("one lane, one slot");
        assert_eq!(adm.occupancy(2), 1);
        drop(t);
        assert_eq!(adm.occupancy(2), 0);
    }
}
