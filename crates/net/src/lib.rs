//! # ssa-net — the TCP serving front-end
//!
//! The marketplace behind a real network boundary: a `std::net` server
//! (no async runtime) speaking a hand-rolled, length-prefixed, versioned
//! wire protocol, with per-connection sessions, bounded per-shard
//! admission, typed overload responses, and graceful drain on shutdown.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — `[len][version][kind][request id][payload]` framing with
//!   a max-frame limit and typed [`frame::FrameError`]s; hostile length
//!   prefixes are rejected before any allocation.
//! * [`proto`] — typed [`proto::Request`]/[`proto::Response`] messages
//!   over a little-endian binary payload encoding; `f64` travels as raw
//!   bits so revenue aggregates stay bit-exact across the wire. Decode
//!   failures are typed [`proto::ProtoError`]s, never panics.
//! * [`admission`] — bounded per-shard lanes for the data plane; a full
//!   lane answers [`proto::Response::Overloaded`] with a retry hint
//!   instead of queueing without bound.
//! * [`session`] — per-connection identity, counters, and the read-side
//!   half-close that drives graceful drain.
//! * [`server`] — accept loop, per-connection reader/writer threads, and
//!   the single executor thread that owns the
//!   [`ssa_core::ShardedMarketplace`].
//! * [`client`] — a blocking typed client, usable single-outstanding or
//!   pipelined.
//! * [`load`] — Section V population and replay helpers shared by the
//!   `ssa-load` binary, the bench driver's `--server` path, and the
//!   equivalence tests; latency recording with p50/p99 reporting.
//!
//! The serving contract: a seeded Section V stream served over a socket
//! produces **bit-identical** winners, clicks, and charges to the same
//! stream served in process through `ShardedMarketplace::serve_batch`
//! (proven in `tests/server_equivalence.rs`).
//!
//! # Quickstart
//!
//! ```
//! use ssa_net::client::Client;
//! use ssa_net::proto::MarketConfig;
//! use ssa_net::server::{Server, ServerConfig};
//! use ssa_core::{Marketplace, PricingScheme, WdMethod};
//! use ssa_bidlang::Money;
//!
//! let market = Marketplace::builder()
//!     .slots(2)
//!     .keywords(4)
//!     .seed(7)
//!     .default_click_probs(vec![0.6, 0.3])
//!     .build_sharded(2)
//!     .expect("valid configuration");
//! let server = Server::bind("127.0.0.1:0", market, ServerConfig::default())
//!     .expect("bind")
//!     .spawn();
//!
//! let mut client = Client::connect(server.addr()).expect("connect");
//! let advertiser = client.register_advertiser("shoes.example").expect("register");
//! client
//!     .add_campaign(advertiser, 1, Money::from_cents(20), Money::from_cents(50), None, None)
//!     .expect("campaign accepted");
//! let auction = client.serve(1).expect("auction served");
//! assert_eq!(auction.keyword, 1);
//!
//! client.shutdown_server().expect("graceful shutdown");
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod load;
pub mod proto;
pub mod server;
pub mod session;

pub use admission::Admission;
pub use client::{parse_addr, Client, NetError, ParseAddrError};
pub use frame::{FrameError, FrameKind, RawFrame, MAX_FRAME, PROTO_VERSION};
pub use load::{
    available_cores, local_twin, market_config_for, populate_remote, LatencyRecorder, LoadReport,
};
pub use proto::{
    BatchSummary, ErrorCode, MarketConfig, ProtoError, Request, Response, ServerStats, WireAuction,
    WirePlacement,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{Session, SessionRegistry};
