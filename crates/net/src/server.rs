//! The TCP serving front-end: accept loop, per-connection reader/writer
//! threads, and the single executor thread that owns the marketplace.
//!
//! # Threading model
//!
//! * **One executor thread** owns the
//!   [`ShardedMarketplace`] outright — no locks on
//!   market state; requests are serialised through an [`mpsc`] channel and
//!   executed in submission order. (`serve_batch` still fans out across
//!   shard worker threads *inside* a request, so multi-core throughput
//!   comes from batching, exactly as in-process callers get it.)
//! * **Per connection**: a reader thread (decode → admit → submit) and a
//!   writer thread (encode → write), joined by a per-connection response
//!   channel. Responses to pipelined requests come back in execution
//!   order, each carrying its request id.
//! * **Backpressure**: data-plane requests take a bounded
//!   [`crate::admission`] slot per involved shard before entering the
//!   executor queue and hold it until execution finishes; a full lane is
//!   answered immediately with [`Response::Overloaded`] — the request is
//!   never queued.
//!
//! # Graceful shutdown
//!
//! [`Request::Shutdown`] (or [`ServerHandle::shutdown`]) flips the
//! shutdown flag, half-closes the read side of every live connection
//! ([`crate::session::SessionRegistry::shutdown_reads`]), and nudges the
//! accept loop awake. Readers see EOF and stop submitting; jobs already
//! queued drain through the executor (an [`mpsc`] channel delivers
//! everything buffered before reporting disconnection); writers flush the
//! responses; then the threads unwind. In-flight requests are *completed*,
//! never dropped.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use ssa_bidlang::Money;
use ssa_core::marketplace::{AdvertiserHandle, CampaignSpec, Marketplace, QueryRequest};
use ssa_core::{shard_of_keyword, ShardedMarketplace};

use crate::admission::{Admission, Ticket};
use crate::frame::{read_frame, write_frame, FrameKind, PROTO_VERSION};
use crate::proto::{
    campaign_of, keyword_of, BatchSummary, ErrorCode, MarketConfig, Request, Response, ServerStats,
    WireAuction,
};
use crate::session::{Session, SessionRegistry};
use ssa_durable::Durability;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queued-or-in-flight data-plane requests allowed per shard lane
    /// before new ones are refused with [`Response::Overloaded`].
    pub admission_per_shard: usize,
    /// Back-off hint, in milliseconds, attached to every `Overloaded`.
    pub retry_after_ms: u32,
    /// Fault injection for tests: sleep this long in the executor before
    /// running each *data-plane* job, so admission lanes can be saturated
    /// deterministically. `None` (the default) adds no delay.
    pub executor_delay: Option<Duration>,
    /// Write-ahead log to journal the marketplace through. The caller
    /// opens it (recovering any prior state into the `market` passed to
    /// [`Server::bind`]) and must already have logged the configure
    /// record for a freshly built marketplace; `bind` attaches the
    /// journal and the executor snapshots on the durability handle's
    /// cadence between requests. `None` serves memory-only.
    pub durability: Option<Durability>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission_per_shard: 256,
            retry_after_ms: 10,
            executor_delay: None,
            durability: None,
        }
    }
}

/// One unit of executor work: a decoded request plus everything needed to
/// answer it. The admission ticket rides along so its lane slots are
/// released only when execution has finished.
struct Job {
    request_id: u64,
    session: Arc<Session>,
    request: Request,
    reply: mpsc::Sender<(u64, Response)>,
    _ticket: Option<Ticket>,
}

/// State shared by the accept loop, connection threads, and executor.
struct Shared {
    local_addr: SocketAddr,
    sessions: Arc<SessionRegistry>,
    admission: Arc<Admission>,
    shutdown: AtomicBool,
    /// Shard count of the *current* marketplace; connection readers route
    /// admission through it, the executor updates it on `Configure`.
    num_shards: AtomicUsize,
    /// Requests executed (any plane). Refused requests are counted by
    /// [`Admission::overloaded_count`] instead.
    requests: AtomicU64,
    executor_delay: Option<Duration>,
    durability: Option<Durability>,
}

impl Shared {
    fn shards_of_request(&self, request: &Request) -> Option<Vec<usize>> {
        let num_shards = self.num_shards.load(Ordering::Relaxed);
        match request {
            Request::Serve { keyword, .. } => {
                Some(vec![shard_of_keyword(keyword_of(*keyword), num_shards)])
            }
            Request::ServeBatch { queries } => Some(
                queries
                    .iter()
                    .map(|(kw, _)| shard_of_keyword(keyword_of(*kw), num_shards))
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// A bound, not-yet-running server; obtained from [`Server::bind`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: mpsc::Sender<Job>,
    executor: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds the listener and starts the executor thread that owns
    /// `market`. The server does not accept connections until
    /// [`Server::run`] (or [`Server::spawn`]) is called.
    pub fn bind(
        addr: impl ToSocketAddrs,
        mut market: ShardedMarketplace,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        if let Some(durability) = &config.durability {
            market.set_journal(durability.journal());
        }
        let shared = Arc::new(Shared {
            local_addr: listener.local_addr()?,
            sessions: SessionRegistry::new(),
            admission: Admission::new(config.admission_per_shard, config.retry_after_ms),
            shutdown: AtomicBool::new(false),
            num_shards: AtomicUsize::new(market.num_shards()),
            requests: AtomicU64::new(0),
            executor_delay: config.executor_delay,
            durability: config.durability,
        });
        let (jobs, job_rx) = mpsc::channel::<Job>();
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(market, job_rx, &shared))
        };
        Ok(Server {
            listener,
            shared,
            jobs,
            executor,
        })
    }

    /// The address the listener actually bound (resolves `:0` port
    /// requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Runs the accept loop on the calling thread until graceful shutdown,
    /// then drains the executor and returns.
    pub fn run(self) {
        let Server {
            listener,
            shared,
            jobs,
            executor,
        } = self;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Ok(session) = shared.sessions.register(&stream) else {
                continue;
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                // This accept raced with graceful shutdown: the drain
                // pass may have run before this session was registered,
                // so half-close the registry again (idempotent) to make
                // sure this reader sees EOF too.
                shared.sessions.shutdown_reads();
            }
            let shared = Arc::clone(&shared);
            let jobs = jobs.clone();
            connections.retain(|handle| !handle.is_finished());
            connections.push(std::thread::spawn(move || {
                serve_connection(stream, session, shared, jobs)
            }));
        }
        // Dropping the accept loop's job sender lets the executor's
        // receive loop end once every connection reader has exited and
        // released its clone; buffered jobs drain first.
        drop(jobs);
        let _ = executor.join();
        // The drain contract: every response for admitted work reaches
        // the wire before the server reports itself stopped. Each reader
        // joins its paired writer, so joining the connection threads
        // flushes the final replies (the shutdown Ack included).
        for handle in connections {
            let _ = handle.join();
        }
    }

    /// Runs the accept loop on a new thread, returning a handle for
    /// clients in the same process (tests, examples, the bench driver).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread,
        }
    }
}

/// A running server spawned on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown without a client connection: flips the
    /// flag, half-closes live sessions, and wakes the accept loop.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Waits for the server to finish draining and exit.
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Flips the shutdown flag, EOFs every live reader, and nudges the accept
/// loop so it observes the flag. Idempotent.
fn begin_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.sessions.shutdown_reads();
    // The accept loop is parked in `accept`; a throwaway connection wakes
    // it to check the flag.
    let _ = TcpStream::connect(shared.local_addr);
}

/// Per-connection reader: decode frames, admit data-plane work, submit
/// jobs; plus the paired writer thread that serialises responses back out.
fn serve_connection(
    stream: TcpStream,
    session: Arc<Session>,
    shared: Arc<Shared>,
    jobs: mpsc::Sender<Job>,
) {
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let writer = {
        let mut stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                shared.sessions.unregister(session.id);
                return;
            }
        };
        std::thread::spawn(move || {
            while let Ok((request_id, response)) = reply_rx.recv() {
                if write_frame(
                    &mut stream,
                    FrameKind::Response,
                    request_id,
                    &response.encode(),
                )
                .is_err()
                {
                    break;
                }
                let _ = stream.flush();
            }
        })
    };

    let mut reader = stream;
    // Clean EOF, mid-frame truncation, or transport error all end the
    // loop: there is nothing further to decode on this connection.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        if frame.kind != FrameKind::Request {
            // A response frame sent *to* a server is a peer bug; drop the
            // connection rather than guess.
            break;
        }
        session.note_request();
        let request = match Request::decode(&frame.payload) {
            Ok(request) => request,
            Err(e) => {
                // Well-framed but undecodable payload: answer with a typed
                // failure (the request id is known) and keep the
                // connection — the peer may just be newer than us.
                let _ = reply_tx.send((
                    frame.request_id,
                    Response::Failed {
                        code: ErrorCode::Unsupported,
                        message: e.to_string(),
                    },
                ));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = reply_tx.send((
                frame.request_id,
                Response::Failed {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".into(),
                },
            ));
            continue;
        }
        let ticket = match shared.shards_of_request(&request) {
            Some(shards) => match shared.admission.try_admit_shards(shards) {
                Some(ticket) => Some(ticket),
                None => {
                    let _ = reply_tx.send((
                        frame.request_id,
                        Response::Overloaded {
                            retry_after_ms: shared.admission.retry_after_ms(),
                        },
                    ));
                    continue;
                }
            },
            None => None,
        };
        if jobs
            .send(Job {
                request_id: frame.request_id,
                session: Arc::clone(&session),
                request,
                reply: reply_tx.clone(),
                _ticket: ticket,
            })
            .is_err()
        {
            break;
        }
    }
    shared.sessions.unregister(session.id);
    // Drop our reply sender; the writer exits once the executor has
    // answered (or dropped) every job this connection submitted.
    drop(reply_tx);
    drop(jobs);
    let _ = writer.join();
}

/// The executor: single owner of the marketplace, draining the job queue
/// in submission order until every sender is gone.
fn executor_loop(mut market: ShardedMarketplace, jobs: mpsc::Receiver<Job>, shared: &Shared) {
    while let Ok(job) = jobs.recv() {
        if let (Some(delay), true) = (shared.executor_delay, job.request.is_data_plane()) {
            std::thread::sleep(delay);
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let response = execute(&mut market, &job, shared);
        if let Some(durability) = &shared.durability {
            // Snapshotting needs `&market` while the journal half of the
            // handle lives inside it, so the trigger sits here — on the
            // thread that owns the marketplace, between requests.
            if let Err(e) = durability.maybe_snapshot(&market) {
                eprintln!("ssa-server: snapshot failed (log continues): {e}");
            }
        }
        let _ = job.reply.send((job.request_id, response));
        // `job` (and its admission ticket) drops here: the lane slot is
        // released only after the request fully executed.
    }
}

fn execute(market: &mut ShardedMarketplace, job: &Job, shared: &Shared) -> Response {
    match &job.request {
        Request::Ping => Response::Pong {
            session: job.session.id,
            proto_version: PROTO_VERSION,
        },
        Request::Serve { keyword, attrs } => {
            match market.serve(QueryRequest::with_attrs(
                keyword_of(*keyword),
                attrs.clone(),
            )) {
                Ok(auction) => Response::Served(WireAuction::from(&auction)),
                Err(e) => failed(&e),
            }
        }
        Request::ServeBatch { queries } => {
            let requests: Vec<QueryRequest> = queries
                .iter()
                .map(|(kw, attrs)| QueryRequest::with_attrs(keyword_of(*kw), attrs.clone()))
                .collect();
            match market.serve_batch(&requests) {
                Ok(report) => Response::BatchServed(BatchSummary::from_report(&report)),
                Err(e) => failed(&e),
            }
        }
        Request::RegisterAdvertiser { name } => Response::AdvertiserRegistered {
            advertiser: market.register_advertiser(name.clone()).index() as u64,
        },
        Request::AddCampaign {
            advertiser,
            keyword,
            bid_cents,
            click_value_cents,
            roi_target,
            click_probs,
            targeting,
        } => {
            let mut spec = CampaignSpec::per_click(Money::from_cents(*bid_cents))
                .click_value(Money::from_cents(*click_value_cents));
            if let Some(target) = roi_target {
                spec = spec.roi_target(*target);
            }
            if let Some(probs) = click_probs {
                spec = spec.click_probs(probs.clone());
            }
            if let Some(source) = targeting {
                spec = spec.targeting(source.clone());
            }
            match market.add_campaign(
                AdvertiserHandle::from_index(*advertiser as usize),
                keyword_of(*keyword),
                spec,
            ) {
                Ok(id) => Response::CampaignAdded {
                    keyword: id.keyword() as u64,
                    index: id.index() as u64,
                },
                Err(e) => failed(&e),
            }
        }
        Request::UpdateBid {
            keyword,
            index,
            bid_cents,
        } => ack_or_fail(
            market.update_bid(campaign_of(*keyword, *index), Money::from_cents(*bid_cents)),
        ),
        Request::PauseCampaign { keyword, index } => {
            ack_or_fail(market.pause_campaign(campaign_of(*keyword, *index)))
        }
        Request::ResumeCampaign { keyword, index } => {
            ack_or_fail(market.resume_campaign(campaign_of(*keyword, *index)))
        }
        Request::SetRoiTarget {
            keyword,
            index,
            target,
        } => ack_or_fail(market.set_roi_target(campaign_of(*keyword, *index), *target)),
        Request::TopBids { keyword, limit } => {
            match market.top_bids(keyword_of(*keyword), *limit as usize) {
                Ok(bids) => Response::TopBids {
                    bids: bids
                        .into_iter()
                        .map(|(id, m)| (id.keyword() as u64, id.index() as u64, m.cents()))
                        .collect(),
                },
                Err(e) => failed(&e),
            }
        }
        Request::Stats => {
            let snapshot = market.snapshot();
            Response::Stats(ServerStats {
                advertisers: snapshot.advertisers as u64,
                campaigns: snapshot.campaigns as u64,
                keywords: snapshot.keywords as u64,
                slots: snapshot.slots as u64,
                shards: snapshot.shards as u64,
                auctions: snapshot.auctions,
                sessions: shared.sessions.total_count(),
                requests: shared.requests.load(Ordering::Relaxed),
                overloaded: shared.admission.overloaded_count(),
                wal_records: shared
                    .durability
                    .as_ref()
                    .map_or(0, |durability| durability.wal_records()),
                snapshot_seq: shared
                    .durability
                    .as_ref()
                    .map_or(0, |durability| durability.snapshot_seq()),
            })
        }
        Request::Configure(config) => match build_market(config) {
            Ok(mut new_market) => {
                if let Some(durability) = &shared.durability {
                    let state = new_market
                        .capture_state()
                        .expect("a freshly built marketplace is always journalable");
                    if let Err(e) = durability.log_configure(&state.config) {
                        // Same contract as the journal: an unloggable
                        // reconfiguration must not be acknowledged.
                        panic!("write-ahead log append failed: {e}");
                    }
                    if let Some(journal) = market.take_journal() {
                        new_market.set_journal(journal);
                    }
                }
                shared
                    .num_shards
                    .store(new_market.num_shards(), Ordering::Relaxed);
                *market = new_market;
                Response::Ack
            }
            Err(e) => Response::Failed {
                code: ErrorCode::InvalidConfig,
                message: e.to_string(),
            },
        },
        Request::Shutdown => {
            begin_shutdown(shared);
            Response::Ack
        }
    }
}

/// Builds the marketplace a [`Request::Configure`] describes.
pub fn build_market(config: &MarketConfig) -> Result<ShardedMarketplace, ssa_core::MarketError> {
    Marketplace::builder()
        .slots(config.slots as usize)
        .keywords(config.keywords as usize)
        .seed(config.seed)
        .method(config.method)
        .pricing(config.pricing)
        .pruned(config.pruned)
        .warm_start(config.warm_start)
        .build_sharded(config.shards as usize)
}

fn failed(e: &ssa_core::MarketError) -> Response {
    Response::Failed {
        code: ErrorCode::from(e),
        message: e.to_string(),
    }
}

fn ack_or_fail(result: Result<(), ssa_core::MarketError>) -> Response {
    match result {
        Ok(()) => Response::Ack,
        Err(e) => failed(&e),
    }
}
