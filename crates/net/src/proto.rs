//! Typed wire messages and their binary payload encoding.
//!
//! The protocol splits a **data plane** ([`Request::Serve`],
//! [`Request::ServeBatch`]) from a **control plane** (advertiser and
//! campaign management, [`Request::Stats`], [`Request::Configure`]): data
//! requests pass through bounded per-shard admission
//! ([`crate::admission`]) and may be refused with
//! [`Response::Overloaded`], while control requests always queue.
//!
//! Payloads are hand-rolled little-endian binary: fixed-width integers,
//! `f64` via [`f64::to_bits`] (so expected-revenue values survive the wire
//! *bit-exactly* — the server↔in-process equivalence tests depend on it),
//! `u32`-length-prefixed UTF-8 strings, and `u32`-counted vectors. Every
//! decode error is a typed [`ProtoError`]; hostile payloads (truncated,
//! trailing garbage, absurd counts) must never panic or over-allocate —
//! claimed element counts are validated against the bytes actually present
//! before any buffer is reserved.

use crate::frame::FrameError;
use ssa_bidlang::{Money, SlotId};
use ssa_core::marketplace::{
    AdvertiserHandle, AuctionResponse, CampaignId, MarketBatchReport, MarketError, Placement,
};
use ssa_core::{AttrValue, PricingScheme, UserAttrs, WdMethod};

/// Typed payload decode failure. Like [`FrameError`], carrying only
/// `Clone + PartialEq` data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the named field.
    Truncated {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no meaning.
    UnknownTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Bytes remained after a complete message.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A count or length field exceeded what the payload could possibly
    /// hold; rejected before allocating.
    Oversized {
        /// Which field was being decoded.
        what: &'static str,
        /// The claimed count.
        len: u64,
    },
    /// The enclosing frame was itself malformed.
    Frame(FrameError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { what } => write!(f, "payload truncated decoding {what}"),
            ProtoError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            ProtoError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtoError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            ProtoError::Oversized { what, len } => {
                write!(
                    f,
                    "{what} claims {len} elements, more than the payload holds"
                )
            }
            ProtoError::Frame(e) => write!(f, "framing: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        ProtoError::Frame(e)
    }
}

// ---------------------------------------------------------------------------
// Reader / writer primitives.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() < n {
            return Err(ProtoError::Truncated { what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ProtoError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ProtoError::UnknownTag { what, tag }),
        }
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self, what: &'static str) -> Result<i64, ProtoError> {
        Ok(self.u64(what)? as i64)
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// An element count, validated against the bytes still present: a
    /// hostile count cannot reserve more memory than the payload it rode
    /// in on could justify.
    fn count(&mut self, what: &'static str, min_elem_size: usize) -> Result<usize, ProtoError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.buf.len() {
            return Err(ProtoError::Oversized {
                what,
                len: n as u64,
            });
        }
        Ok(n)
    }

    fn string(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let n = self.count(what, 1)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::InvalidUtf8)
    }

    fn option<T>(
        &mut self,
        what: &'static str,
        read: impl FnOnce(&mut Self) -> Result<T, ProtoError>,
    ) -> Result<Option<T>, ProtoError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            tag => Err(ProtoError::UnknownTag { what, tag }),
        }
    }

    fn f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, ProtoError> {
        let n = self.count(what, 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }

    /// A typed attribute bag: a count, then `key → value` entries (value
    /// tag 0 = integer, 1 = string). Minimum entry size is the key length
    /// prefix (4) + value tag (1) + string length prefix (4).
    fn attrs(&mut self, what: &'static str) -> Result<UserAttrs, ProtoError> {
        let n = self.count(what, 9)?;
        (0..n)
            .map(|_| {
                let key = self.string(what)?;
                let value = match self.u8(what)? {
                    0 => AttrValue::Int(self.i64(what)?),
                    1 => AttrValue::Str(self.string(what)?),
                    tag => return Err(ProtoError::UnknownTag { what, tag }),
                };
                Ok((key, value))
            })
            .collect()
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Trailing {
                extra: self.buf.len(),
            })
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, v as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_option<T>(buf: &mut Vec<u8>, v: &Option<T>, write: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => buf.push(0),
        Some(inner) => {
            buf.push(1);
            write(buf, inner);
        }
    }
}

fn put_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for x in v {
        put_f64(buf, *x);
    }
}

fn put_attrs(buf: &mut Vec<u8>, attrs: &UserAttrs) {
    put_u32(buf, attrs.len() as u32);
    for (key, value) in attrs.iter() {
        put_string(buf, key);
        match value {
            AttrValue::Int(v) => {
                buf.push(0);
                put_i64(buf, *v);
            }
            AttrValue::Str(s) => {
                buf.push(1);
                put_string(buf, s);
            }
        }
    }
}

fn read_method(r: &mut Reader<'_>) -> Result<WdMethod, ProtoError> {
    match r.u8("method")? {
        0 => Ok(WdMethod::Lp),
        1 => Ok(WdMethod::Hungarian),
        2 => Ok(WdMethod::Reduced),
        3 => Ok(WdMethod::ReducedParallel(r.u32("method threads")? as usize)),
        tag => Err(ProtoError::UnknownTag {
            what: "method",
            tag,
        }),
    }
}

fn put_method(buf: &mut Vec<u8>, m: WdMethod) {
    match m {
        WdMethod::Lp => buf.push(0),
        WdMethod::Hungarian => buf.push(1),
        WdMethod::Reduced => buf.push(2),
        WdMethod::ReducedParallel(threads) => {
            buf.push(3);
            put_u32(buf, threads as u32);
        }
    }
}

fn read_pricing(r: &mut Reader<'_>) -> Result<PricingScheme, ProtoError> {
    match r.u8("pricing")? {
        0 => Ok(PricingScheme::PayYourBid),
        1 => Ok(PricingScheme::Gsp),
        2 => Ok(PricingScheme::Vickrey),
        tag => Err(ProtoError::UnknownTag {
            what: "pricing",
            tag,
        }),
    }
}

fn put_pricing(buf: &mut Vec<u8>, p: PricingScheme) {
    buf.push(match p {
        PricingScheme::PayYourBid => 0,
        PricingScheme::Gsp => 1,
        PricingScheme::Vickrey => 2,
    });
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// Marketplace configuration carried by [`Request::Configure`]: the server
/// tears down its marketplace and rebuilds it to this shape, so a client
/// (the load driver, the equivalence tests) fully controls the market it
/// measures.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Ad slots per results page.
    pub slots: u64,
    /// Size of the keyword universe.
    pub keywords: u64,
    /// Marketplace RNG seed (keyword-local streams derive from it).
    pub seed: u64,
    /// Winner-determination method.
    pub method: WdMethod,
    /// Pricing rule.
    pub pricing: PricingScheme,
    /// Shard count for the rebuilt [`ssa_core::ShardedMarketplace`].
    pub shards: u64,
    /// Top-k pruned winner determination.
    pub pruned: bool,
    /// Warm-started assignments.
    pub warm_start: bool,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness + session probe; answered with [`Response::Pong`].
    Ping,
    /// Data plane: run one auction on a keyword.
    Serve {
        /// Keyword index.
        keyword: u64,
        /// Typed user attributes the query carries (empty when the client
        /// has none — the common case; targeting then sees no match for
        /// any comparison).
        attrs: UserAttrs,
    },
    /// Data plane: run a mixed-keyword query stream through
    /// [`ssa_core::ShardedMarketplace::serve_batch`].
    ServeBatch {
        /// One `(keyword, user attributes)` pair per query, in stream
        /// order.
        queries: Vec<(u64, UserAttrs)>,
    },
    /// Control plane: register an advertiser.
    RegisterAdvertiser {
        /// Display name.
        name: String,
    },
    /// Control plane: open a per-click campaign.
    AddCampaign {
        /// Advertiser handle index (from
        /// [`Response::AdvertiserRegistered`]).
        advertiser: u64,
        /// Keyword the campaign bids on.
        keyword: u64,
        /// Initial bid, in cents.
        bid_cents: i64,
        /// Value the advertiser attaches to a click, in cents.
        click_value_cents: i64,
        /// Optional ROI target (Section II-C).
        roi_target: Option<f64>,
        /// Optional per-slot click probabilities.
        click_probs: Option<Vec<f64>>,
        /// Optional targeting expression source; the server parses and
        /// compiles it at registration and answers
        /// [`ErrorCode::InvalidTargeting`] if it is malformed or too deep.
        targeting: Option<String>,
    },
    /// Control plane: set a per-click campaign's bid.
    UpdateBid {
        /// Campaign keyword coordinate.
        keyword: u64,
        /// Campaign index coordinate.
        index: u64,
        /// New bid, in cents.
        bid_cents: i64,
    },
    /// Control plane: pause a campaign.
    PauseCampaign {
        /// Campaign keyword coordinate.
        keyword: u64,
        /// Campaign index coordinate.
        index: u64,
    },
    /// Control plane: resume a paused campaign.
    ResumeCampaign {
        /// Campaign keyword coordinate.
        keyword: u64,
        /// Campaign index coordinate.
        index: u64,
    },
    /// Control plane: set or clear a per-click campaign's ROI target.
    SetRoiTarget {
        /// Campaign keyword coordinate.
        keyword: u64,
        /// Campaign index coordinate.
        index: u64,
        /// `None` clears the target.
        target: Option<f64>,
    },
    /// Control plane: the highest effective bids on a keyword.
    TopBids {
        /// Keyword index.
        keyword: u64,
        /// Maximum entries to return.
        limit: u64,
    },
    /// Control plane: server + marketplace counters.
    Stats,
    /// Control plane: rebuild the marketplace to a new configuration.
    Configure(MarketConfig),
    /// Ask the server to shut down gracefully (drain, then exit).
    Shutdown,
}

impl Request {
    /// Whether the request runs auctions (and therefore passes through
    /// bounded admission) rather than managing state.
    pub fn is_data_plane(&self) -> bool {
        matches!(self, Request::Serve { .. } | Request::ServeBatch { .. })
    }

    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => buf.push(0),
            Request::Serve { keyword, attrs } => {
                buf.push(1);
                put_u64(&mut buf, *keyword);
                put_attrs(&mut buf, attrs);
            }
            Request::ServeBatch { queries } => {
                buf.push(2);
                put_u32(&mut buf, queries.len() as u32);
                for (kw, attrs) in queries {
                    put_u64(&mut buf, *kw);
                    put_attrs(&mut buf, attrs);
                }
            }
            Request::RegisterAdvertiser { name } => {
                buf.push(3);
                put_string(&mut buf, name);
            }
            Request::AddCampaign {
                advertiser,
                keyword,
                bid_cents,
                click_value_cents,
                roi_target,
                click_probs,
                targeting,
            } => {
                buf.push(4);
                put_u64(&mut buf, *advertiser);
                put_u64(&mut buf, *keyword);
                put_i64(&mut buf, *bid_cents);
                put_i64(&mut buf, *click_value_cents);
                put_option(&mut buf, roi_target, |b, t| put_f64(b, *t));
                put_option(&mut buf, click_probs, |b, p| put_f64_vec(b, p));
                put_option(&mut buf, targeting, |b, t| put_string(b, t));
            }
            Request::UpdateBid {
                keyword,
                index,
                bid_cents,
            } => {
                buf.push(5);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *index);
                put_i64(&mut buf, *bid_cents);
            }
            Request::PauseCampaign { keyword, index } => {
                buf.push(6);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *index);
            }
            Request::ResumeCampaign { keyword, index } => {
                buf.push(7);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *index);
            }
            Request::SetRoiTarget {
                keyword,
                index,
                target,
            } => {
                buf.push(8);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *index);
                put_option(&mut buf, target, |b, t| put_f64(b, *t));
            }
            Request::TopBids { keyword, limit } => {
                buf.push(9);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *limit);
            }
            Request::Stats => buf.push(10),
            Request::Configure(config) => {
                buf.push(11);
                put_u64(&mut buf, config.slots);
                put_u64(&mut buf, config.keywords);
                put_u64(&mut buf, config.seed);
                put_method(&mut buf, config.method);
                put_pricing(&mut buf, config.pricing);
                put_u64(&mut buf, config.shards);
                put_bool(&mut buf, config.pruned);
                put_bool(&mut buf, config.warm_start);
            }
            Request::Shutdown => buf.push(12),
        }
        buf
    }

    /// Decodes a request from a frame payload; the whole payload must be
    /// consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            0 => Request::Ping,
            1 => Request::Serve {
                keyword: r.u64("keyword")?,
                attrs: r.attrs("serve attrs")?,
            },
            2 => {
                // Minimum element: keyword (8) + empty attr bag count (4).
                let n = r.count("serve-batch queries", 12)?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    let kw = r.u64("keyword")?;
                    let attrs = r.attrs("batch attrs")?;
                    queries.push((kw, attrs));
                }
                Request::ServeBatch { queries }
            }
            3 => Request::RegisterAdvertiser {
                name: r.string("advertiser name")?,
            },
            4 => Request::AddCampaign {
                advertiser: r.u64("advertiser")?,
                keyword: r.u64("keyword")?,
                bid_cents: r.i64("bid")?,
                click_value_cents: r.i64("click value")?,
                roi_target: r.option("roi target", |r| r.f64("roi target"))?,
                click_probs: r.option("click probs", |r| r.f64_vec("click probs"))?,
                targeting: r.option("targeting", |r| r.string("targeting"))?,
            },
            5 => Request::UpdateBid {
                keyword: r.u64("keyword")?,
                index: r.u64("campaign index")?,
                bid_cents: r.i64("bid")?,
            },
            6 => Request::PauseCampaign {
                keyword: r.u64("keyword")?,
                index: r.u64("campaign index")?,
            },
            7 => Request::ResumeCampaign {
                keyword: r.u64("keyword")?,
                index: r.u64("campaign index")?,
            },
            8 => Request::SetRoiTarget {
                keyword: r.u64("keyword")?,
                index: r.u64("campaign index")?,
                target: r.option("roi target", |r| r.f64("roi target"))?,
            },
            9 => Request::TopBids {
                keyword: r.u64("keyword")?,
                limit: r.u64("limit")?,
            },
            10 => Request::Stats,
            11 => Request::Configure(MarketConfig {
                slots: r.u64("slots")?,
                keywords: r.u64("keywords")?,
                seed: r.u64("seed")?,
                method: read_method(&mut r)?,
                pricing: read_pricing(&mut r)?,
                shards: r.u64("shards")?,
                pruned: r.bool("pruned")?,
                warm_start: r.bool("warm start")?,
            }),
            12 => Request::Shutdown,
            tag => {
                return Err(ProtoError::UnknownTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// One placement inside a [`WireAuction`]: slot, winner, user actions,
/// charge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlacement {
    /// 1-based slot position.
    pub slot_position: u16,
    /// Winning campaign's keyword coordinate.
    pub campaign_keyword: u64,
    /// Winning campaign's index coordinate.
    pub campaign_index: u64,
    /// Owning advertiser's handle index.
    pub advertiser: u64,
    /// Whether the user clicked.
    pub clicked: bool,
    /// Whether the user purchased.
    pub purchased: bool,
    /// Charge, in cents.
    pub charge_cents: i64,
}

/// Wire form of [`AuctionResponse`]: the complete outcome of one auction,
/// convertible back to the in-process type without loss (the conversion
/// round-trip is what the equivalence tests compare bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAuction {
    /// The queried keyword.
    pub keyword: u64,
    /// Global market clock value of the auction (1-based).
    pub time: u64,
    /// Expected revenue of the winning allocation (bit-exact over the
    /// wire).
    pub expected_revenue: f64,
    /// Realised revenue, in cents.
    pub realized_cents: i64,
    /// Ads shown, in slot order.
    pub placements: Vec<WirePlacement>,
    /// Every charge of the auction as `(keyword, index, cents)`.
    pub charges: Vec<(u64, u64, i64)>,
}

impl From<&AuctionResponse> for WireAuction {
    fn from(a: &AuctionResponse) -> Self {
        WireAuction {
            keyword: a.keyword as u64,
            time: a.time,
            expected_revenue: a.expected_revenue,
            realized_cents: a.realized_revenue.cents(),
            placements: a
                .placements
                .iter()
                .map(|p| WirePlacement {
                    slot_position: p.slot.position(),
                    campaign_keyword: p.campaign.keyword() as u64,
                    campaign_index: p.campaign.index() as u64,
                    advertiser: p.advertiser.index() as u64,
                    clicked: p.clicked,
                    purchased: p.purchased,
                    charge_cents: p.charge.cents(),
                })
                .collect(),
            charges: a
                .charges
                .iter()
                .map(|(id, m)| (id.keyword() as u64, id.index() as u64, m.cents()))
                .collect(),
        }
    }
}

impl WireAuction {
    /// Rebuilds the in-process [`AuctionResponse`] this wire auction
    /// describes.
    pub fn to_response(&self) -> AuctionResponse {
        AuctionResponse {
            keyword: self.keyword as usize,
            time: self.time,
            expected_revenue: self.expected_revenue,
            realized_revenue: Money::from_cents(self.realized_cents),
            placements: self
                .placements
                .iter()
                .map(|p| Placement {
                    slot: SlotId::new(p.slot_position),
                    campaign: CampaignId::from_parts(
                        p.campaign_keyword as usize,
                        p.campaign_index as usize,
                    ),
                    advertiser: AdvertiserHandle::from_index(p.advertiser as usize),
                    clicked: p.clicked,
                    purchased: p.purchased,
                    charge: Money::from_cents(p.charge_cents),
                })
                .collect(),
            charges: self
                .charges
                .iter()
                .map(|&(kw, idx, cents)| {
                    (
                        CampaignId::from_parts(kw as usize, idx as usize),
                        Money::from_cents(cents),
                    )
                })
                .collect(),
        }
    }
}

/// Aggregate outcome of a [`Request::ServeBatch`]: the outcome fields of a
/// [`MarketBatchReport`] total (the fields its `PartialEq` compares),
/// without the per-keyword breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchSummary {
    /// Auctions run.
    pub auctions: u64,
    /// Sum of winner-determination objectives (bit-exact over the wire).
    pub expected_revenue: f64,
    /// Slots that received an advertiser.
    pub filled_slots: u64,
    /// Realised clicks.
    pub clicks: u64,
    /// Realised purchases.
    pub purchases: u64,
    /// Realised revenue, in cents.
    pub realized_cents: i64,
    /// Same-keyword chunks the stream was split into.
    pub chunks: u64,
}

impl BatchSummary {
    /// Summarises a full in-process batch report.
    pub fn from_report(report: &MarketBatchReport) -> Self {
        BatchSummary {
            auctions: report.total.auctions,
            expected_revenue: report.total.expected_revenue,
            filled_slots: report.total.filled_slots,
            clicks: report.total.clicks,
            purchases: report.total.purchases,
            realized_cents: report.total.realized_revenue.cents(),
            chunks: report.chunks,
        }
    }

    /// Folds another summary in (used when a long stream is shipped as
    /// several `ServeBatch` frames). Floating-point summation order
    /// matches the in-process `BatchReport::absorb` chain, keeping the
    /// aggregate bit-exact.
    pub fn absorb(&mut self, other: &BatchSummary) {
        self.auctions += other.auctions;
        self.expected_revenue += other.expected_revenue;
        self.filled_slots += other.filled_slots;
        self.clicks += other.clicks;
        self.purchases += other.purchases;
        self.realized_cents += other.realized_cents;
        self.chunks += other.chunks;
    }
}

/// Server + marketplace counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Registered advertisers.
    pub advertisers: u64,
    /// Campaigns across all keywords.
    pub campaigns: u64,
    /// Keyword universe size.
    pub keywords: u64,
    /// Slots per results page.
    pub slots: u64,
    /// Shards the marketplace runs.
    pub shards: u64,
    /// Total auctions served (the market clock).
    pub auctions: u64,
    /// Sessions ever accepted.
    pub sessions: u64,
    /// Requests executed (admitted and run, any plane).
    pub requests: u64,
    /// Data-plane requests refused with [`Response::Overloaded`].
    pub overloaded: u64,
    /// Records appended to the write-ahead log over its lifetime (0 when
    /// the server runs without durability).
    pub wal_records: u64,
    /// WAL sequence number the newest snapshot covers through (0 when no
    /// snapshot exists or durability is off).
    pub snapshot_seq: u64,
}

/// Machine-readable failure category carried by [`Response::Failed`];
/// mirrors [`MarketError`] plus server-side conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// No such advertiser handle.
    UnknownAdvertiser,
    /// Keyword outside the configured universe.
    UnknownKeyword,
    /// No such campaign.
    UnknownCampaign,
    /// Per-slot model length mismatch.
    ModelDimension,
    /// Probability outside `[0, 1]`.
    InvalidProbability,
    /// No click model available for the campaign.
    MissingClickModel,
    /// The campaign is not per-click incremental.
    NotIncremental,
    /// Negative bid.
    NegativeBid,
    /// Non-finite or non-positive ROI target.
    InvalidRoiTarget,
    /// Configuration rejected (zero slots/keywords/shards or equivalent).
    InvalidConfig,
    /// The server is draining and no longer accepts this request.
    ShuttingDown,
    /// The request is valid but this server does not support it.
    Unsupported,
    /// A campaign's targeting expression failed to parse or exceeded the
    /// nesting-depth limit.
    InvalidTargeting,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::UnknownAdvertiser => 0,
            ErrorCode::UnknownKeyword => 1,
            ErrorCode::UnknownCampaign => 2,
            ErrorCode::ModelDimension => 3,
            ErrorCode::InvalidProbability => 4,
            ErrorCode::MissingClickModel => 5,
            ErrorCode::NotIncremental => 6,
            ErrorCode::NegativeBid => 7,
            ErrorCode::InvalidRoiTarget => 8,
            ErrorCode::InvalidConfig => 9,
            ErrorCode::ShuttingDown => 10,
            ErrorCode::Unsupported => 11,
            ErrorCode::InvalidTargeting => 12,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => ErrorCode::UnknownAdvertiser,
            1 => ErrorCode::UnknownKeyword,
            2 => ErrorCode::UnknownCampaign,
            3 => ErrorCode::ModelDimension,
            4 => ErrorCode::InvalidProbability,
            5 => ErrorCode::MissingClickModel,
            6 => ErrorCode::NotIncremental,
            7 => ErrorCode::NegativeBid,
            8 => ErrorCode::InvalidRoiTarget,
            9 => ErrorCode::InvalidConfig,
            10 => ErrorCode::ShuttingDown,
            11 => ErrorCode::Unsupported,
            12 => ErrorCode::InvalidTargeting,
            tag => {
                return Err(ProtoError::UnknownTag {
                    what: "error code",
                    tag,
                })
            }
        })
    }
}

impl From<&MarketError> for ErrorCode {
    fn from(e: &MarketError) -> Self {
        match e {
            MarketError::UnknownAdvertiser(_) => ErrorCode::UnknownAdvertiser,
            MarketError::UnknownKeyword { .. } => ErrorCode::UnknownKeyword,
            MarketError::UnknownCampaign(_) => ErrorCode::UnknownCampaign,
            MarketError::ModelDimension { .. } => ErrorCode::ModelDimension,
            MarketError::InvalidProbability(_) => ErrorCode::InvalidProbability,
            MarketError::MissingClickModel => ErrorCode::MissingClickModel,
            MarketError::NotIncremental(_) => ErrorCode::NotIncremental,
            MarketError::NegativeBid(_) => ErrorCode::NegativeBid,
            MarketError::InvalidRoiTarget(_) => ErrorCode::InvalidRoiTarget,
            MarketError::InvalidTargeting(_) => ErrorCode::InvalidTargeting,
            // A non-per-click campaign on a journalled marketplace: the
            // wire protocol cannot submit one, but the mapping must be
            // total.
            MarketError::NotDurable(_) => ErrorCode::Unsupported,
            MarketError::NoSlots | MarketError::NoKeywords | MarketError::NoShards => {
                ErrorCode::InvalidConfig
            }
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Server-assigned session id of this connection.
        session: u64,
        /// Protocol version the server speaks.
        proto_version: u8,
    },
    /// Answer to [`Request::Serve`]: the full auction outcome.
    Served(WireAuction),
    /// Answer to [`Request::ServeBatch`]: the aggregate outcome.
    BatchServed(BatchSummary),
    /// Answer to [`Request::RegisterAdvertiser`].
    AdvertiserRegistered {
        /// Handle index of the new advertiser.
        advertiser: u64,
    },
    /// Answer to [`Request::AddCampaign`].
    CampaignAdded {
        /// Campaign keyword coordinate.
        keyword: u64,
        /// Campaign index coordinate.
        index: u64,
    },
    /// Answer to fire-and-forget control calls (update/pause/resume/ROI,
    /// configure, shutdown).
    Ack,
    /// Answer to [`Request::TopBids`]: `(keyword, index, cents)`
    /// descending by bid.
    TopBids {
        /// The bids.
        bids: Vec<(u64, u64, i64)>,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// The request was understood but failed.
    Failed {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail (the in-process error's `Display`).
        message: String,
    },
    /// Data-plane backpressure: the owning shard's admission lane is full.
    /// The request was **not** executed; retry after the hint.
    Overloaded {
        /// Suggested client back-off, in milliseconds.
        retry_after_ms: u32,
    },
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong {
                session,
                proto_version,
            } => {
                buf.push(0);
                put_u64(&mut buf, *session);
                buf.push(*proto_version);
            }
            Response::Served(a) => {
                buf.push(1);
                put_u64(&mut buf, a.keyword);
                put_u64(&mut buf, a.time);
                put_f64(&mut buf, a.expected_revenue);
                put_i64(&mut buf, a.realized_cents);
                put_u32(&mut buf, a.placements.len() as u32);
                for p in &a.placements {
                    put_u16(&mut buf, p.slot_position);
                    put_u64(&mut buf, p.campaign_keyword);
                    put_u64(&mut buf, p.campaign_index);
                    put_u64(&mut buf, p.advertiser);
                    put_bool(&mut buf, p.clicked);
                    put_bool(&mut buf, p.purchased);
                    put_i64(&mut buf, p.charge_cents);
                }
                put_u32(&mut buf, a.charges.len() as u32);
                for (kw, idx, cents) in &a.charges {
                    put_u64(&mut buf, *kw);
                    put_u64(&mut buf, *idx);
                    put_i64(&mut buf, *cents);
                }
            }
            Response::BatchServed(s) => {
                buf.push(2);
                put_u64(&mut buf, s.auctions);
                put_f64(&mut buf, s.expected_revenue);
                put_u64(&mut buf, s.filled_slots);
                put_u64(&mut buf, s.clicks);
                put_u64(&mut buf, s.purchases);
                put_i64(&mut buf, s.realized_cents);
                put_u64(&mut buf, s.chunks);
            }
            Response::AdvertiserRegistered { advertiser } => {
                buf.push(3);
                put_u64(&mut buf, *advertiser);
            }
            Response::CampaignAdded { keyword, index } => {
                buf.push(4);
                put_u64(&mut buf, *keyword);
                put_u64(&mut buf, *index);
            }
            Response::Ack => buf.push(5),
            Response::TopBids { bids } => {
                buf.push(6);
                put_u32(&mut buf, bids.len() as u32);
                for (kw, idx, cents) in bids {
                    put_u64(&mut buf, *kw);
                    put_u64(&mut buf, *idx);
                    put_i64(&mut buf, *cents);
                }
            }
            Response::Stats(s) => {
                buf.push(7);
                put_u64(&mut buf, s.advertisers);
                put_u64(&mut buf, s.campaigns);
                put_u64(&mut buf, s.keywords);
                put_u64(&mut buf, s.slots);
                put_u64(&mut buf, s.shards);
                put_u64(&mut buf, s.auctions);
                put_u64(&mut buf, s.sessions);
                put_u64(&mut buf, s.requests);
                put_u64(&mut buf, s.overloaded);
                put_u64(&mut buf, s.wal_records);
                put_u64(&mut buf, s.snapshot_seq);
            }
            Response::Failed { code, message } => {
                buf.push(8);
                buf.push(code.to_byte());
                put_string(&mut buf, message);
            }
            Response::Overloaded { retry_after_ms } => {
                buf.push(9);
                put_u32(&mut buf, *retry_after_ms);
            }
        }
        buf
    }

    /// Decodes a response from a frame payload; the whole payload must be
    /// consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            0 => Response::Pong {
                session: r.u64("session")?,
                proto_version: r.u8("proto version")?,
            },
            1 => {
                let keyword = r.u64("keyword")?;
                let time = r.u64("time")?;
                let expected_revenue = r.f64("expected revenue")?;
                let realized_cents = r.i64("realized revenue")?;
                let np = r.count("placements", 29)?;
                let mut placements = Vec::with_capacity(np);
                for _ in 0..np {
                    placements.push(WirePlacement {
                        slot_position: r.u16("slot")?,
                        campaign_keyword: r.u64("campaign keyword")?,
                        campaign_index: r.u64("campaign index")?,
                        advertiser: r.u64("advertiser")?,
                        clicked: r.bool("clicked")?,
                        purchased: r.bool("purchased")?,
                        charge_cents: r.i64("charge")?,
                    });
                }
                let nc = r.count("charges", 24)?;
                let mut charges = Vec::with_capacity(nc);
                for _ in 0..nc {
                    charges.push((
                        r.u64("charge keyword")?,
                        r.u64("charge index")?,
                        r.i64("charge cents")?,
                    ));
                }
                Response::Served(WireAuction {
                    keyword,
                    time,
                    expected_revenue,
                    realized_cents,
                    placements,
                    charges,
                })
            }
            2 => Response::BatchServed(BatchSummary {
                auctions: r.u64("auctions")?,
                expected_revenue: r.f64("expected revenue")?,
                filled_slots: r.u64("filled slots")?,
                clicks: r.u64("clicks")?,
                purchases: r.u64("purchases")?,
                realized_cents: r.i64("realized revenue")?,
                chunks: r.u64("chunks")?,
            }),
            3 => Response::AdvertiserRegistered {
                advertiser: r.u64("advertiser")?,
            },
            4 => Response::CampaignAdded {
                keyword: r.u64("keyword")?,
                index: r.u64("campaign index")?,
            },
            5 => Response::Ack,
            6 => {
                let n = r.count("top bids", 24)?;
                let mut bids = Vec::with_capacity(n);
                for _ in 0..n {
                    bids.push((r.u64("keyword")?, r.u64("index")?, r.i64("cents")?));
                }
                Response::TopBids { bids }
            }
            7 => Response::Stats(ServerStats {
                advertisers: r.u64("advertisers")?,
                campaigns: r.u64("campaigns")?,
                keywords: r.u64("keywords")?,
                slots: r.u64("slots")?,
                shards: r.u64("shards")?,
                auctions: r.u64("auctions")?,
                sessions: r.u64("sessions")?,
                requests: r.u64("requests")?,
                overloaded: r.u64("overloaded")?,
                wal_records: r.u64("wal_records")?,
                snapshot_seq: r.u64("snapshot_seq")?,
            }),
            8 => Response::Failed {
                code: ErrorCode::from_byte(r.u8("error code")?)?,
                message: r.string("error message")?,
            },
            9 => Response::Overloaded {
                retry_after_ms: r.u32("retry hint")?,
            },
            tag => {
                return Err(ProtoError::UnknownTag {
                    what: "response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

// Keyword/index pairs cross the wire as u64 but live as usize in-process;
// decode-side helpers for the server.
pub(crate) fn keyword_of(v: u64) -> usize {
    v as usize
}

/// Rebuilds a [`CampaignId`] from its wire coordinates.
pub(crate) fn campaign_of(keyword: u64, index: u64) -> CampaignId {
    CampaignId::from_parts(keyword_of(keyword), index as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Serve {
                keyword: 3,
                attrs: UserAttrs::new(),
            },
            Request::Serve {
                keyword: 8,
                attrs: UserAttrs::new()
                    .geo("us")
                    .device("mobile")
                    .set_int("age", 33),
            },
            Request::ServeBatch {
                queries: vec![
                    (0, UserAttrs::new()),
                    (1, UserAttrs::new().segment("gamer")),
                    (1, UserAttrs::new().set_int("score", i64::MIN)),
                    (2, UserAttrs::new()),
                    (9, UserAttrs::new()),
                ],
            },
            Request::RegisterAdvertiser {
                name: "books.example".into(),
            },
            Request::AddCampaign {
                advertiser: 2,
                keyword: 7,
                bid_cents: 150,
                click_value_cents: 400,
                roi_target: Some(1.25),
                click_probs: Some(vec![0.6, 0.3, 0.15]),
                targeting: Some("geo = 'us' and not device = 'bot'".into()),
            },
            Request::UpdateBid {
                keyword: 1,
                index: 4,
                bid_cents: -3,
            },
            Request::PauseCampaign {
                keyword: 0,
                index: 0,
            },
            Request::ResumeCampaign {
                keyword: 0,
                index: 0,
            },
            Request::SetRoiTarget {
                keyword: 5,
                index: 1,
                target: None,
            },
            Request::TopBids {
                keyword: 2,
                limit: 10,
            },
            Request::Stats,
            Request::Configure(MarketConfig {
                slots: 15,
                keywords: 10,
                seed: 42,
                method: WdMethod::ReducedParallel(4),
                pricing: PricingScheme::Gsp,
                shards: 4,
                pruned: true,
                warm_start: false,
            }),
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong {
                session: 9,
                proto_version: 1,
            },
            Response::Served(WireAuction {
                keyword: 4,
                time: 77,
                expected_revenue: 12.345,
                realized_cents: 210,
                placements: vec![WirePlacement {
                    slot_position: 1,
                    campaign_keyword: 4,
                    campaign_index: 2,
                    advertiser: 0,
                    clicked: true,
                    purchased: false,
                    charge_cents: 35,
                }],
                charges: vec![(4, 2, 35)],
            }),
            Response::BatchServed(BatchSummary {
                auctions: 100,
                expected_revenue: 1.5e3,
                filled_slots: 180,
                clicks: 40,
                purchases: 3,
                realized_cents: 1234,
                chunks: 17,
            }),
            Response::AdvertiserRegistered { advertiser: 12 },
            Response::CampaignAdded {
                keyword: 3,
                index: 0,
            },
            Response::Ack,
            Response::TopBids {
                bids: vec![(3, 0, 90), (3, 2, 40)],
            },
            Response::Stats(ServerStats {
                advertisers: 10,
                campaigns: 100,
                keywords: 10,
                slots: 15,
                shards: 4,
                auctions: 4096,
                sessions: 3,
                requests: 4200,
                overloaded: 9,
                wal_records: 5100,
                snapshot_seq: 4096,
            }),
            Response::Failed {
                code: ErrorCode::UnknownKeyword,
                message: "keyword 99 outside the configured universe of 10".into(),
            },
            Response::Overloaded { retry_after_ms: 10 },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A ServeBatch claiming u32::MAX queries inside a 9-byte payload.
        let mut buf = vec![2u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        assert_eq!(
            Request::decode(&buf),
            Err(ProtoError::Oversized {
                what: "serve-batch queries",
                len: u32::MAX as u64,
            })
        );
        // An attribute bag claiming u32::MAX entries inside a Serve.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&buf),
            Err(ProtoError::Oversized {
                what: "serve attrs",
                len: u32::MAX as u64,
            })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Request::Ping.encode();
        buf.push(0);
        assert_eq!(
            Request::decode(&buf),
            Err(ProtoError::Trailing { extra: 1 })
        );
    }

    #[test]
    fn unknown_tags_are_typed() {
        assert_eq!(
            Request::decode(&[200]),
            Err(ProtoError::UnknownTag {
                what: "request",
                tag: 200,
            })
        );
        assert_eq!(
            Response::decode(&[250]),
            Err(ProtoError::UnknownTag {
                what: "response",
                tag: 250,
            })
        );
    }

    #[test]
    fn f64_is_bit_exact() {
        let tricky = [0.1 + 0.2, f64::MIN_POSITIVE, 1.0e308, -0.0];
        for v in tricky {
            let resp = Response::BatchServed(BatchSummary {
                expected_revenue: v,
                ..BatchSummary::default()
            });
            match Response::decode(&resp.encode()).unwrap() {
                Response::BatchServed(s) => {
                    assert_eq!(s.expected_revenue.to_bits(), v.to_bits());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
