//! `ssa-load` — drive a remote `ssa-server` with the Section V workload
//! and report QPS + latency percentiles.
//!
//! Two modes:
//!
//! * **verify** (`--verify`): one connection replays the seeded query
//!   stream strictly in order and compares every wire-served auction —
//!   winners, clicks, charges, bit-for-bit — against an in-process
//!   [`ssa_net::local_twin`] serving the same stream, finishing with a
//!   bit-for-bit `top_bids` comparison on every keyword. Exit code 1 on
//!   any divergence. With `--skip <n>` the remote is assumed to already
//!   hold the marketplace (e.g. recovered from a write-ahead log after a
//!   crash): configuration and population are skipped, the twin serves
//!   the first `n` queries silently to catch up, and the wire comparison
//!   covers the next `--queries` — which is exactly how the
//!   crash-recovery CI job proves a restarted server is bit-identical.
//! * **throughput** (default): `--connections` worker connections split
//!   the stream and hammer the data plane concurrently, recording
//!   per-request latency; `Overloaded` refusals are counted separately
//!   and never poison the latency distribution.
//!
//! Either way the run ends with one `"metric":"net_load"` JSON line
//! (QPS, p50/p99/max latency, cores, overload count, verification
//! verdict) on stdout with `--json` and/or appended to `--report <path>`.

use std::io::Write as _;
use std::process::exit;
use std::time::{Duration, Instant};

use ssa_core::{parse_shards, PricingScheme, WdMethod};
use ssa_net::client::{Client, NetError};
use ssa_net::load::{
    available_cores, local_twin, market_config_for, populate_remote, LatencyRecorder, LoadReport,
};
use ssa_workload::{SectionVConfig, SectionVWorkload, WorkloadShape};

const USAGE: &str = "\
Usage: ssa-load --addr <host:port> [options]

Options:
  --addr <host:port>   Server to drive (required)
  --advertisers <n>    Section V advertiser count (default 50)
  --queries <n>        Measured queries (default 4096)
  --warmup <n>         Unmeasured warm-up queries (default 512)
  --connections <n>    Concurrent connections in throughput mode (default 4)
  --seed <n>           Workload seed (default 42)
  --method <m>         Winner determination: lp | h | rh | rhp:<threads> (default rh)
  --pricing <p>        Pricing: pay-your-bid | gsp | vcg (default gsp)
  --shards <n>         Shard count the server should run (default 4)
  --workload <w>       Query stream shape: uniform | zipf:<s> | flash | churn
                       (default: the workload's own pre-drawn uniform stream).
                       zipf:<s> skews queries by keyword rank, flash pins the
                       middle half of the stream to one hot keyword — one
                       shard — and churn draws uniformly (the adversarial
                       generator behind reproduce --workload)
  --pruned             Enable top-k pruned winner determination
  --verify             Replay in order and compare against an in-process twin
  --skip <n>           Verify mode: assume the server already holds the market
                       (skip configure/populate) and fast-forward the twin past
                       the first <n> queries before comparing (default 0)
  --quick              Small preset (20 advertisers, 1024 queries, 128 warm-up)
  --json               Print the JSON report line to stdout
  --report <path>      Append the JSON report line to a file
  --shutdown           Ask the server to shut down gracefully after the run
";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

fn fatal(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(1);
}

struct Options {
    addr: std::net::SocketAddr,
    advertisers: usize,
    queries: usize,
    warmup: usize,
    connections: usize,
    seed: u64,
    method: WdMethod,
    pricing: PricingScheme,
    shards: usize,
    workload: Option<WorkloadShape>,
    pruned: bool,
    verify: bool,
    skip: usize,
    json: bool,
    report: Option<String>,
    shutdown: bool,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut advertisers = 50usize;
    let mut queries = 4096usize;
    let mut warmup = 512usize;
    let mut connections = 4usize;
    let mut seed = 42u64;
    let mut method = WdMethod::Reduced;
    let mut pricing = PricingScheme::Gsp;
    let mut shards = 4usize;
    let mut workload: Option<WorkloadShape> = None;
    let mut pruned = false;
    let mut verify = false;
    let mut skip = 0usize;
    let mut json = false;
    let mut report = None;
    let mut shutdown = false;
    let mut quick = false;
    let mut sized = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |what: &str| -> String {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => usage_error(&format!("{what} expects a value")),
            }
        };
        match flag {
            "--addr" => {
                let raw = value("--addr");
                match ssa_net::parse_addr(&raw) {
                    Ok(a) => addr = Some(a),
                    Err(e) => usage_error(&e.to_string()),
                }
            }
            "--advertisers" => match value("--advertisers").parse() {
                Ok(n) if n > 0 => {
                    advertisers = n;
                    sized = true;
                }
                _ => usage_error("--advertisers expects a positive integer"),
            },
            "--queries" => match value("--queries").parse() {
                Ok(n) if n > 0 => {
                    queries = n;
                    sized = true;
                }
                _ => usage_error("--queries expects a positive integer"),
            },
            "--warmup" => match value("--warmup").parse() {
                Ok(n) => {
                    warmup = n;
                    sized = true;
                }
                Err(_) => usage_error("--warmup expects an unsigned integer"),
            },
            "--connections" => match value("--connections").parse() {
                Ok(n) if n > 0 => connections = n,
                _ => usage_error("--connections expects a positive integer"),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => usage_error("--seed expects an unsigned integer"),
            },
            "--method" => match value("--method").parse() {
                Ok(m) => method = m,
                Err(e) => usage_error(&format!("{e}")),
            },
            "--pricing" => match value("--pricing").parse() {
                Ok(p) => pricing = p,
                Err(e) => usage_error(&format!("{e}")),
            },
            "--shards" => match parse_shards(&value("--shards")) {
                Ok(n) => shards = n,
                Err(e) => usage_error(&e.to_string()),
            },
            "--workload" => match value("--workload").parse::<WorkloadShape>() {
                Ok(w) => workload = Some(w),
                Err(e) => usage_error(&e.to_string()),
            },
            "--pruned" => pruned = true,
            "--verify" => verify = true,
            "--skip" => match value("--skip").parse() {
                Ok(n) => skip = n,
                Err(_) => usage_error("--skip expects an unsigned integer"),
            },
            "--quick" => quick = true,
            "--json" => json = true,
            "--report" => report = Some(value("--report")),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    if quick && !sized {
        advertisers = 20;
        queries = 1024;
        warmup = 128;
    }
    let Some(addr) = addr else {
        usage_error("--addr is required");
    };
    Options {
        addr,
        advertisers,
        queries,
        warmup,
        connections,
        seed,
        method,
        pricing,
        shards,
        workload,
        pruned,
        verify,
        skip,
        json,
        report,
        shutdown,
    }
}

/// The measured query stream: the workload's pre-drawn stream cycled out
/// to `len` queries — or, with `--workload`, the hostile shape's seeded
/// stream over the same keyword space (both sides of a `--verify` run
/// derive it from the same options, so twin and wire replay stay in
/// lockstep).
fn stream_of(opts: &Options, workload: &SectionVWorkload, len: usize) -> Vec<usize> {
    match opts.workload {
        Some(shape) => shape.query_stream(workload.config.num_keywords, len, opts.seed),
        None => (0..len)
            .map(|i| workload.query_stream[i % workload.query_stream.len()])
            .collect(),
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => fatal(&format!("cannot connect to {addr}: {e}")),
    }
}

/// Verify mode: ordered replay against the in-process twin.
fn run_verify(opts: &Options, workload: &SectionVWorkload) -> LoadReport {
    let config = market_config_for(
        &workload.config,
        opts.method,
        opts.pricing,
        opts.shards,
        opts.pruned,
    );
    let mut client = connect(opts.addr);
    if opts.skip == 0 {
        if let Err(e) = client.configure(&config) {
            fatal(&format!("configure failed: {e}"));
        }
        if let Err(e) = populate_remote(&mut client, workload) {
            fatal(&format!("population failed: {e}"));
        }
    }
    let mut twin = local_twin(workload, &config);

    let full = stream_of(opts, workload, opts.skip + opts.queries);
    // Fast-forward the twin past the queries the server already served
    // (before it crashed / was restarted); the wire never sees them.
    for &keyword in &full[..opts.skip] {
        twin.serve(ssa_core::QueryRequest::new(keyword))
            .expect("twin keyword in range");
    }
    let stream = &full[opts.skip..];
    let mut latencies = LatencyRecorder::new();
    let mut verified = true;
    let started = Instant::now();
    for (t, &keyword) in stream.iter().enumerate() {
        let sent = Instant::now();
        let remote = match client.serve(keyword) {
            Ok(auction) => auction,
            Err(e) => fatal(&format!("serve failed at query {t}: {e}")),
        };
        latencies.record(sent.elapsed());
        let local = twin
            .serve(ssa_core::QueryRequest::new(keyword))
            .expect("twin keyword in range");
        if remote != local || remote.expected_revenue.to_bits() != local.expected_revenue.to_bits()
        {
            eprintln!(
                "MISMATCH at query {t} (keyword {keyword}):\n  remote: {remote:?}\n  local:  {local:?}"
            );
            verified = false;
        }
    }
    let elapsed = started.elapsed();

    // The stored control-plane state must match too, not just the served
    // outcomes: compare the full top-bid order of every keyword.
    for keyword in 0..workload.config.num_keywords {
        let remote = match client.top_bids(keyword, 64) {
            Ok(bids) => bids,
            Err(e) => fatal(&format!("top_bids failed for keyword {keyword}: {e}")),
        };
        let local = twin.top_bids(keyword, 64).expect("twin keyword in range");
        if remote != local {
            eprintln!(
                "TOP-BIDS MISMATCH at keyword {keyword}:\n  remote: {remote:?}\n  local:  {local:?}"
            );
            verified = false;
        }
    }
    if verified {
        eprintln!(
            "verified: {} wire-served auctions and {} top-bid lists bit-identical to in-process serve",
            stream.len(),
            workload.config.num_keywords
        );
    }

    LoadReport {
        advertisers: opts.advertisers,
        keywords: workload.config.num_keywords,
        slots: workload.config.num_slots,
        method: opts.method,
        shards: opts.shards,
        seed: opts.seed,
        connections: 1,
        queries: stream.len() as u64,
        warmup: 0,
        elapsed,
        latencies,
        overloaded: 0,
        cores: available_cores(),
        verified: Some(verified),
        workload: opts.workload,
    }
}

/// Throughput mode: concurrent connections splitting the stream.
fn run_throughput(opts: &Options, workload: &SectionVWorkload) -> LoadReport {
    let config = market_config_for(
        &workload.config,
        opts.method,
        opts.pricing,
        opts.shards,
        opts.pruned,
    );
    let mut control = connect(opts.addr);
    if let Err(e) = control.configure(&config) {
        fatal(&format!("configure failed: {e}"));
    }
    if let Err(e) = populate_remote(&mut control, workload) {
        fatal(&format!("population failed: {e}"));
    }

    // Warm-up: unmeasured, single connection, so engines and solver
    // scratch exist before the clock starts.
    for &keyword in &stream_of(opts, workload, opts.warmup) {
        match control.serve(keyword) {
            Ok(_) | Err(NetError::Overloaded { .. }) => {}
            Err(e) => fatal(&format!("warm-up serve failed: {e}")),
        }
    }

    let stream = stream_of(opts, workload, opts.queries);
    let shares: Vec<Vec<usize>> = (0..opts.connections)
        .map(|w| {
            stream
                .iter()
                .skip(w)
                .step_by(opts.connections)
                .copied()
                .collect()
        })
        .collect();

    let started = Instant::now();
    let worker_results: Vec<(LatencyRecorder, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                let addr = opts.addr;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    let mut latencies = LatencyRecorder::new();
                    let mut served = 0u64;
                    let mut overloaded = 0u64;
                    for &keyword in share {
                        let sent = Instant::now();
                        match client.serve(keyword) {
                            Ok(_) => {
                                latencies.record(sent.elapsed());
                                served += 1;
                            }
                            Err(NetError::Overloaded { retry_after_ms }) => {
                                overloaded += 1;
                                std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                            }
                            Err(e) => fatal(&format!("serve failed: {e}")),
                        }
                    }
                    (latencies, served, overloaded)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut latencies = LatencyRecorder::new();
    let mut served = 0u64;
    let mut overloaded = 0u64;
    for (worker_latencies, worker_served, worker_overloaded) in &worker_results {
        latencies.merge(worker_latencies);
        served += worker_served;
        overloaded += worker_overloaded;
    }

    LoadReport {
        advertisers: opts.advertisers,
        keywords: workload.config.num_keywords,
        slots: workload.config.num_slots,
        method: opts.method,
        shards: opts.shards,
        seed: opts.seed,
        connections: opts.connections,
        queries: served,
        warmup: opts.warmup as u64,
        elapsed,
        latencies,
        overloaded,
        cores: available_cores(),
        verified: None,
        workload: opts.workload,
    }
}

fn main() {
    let opts = parse_options();
    let workload = SectionVWorkload::generate(SectionVConfig {
        num_advertisers: opts.advertisers,
        num_slots: 15,
        num_keywords: 10,
        seed: opts.seed,
    });

    let report = if opts.verify {
        run_verify(&opts, &workload)
    } else {
        run_throughput(&opts, &workload)
    };

    eprintln!(
        "{} queries over {} connection(s) in {:.1} ms: {:.0} qps, p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms, {} overloaded",
        report.queries,
        report.connections,
        report.elapsed.as_secs_f64() * 1e3,
        report.qps(),
        report.latencies.quantile_ms(0.50),
        report.latencies.quantile_ms(0.99),
        report.latencies.max_ms(),
        report.overloaded,
    );

    let json = report.to_json();
    if opts.json {
        println!("{json}");
        let _ = std::io::stdout().flush();
    }
    if let Some(path) = &opts.report {
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{json}"));
        if let Err(e) = result {
            fatal(&format!("cannot append report to {path}: {e}"));
        }
    }
    if opts.shutdown {
        let mut client = connect(opts.addr);
        if let Err(e) = client.shutdown_server() {
            fatal(&format!("shutdown request failed: {e}"));
        }
    }
    if report.verified == Some(false) {
        exit(1);
    }
}
