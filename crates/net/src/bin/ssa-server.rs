//! `ssa-server` — serve a [`ssa_core::ShardedMarketplace`] over TCP.
//!
//! Binds the requested address, prints `ssa-server listening on <addr>`
//! as its first stdout line (scripts parse it to discover `:0`-assigned
//! ports), and serves until a client sends `Shutdown`, draining in-flight
//! requests before exiting.
//!
//! The initial marketplace comes from the CLI flags; clients usually
//! replace it anyway with a `Configure` request (the load driver and the
//! equivalence tests do), so the flags only matter for servers driven by
//! hand.
//!
//! With `--data-dir` the server journals every mutation and serve to a
//! write-ahead log in that directory and, on restart, recovers the
//! persisted marketplace — bit-identical, RNG streams included — instead
//! of building one from the flags. A `recovered ...` status line goes to
//! stderr (stdout's first line stays the address-discovery contract).

use std::io::Write as _;
use std::process::exit;

use ssa_core::{parse_shards, PricingScheme, WdMethod};
use ssa_durable::{Durability, FsyncPolicy};
use ssa_net::proto::MarketConfig;
use ssa_net::server::{build_market, Server, ServerConfig};

const USAGE: &str = "\
Usage: ssa-server [options]

Options:
  --addr <host:port>   Address to bind (default 127.0.0.1:0; port 0 picks a free port)
  --shards <n>         Shard count of the initial marketplace (default 1)
  --slots <n>          Slots per results page (default 15)
  --keywords <n>       Keyword universe size (default 10)
  --seed <n>           Marketplace RNG seed (default 42)
  --method <m>         Winner determination: lp | h | rh | rhp:<threads> (default rh)
  --pricing <p>        Pricing: pay-your-bid | gsp | vcg (default gsp)
  --pruned             Enable top-k pruned winner determination
  --admission <n>      Data-plane requests queued-or-in-flight per shard lane (default 256)
  --retry-ms <n>       Back-off hint attached to Overloaded responses (default 10)
  --data-dir <path>    Durability: journal to a write-ahead log in <path> and
                       recover any marketplace persisted there (default: off)
  --fsync <policy>     WAL sync policy: always | off (default off; 'off' still
                       survives process kills, 'always' survives power loss)
  --snapshot-every <n> Snapshot + compact the log every <n> records (default
                       10000; 0 disables automatic snapshots)
";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards = 1usize;
    let mut slots = 15u64;
    let mut keywords = 10u64;
    let mut seed = 42u64;
    let mut method = WdMethod::Reduced;
    let mut pricing = PricingScheme::Gsp;
    let mut pruned = false;
    let mut admission = 256usize;
    let mut retry_ms = 10u32;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Off;
    let mut snapshot_every = 10_000u64;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |what: &str| -> String {
            i += 1;
            match args.get(i) {
                Some(v) => v.clone(),
                None => usage_error(&format!("{what} expects a value")),
            }
        };
        match flag {
            "--addr" => addr = value("--addr"),
            "--shards" => match parse_shards(&value("--shards")) {
                Ok(n) => shards = n,
                Err(e) => usage_error(&e.to_string()),
            },
            "--slots" => match value("--slots").parse() {
                Ok(n) => slots = n,
                Err(_) => usage_error("--slots expects an unsigned integer"),
            },
            "--keywords" => match value("--keywords").parse() {
                Ok(n) => keywords = n,
                Err(_) => usage_error("--keywords expects an unsigned integer"),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => usage_error("--seed expects an unsigned integer"),
            },
            "--method" => match value("--method").parse() {
                Ok(m) => method = m,
                Err(e) => usage_error(&format!("{e}")),
            },
            "--pricing" => match value("--pricing").parse() {
                Ok(p) => pricing = p,
                Err(e) => usage_error(&format!("{e}")),
            },
            "--pruned" => pruned = true,
            "--admission" => match value("--admission").parse() {
                Ok(n) if n > 0 => admission = n,
                _ => usage_error("--admission expects a positive integer"),
            },
            "--retry-ms" => match value("--retry-ms").parse() {
                Ok(n) => retry_ms = n,
                Err(_) => usage_error("--retry-ms expects an unsigned integer"),
            },
            "--data-dir" => data_dir = Some(value("--data-dir").into()),
            "--fsync" => match value("--fsync").parse() {
                Ok(policy) => fsync = policy,
                Err(e) => usage_error(&format!("{e}")),
            },
            "--snapshot-every" => match value("--snapshot-every").parse() {
                Ok(n) => snapshot_every = n,
                Err(_) => usage_error("--snapshot-every expects an unsigned integer"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let config = MarketConfig {
        slots,
        keywords,
        seed,
        method,
        pricing,
        shards: shards as u64,
        pruned,
        warm_start: true,
    };

    let (market, durability) = match &data_dir {
        None => {
            let market = match build_market(&config) {
                Ok(market) => market,
                Err(e) => usage_error(&format!("invalid marketplace configuration: {e}")),
            };
            (market, None)
        }
        Some(dir) => {
            let (recovered, durability) = match Durability::open(dir, fsync, snapshot_every) {
                Ok(opened) => opened,
                Err(e) => {
                    eprintln!("error: cannot open data dir {}: {e}", dir.display());
                    exit(1);
                }
            };
            let market = match recovered {
                Some((market, report)) => {
                    // Parsed by the crash-recovery CI job; keep the
                    // key=value fields stable.
                    eprintln!(
                        "ssa-server recovered wal_records={} snapshot_bytes={} replay_ms={:.3}",
                        report.wal_records, report.snapshot_bytes, report.replay_ms
                    );
                    market
                }
                None => {
                    let market = match build_market(&config) {
                        Ok(market) => market,
                        Err(e) => usage_error(&format!("invalid marketplace configuration: {e}")),
                    };
                    let state = market
                        .capture_state()
                        .expect("a freshly built marketplace is always journalable");
                    if let Err(e) = durability.log_configure(&state.config) {
                        eprintln!("error: cannot write to data dir {}: {e}", dir.display());
                        exit(1);
                    }
                    market
                }
            };
            (market, Some(durability))
        }
    };

    let server = match Server::bind(
        &addr,
        market,
        ServerConfig {
            admission_per_shard: admission,
            retry_after_ms: retry_ms,
            executor_delay: None,
            durability,
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            exit(1);
        }
    };

    // First line of stdout is the discovery contract for scripts (the CI
    // net-smoke job parses the port out of it).
    println!("ssa-server listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.run();
    println!("ssa-server drained and stopped");
}
