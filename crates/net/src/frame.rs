//! Length-prefixed framing with a versioned header.
//!
//! Every message on an `ssa_net` connection travels as one frame:
//!
//! ```text
//! [ len: u32 LE ][ version: u8 ][ kind: u8 ][ request_id: u64 LE ][ payload … ]
//! ```
//!
//! `len` counts everything after itself (header tail + payload, so
//! `10 + payload.len()`); `version` is [`PROTO_VERSION`]; `kind` tags the
//! frame as a request or a response; `request_id` is chosen by the client
//! and echoed verbatim on the matching response so pipelined requests can
//! be correlated. The payload encoding is the concern of
//! [`crate::proto`] — this module only moves opaque byte vectors.
//!
//! Robustness rules (exercised by the hostile-input tests in
//! `tests/framing.rs`):
//!
//! * `len` is validated **before** any allocation: a prefix larger than
//!   [`MAX_FRAME`] is rejected with [`FrameError::TooLarge`] — a hostile
//!   peer cannot make the server allocate 4 GiB by sending five bytes.
//! * A prefix smaller than the fixed header tail is
//!   [`FrameError::TooShort`].
//! * A version or kind byte we do not understand is a typed error, never a
//!   panic.
//! * EOF cleanly between frames is `Ok(None)`; EOF mid-frame is an
//!   [`FrameError::Io`] with [`std::io::ErrorKind::UnexpectedEof`].

use std::io::{self, Read, Write};

/// Protocol version spoken by this build; peers reject anything else.
/// Version 2 added typed user attributes on `Serve`/`ServeBatch` and the
/// targeting-source field on `AddCampaign` — version-1 frames decode to
/// [`FrameError::Version`], never a panic or a misread.
pub const PROTO_VERSION: u8 = 2;

/// Hard ceiling on `len` (header tail + payload), in bytes. Large enough
/// for a `ServeBatch` of several hundred thousand queries; small enough
/// that a hostile length prefix cannot cause a huge allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Bytes of header covered by `len` ahead of the payload:
/// version (1) + kind (1) + request id (8).
pub const HEADER_TAIL: u32 = 10;

/// Whether a frame carries a request or a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Response),
            other => Err(FrameError::UnknownKind(other)),
        }
    }
}

/// A decoded frame: header fields plus the still-opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Request or response.
    pub kind: FrameKind,
    /// Client-chosen correlation id, echoed on responses.
    pub request_id: u64,
    /// Message payload; decoded by [`crate::proto`].
    pub payload: Vec<u8>,
}

/// Typed framing failure. `Io` carries only the [`std::io::ErrorKind`] so
/// the error stays `Clone + PartialEq` (the underlying `io::Error` is
/// neither).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The transport failed mid-frame (includes `UnexpectedEof` for a
    /// connection dropped inside a frame).
    Io(io::ErrorKind),
    /// The length prefix exceeded [`MAX_FRAME`]; rejected before
    /// allocating.
    TooLarge {
        /// The hostile or corrupt length prefix.
        len: u32,
        /// The configured ceiling ([`MAX_FRAME`]).
        max: u32,
    },
    /// The length prefix cannot even cover the fixed header tail.
    TooShort {
        /// The declared length.
        len: u32,
    },
    /// The peer speaks a protocol version we do not.
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The kind byte was neither request nor response.
    UnknownKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(kind) => write!(f, "transport error: {kind}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte limit")
            }
            FrameError::TooShort { len } => {
                write!(f, "frame length {len} is shorter than the frame header")
            }
            FrameError::Version { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (expected {PROTO_VERSION})"
                )
            }
            FrameError::UnknownKind(b) => write!(f, "unknown frame kind byte {b:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e.kind())
    }
}

/// Encodes a frame into a byte vector (one buffer, one `write_all` — no
/// short-write seams for a concurrent reader to observe).
pub fn encode_frame(kind: FrameKind, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let len = HEADER_TAIL + payload.len() as u32;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(PROTO_VERSION);
    buf.push(kind.to_byte());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame to `w`.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> Result<(), FrameError> {
    w.write_all(&encode_frame(kind, request_id, payload))?;
    Ok(())
}

/// Reads one frame from `r`.
///
/// Returns `Ok(None)` on a clean EOF *before* the first length byte (the
/// peer closed between frames); any other truncation is
/// `Err(FrameError::Io(UnexpectedEof))`. The length prefix is validated
/// against [`MAX_FRAME`] before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Option<RawFrame>, FrameError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    if len < HEADER_TAIL {
        return Err(FrameError::TooShort { len });
    }
    let mut head = [0u8; HEADER_TAIL as usize];
    r.read_exact(&mut head)?;
    let version = head[0];
    if version != PROTO_VERSION {
        return Err(FrameError::Version { got: version });
    }
    let kind = FrameKind::from_byte(head[1])?;
    let request_id = u64::from_le_bytes(head[2..10].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; (len - HEADER_TAIL) as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(RawFrame {
        kind,
        request_id,
        payload,
    }))
}

enum ReadOutcome {
    Filled,
    CleanEof,
}

/// `read_exact`, except EOF before the *first* byte is a clean outcome
/// rather than an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanEof),
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let buf = encode_frame(FrameKind::Request, 42, b"hello");
        let frame = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(
            frame,
            RawFrame {
                kind: FrameKind::Request,
                request_id: 42,
                payload: b"hello".to_vec(),
            }
        );
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut [].as_slice()), Ok(None));
    }

    #[test]
    fn truncated_header_is_unexpected_eof() {
        let buf = encode_frame(FrameKind::Response, 1, b"abc");
        for cut in 1..buf.len() {
            assert_eq!(
                read_frame(&mut buf[..cut].to_vec().as_slice()),
                Err(FrameError::Io(io::ErrorKind::UnexpectedEof)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::TooLarge {
                len: u32::MAX,
                max: MAX_FRAME
            })
        );
    }

    #[test]
    fn undersized_prefix_rejected() {
        let buf = 3u32.to_le_bytes().to_vec();
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::TooShort { len: 3 })
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = encode_frame(FrameKind::Request, 7, b"");
        buf[4] = 99;
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Version { got: 99 })
        );
        // A well-formed frame from the pre-targeting protocol (version 1)
        // is a typed rejection too, not a misread of the new layout.
        buf[4] = 1;
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Version { got: 1 })
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = encode_frame(FrameKind::Request, 7, b"");
        buf[5] = 7;
        assert_eq!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::UnknownKind(7))
        );
    }
}
