//! Per-connection session registry.
//!
//! Every accepted connection becomes a [`Session`] with a server-assigned
//! id (reported in [`crate::proto::Response::Pong`] and usable for
//! tracing), the peer address, and a request counter. The registry keeps
//! a clone of each connection's [`TcpStream`] so graceful shutdown can
//! half-close the **read** side of every live connection at once: readers
//! see EOF and stop producing work, while writer threads keep flushing
//! responses for requests already in flight — the drain half of the
//! shutdown contract.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One live connection's identity and counters.
#[derive(Debug)]
pub struct Session {
    /// Server-assigned id, unique for the server's lifetime.
    pub id: u64,
    /// Peer address the connection arrived from.
    pub peer: Option<SocketAddr>,
    stream: TcpStream,
    requests: AtomicU64,
}

impl Session {
    /// Requests this session has submitted (any plane, admitted or not).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Bumps the per-session request counter.
    pub fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }
}

/// Registry of live sessions; shared between the accept loop, the
/// connection threads, and graceful shutdown.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    ever: AtomicU64,
    active: Mutex<HashMap<u64, Arc<Session>>>,
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(SessionRegistry::default())
    }

    /// Registers a freshly accepted connection, assigning its session id.
    /// The registry keeps a clone of the stream for shutdown signalling.
    pub fn register(&self, stream: &TcpStream) -> std::io::Result<Arc<Session>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.ever.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id,
            peer: stream.peer_addr().ok(),
            stream: stream.try_clone()?,
            requests: AtomicU64::new(0),
        });
        self.active
            .lock()
            .expect("session registry poisoned")
            .insert(id, Arc::clone(&session));
        Ok(session)
    }

    /// Removes a closed connection from the registry.
    pub fn unregister(&self, id: u64) {
        self.active
            .lock()
            .expect("session registry poisoned")
            .remove(&id);
    }

    /// Sessions currently connected.
    pub fn active_count(&self) -> usize {
        self.active.lock().expect("session registry poisoned").len()
    }

    /// Sessions ever accepted.
    pub fn total_count(&self) -> u64 {
        self.ever.load(Ordering::Relaxed)
    }

    /// Half-closes the read side of every live connection: each reader
    /// thread sees EOF at its next frame boundary and submits nothing
    /// more, while responses already queued still flush out the write
    /// side. Errors are ignored — a racing disconnect achieves the goal.
    pub fn shutdown_reads(&self) {
        let sessions = self.active.lock().expect("session registry poisoned");
        for session in sessions.values() {
            let _ = session.stream.shutdown(Shutdown::Read);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn ids_are_unique_and_counts_track_lifecycle() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let registry = SessionRegistry::new();

        let _c1 = TcpStream::connect(addr).expect("connect");
        let (s1, _) = listener.accept().expect("accept");
        let _c2 = TcpStream::connect(addr).expect("connect");
        let (s2, _) = listener.accept().expect("accept");

        let a = registry.register(&s1).expect("register");
        let b = registry.register(&s2).expect("register");
        assert_ne!(a.id, b.id);
        assert_eq!(registry.active_count(), 2);
        assert_eq!(registry.total_count(), 2);

        a.note_request();
        a.note_request();
        assert_eq!(a.requests(), 2);

        registry.unregister(a.id);
        assert_eq!(registry.active_count(), 1);
        assert_eq!(registry.total_count(), 2, "ever-count is monotonic");
    }
}
