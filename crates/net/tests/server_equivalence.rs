//! The serving contract: a seeded Section V stream served over a socket
//! is bit-identical — winners, clicks, purchases, charges, and the
//! floating-point expected-revenue aggregates — to the same stream served
//! in process through `ShardedMarketplace`.

use ssa_bidlang::Money;
use ssa_core::marketplace::QueryRequest;
use ssa_core::{CampaignId, PricingScheme, WdMethod};
use ssa_net::client::Client;
use ssa_net::load::{local_twin, market_config_for};
use ssa_net::proto::BatchSummary;
use ssa_net::server::{Server, ServerConfig, ServerHandle};
use ssa_net::{populate_remote, MarketConfig};
use ssa_workload::{SectionVConfig, SectionVWorkload};

fn small_config() -> SectionVConfig {
    SectionVConfig {
        num_advertisers: 25,
        num_slots: 5,
        num_keywords: 8,
        seed: 0xC0FFEE,
    }
}

/// Spawns a server on a fresh port with a throwaway initial marketplace
/// (every test reconfigures it over the wire anyway).
fn spawn_server() -> ServerHandle {
    let market = ssa_core::Marketplace::builder()
        .slots(1)
        .keywords(1)
        .default_click_probs(vec![0.1])
        .build_sharded(1)
        .expect("valid bootstrap marketplace");
    Server::bind("127.0.0.1:0", market, ServerConfig::default())
        .expect("bind")
        .spawn()
}

fn setup(
    config: &SectionVConfig,
    shards: usize,
) -> (ServerHandle, Client, SectionVWorkload, MarketConfig) {
    let workload = SectionVWorkload::generate(*config);
    let market_config =
        market_config_for(config, WdMethod::Reduced, PricingScheme::Gsp, shards, false);
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    client.configure(&market_config).expect("configure");
    populate_remote(&mut client, &workload).expect("populate");
    (server, client, workload, market_config)
}

/// Serve-by-serve equivalence, with control-plane mutations applied
/// mid-stream to both sides: every wire-served auction equals the
/// in-process auction, including raw `expected_revenue` bits.
#[test]
fn wire_serves_match_in_process_with_mid_stream_mutations() {
    let config = small_config();
    let (server, mut client, workload, market_config) = setup(&config, 3);
    let mut twin = local_twin(&workload, &market_config);

    let stream: Vec<usize> = workload.query_stream.iter().take(240).copied().collect();
    for (i, &keyword) in stream.iter().enumerate() {
        match i {
            60 => {
                // Raise one campaign's bid on both sides.
                let id = CampaignId::from_parts(keyword, 3);
                let bid = Money::from_cents(4_200);
                client.update_bid(id, bid).expect("remote update_bid");
                twin.update_bid(id, bid).expect("local update_bid");
            }
            100 => {
                // Pause a campaign and give another an ROI target.
                let paused = CampaignId::from_parts(keyword, 0);
                client.pause_campaign(paused).expect("remote pause");
                twin.pause_campaign(paused).expect("local pause");
                let targeted = CampaignId::from_parts(keyword, 5);
                client
                    .set_roi_target(targeted, Some(1.5))
                    .expect("remote roi");
                twin.set_roi_target(targeted, Some(1.5)).expect("local roi");
            }
            180 => {
                let resumed = CampaignId::from_parts(keyword, 0);
                client.resume_campaign(resumed).expect("remote resume");
                twin.resume_campaign(resumed).expect("local resume");
            }
            _ => {}
        }

        let remote = client.serve(keyword).expect("remote serve");
        let local = twin.serve(QueryRequest::new(keyword)).expect("local serve");
        assert_eq!(
            remote.expected_revenue.to_bits(),
            local.expected_revenue.to_bits(),
            "expected_revenue bits diverged at query {i} (keyword {keyword})"
        );
        assert_eq!(remote, local, "auction diverged at query {i}");
    }

    // The control-plane view agrees too: same top bids, same order.
    for keyword in 0..config.num_keywords {
        let remote_bids = client.top_bids(keyword, 6).expect("remote top_bids");
        let local_bids = twin.top_bids(keyword, 6).expect("local top_bids");
        assert_eq!(remote_bids, local_bids, "top_bids diverged on {keyword}");
    }

    client.shutdown_server().expect("graceful shutdown");
    server.join();
}

/// One wire `ServeBatch` over the full Section V stream equals the
/// in-process `serve_batch` aggregate, bit for bit — and the twin's shard
/// count does not matter, thanks to keyword-local RNG.
#[test]
fn wire_batch_matches_in_process_at_any_shard_count() {
    let config = small_config();
    let (server, mut client, workload, market_config) = setup(&config, 4);

    let stream: Vec<usize> = workload.query_stream.clone();
    let remote = client.serve_batch(&stream).expect("remote serve_batch");

    for twin_shards in [1usize, 2, 4] {
        let twin_config = MarketConfig {
            shards: twin_shards as u64,
            ..market_config.clone()
        };
        let mut twin = local_twin(&workload, &twin_config);
        let requests: Vec<QueryRequest> = stream.iter().map(|&kw| QueryRequest::new(kw)).collect();
        let report = twin.serve_batch(&requests).expect("local serve_batch");
        let local = BatchSummary::from_report(&report);

        assert_eq!(
            remote.expected_revenue.to_bits(),
            local.expected_revenue.to_bits(),
            "aggregate expected_revenue bits diverged at {twin_shards} twin shards"
        );
        assert_eq!(remote, local, "batch diverged at {twin_shards} twin shards");
    }

    // Server-side counters observed the batch.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.auctions, stream.len() as u64);
    assert_eq!(stats.keywords, config.num_keywords as u64);
    assert_eq!(stats.shards, 4);
    assert_eq!(
        stats.advertisers, config.num_advertisers as u64,
        "every Section V advertiser registered over the wire"
    );

    client.shutdown_server().expect("graceful shutdown");
    server.join();
}

/// `Configure` rebuilds the marketplace from scratch: serving the same
/// stream after a reconfigure reproduces the original outcomes exactly.
#[test]
fn reconfigure_resets_to_a_reproducible_market() {
    let config = small_config();
    let (server, mut client, workload, market_config) = setup(&config, 2);

    let stream: Vec<usize> = workload.query_stream.iter().take(64).copied().collect();
    let first: Vec<_> = stream
        .iter()
        .map(|&kw| client.serve(kw).expect("first pass"))
        .collect();

    // Rebuild + repopulate: the same auctions come out again.
    client.configure(&market_config).expect("reconfigure");
    populate_remote(&mut client, &workload).expect("repopulate");
    for (i, &kw) in stream.iter().enumerate() {
        let again = client.serve(kw).expect("second pass");
        assert_eq!(again, first[i], "replay diverged at query {i}");
    }

    client.shutdown_server().expect("graceful shutdown");
    server.join();
}
