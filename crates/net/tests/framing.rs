//! Property tests for the framing + proto layers: every message type
//! round-trips bit-exactly, and hostile inputs (truncations, oversized
//! length prefixes, unknown tags, random bytes) produce typed errors —
//! never a panic, never an attacker-sized allocation.

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

use ssa_core::{AttrValue, PricingScheme, UserAttrs, WdMethod};
use ssa_net::frame::{
    encode_frame, read_frame, FrameError, FrameKind, HEADER_TAIL, MAX_FRAME, PROTO_VERSION,
};
use ssa_net::proto::{
    BatchSummary, ErrorCode, MarketConfig, ProtoError, Request, Response, ServerStats, WireAuction,
    WirePlacement,
};

fn arb_method() -> BoxedStrategy<WdMethod> {
    prop_oneof![
        Just(WdMethod::Lp),
        Just(WdMethod::Hungarian),
        Just(WdMethod::Reduced),
        (1usize..8).prop_map(WdMethod::ReducedParallel),
    ]
    .boxed()
}

fn arb_pricing() -> BoxedStrategy<PricingScheme> {
    prop_oneof![
        Just(PricingScheme::PayYourBid),
        Just(PricingScheme::Gsp),
        Just(PricingScheme::Vickrey),
    ]
    .boxed()
}

fn arb_config() -> BoxedStrategy<MarketConfig> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (arb_method(), arb_pricing(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((slots, keywords, seed, shards), (method, pricing, pruned, warm_start))| {
                MarketConfig {
                    slots,
                    keywords,
                    seed,
                    method,
                    pricing,
                    shards,
                    pruned,
                    warm_start,
                }
            },
        )
        .boxed()
}

fn arb_attr_value() -> BoxedStrategy<AttrValue> {
    prop_oneof![
        any::<i64>().prop_map(AttrValue::Int),
        ".{0,12}".prop_map(AttrValue::Str),
    ]
    .boxed()
}

fn arb_attrs() -> BoxedStrategy<UserAttrs> {
    vec(("[a-z_]{1,10}", arb_attr_value()), 0..5)
        .prop_map(|kv| kv.into_iter().collect::<UserAttrs>())
        .boxed()
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        (any::<u64>(), arb_attrs()).prop_map(|(keyword, attrs)| Request::Serve { keyword, attrs }),
        vec((any::<u64>(), arb_attrs()), 0..50).prop_map(|queries| Request::ServeBatch { queries }),
        ".{0,40}".prop_map(|name| Request::RegisterAdvertiser { name }),
        (
            (any::<u64>(), any::<u64>(), any::<i64>(), any::<i64>()),
            (
                option::of(any::<f64>()),
                option::of(vec(any::<f64>(), 0..16)),
                option::of(".{0,40}"),
            ),
        )
            .prop_map(
                |(
                    (advertiser, keyword, bid_cents, click_value_cents),
                    (roi_target, click_probs, targeting),
                )| {
                    Request::AddCampaign {
                        advertiser,
                        keyword,
                        bid_cents,
                        click_value_cents,
                        roi_target,
                        click_probs,
                        targeting,
                    }
                }
            ),
        (any::<u64>(), any::<u64>(), any::<i64>()).prop_map(|(keyword, index, bid_cents)| {
            Request::UpdateBid {
                keyword,
                index,
                bid_cents,
            }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(keyword, index)| Request::PauseCampaign { keyword, index }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(keyword, index)| Request::ResumeCampaign { keyword, index }),
        (any::<u64>(), any::<u64>(), option::of(any::<f64>())).prop_map(
            |(keyword, index, target)| Request::SetRoiTarget {
                keyword,
                index,
                target,
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(keyword, limit)| Request::TopBids { keyword, limit }),
        Just(Request::Stats),
        arb_config().prop_map(Request::Configure),
        Just(Request::Shutdown),
    ]
    .boxed()
}

fn arb_placement() -> BoxedStrategy<WirePlacement> {
    (
        (any::<u16>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<bool>(), any::<i64>()),
    )
        .prop_map(
            |(
                (slot_position, campaign_keyword, campaign_index, advertiser),
                (clicked, purchased, charge_cents),
            )| WirePlacement {
                slot_position,
                campaign_keyword,
                campaign_index,
                advertiser,
                clicked,
                purchased,
                charge_cents,
            },
        )
        .boxed()
}

fn arb_auction() -> BoxedStrategy<WireAuction> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<f64>(),
        any::<i64>(),
        vec(arb_placement(), 0..6),
        vec((any::<u64>(), any::<u64>(), any::<i64>()), 0..6),
    )
        .prop_map(
            |(keyword, time, expected_revenue, realized_cents, placements, charges)| WireAuction {
                keyword,
                time,
                expected_revenue,
                realized_cents,
                placements,
                charges,
            },
        )
        .boxed()
}

fn arb_error_code() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::UnknownAdvertiser),
        Just(ErrorCode::UnknownKeyword),
        Just(ErrorCode::UnknownCampaign),
        Just(ErrorCode::ModelDimension),
        Just(ErrorCode::InvalidProbability),
        Just(ErrorCode::MissingClickModel),
        Just(ErrorCode::NotIncremental),
        Just(ErrorCode::NegativeBid),
        Just(ErrorCode::InvalidRoiTarget),
        Just(ErrorCode::InvalidConfig),
        Just(ErrorCode::ShuttingDown),
        Just(ErrorCode::Unsupported),
        Just(ErrorCode::InvalidTargeting),
    ]
    .boxed()
}

fn arb_stats() -> BoxedStrategy<ServerStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (advertisers, campaigns, keywords, slots),
                (shards, auctions, sessions, requests, overloaded),
                (wal_records, snapshot_seq),
            )| ServerStats {
                advertisers,
                campaigns,
                keywords,
                slots,
                shards,
                auctions,
                sessions,
                requests,
                overloaded,
                wal_records,
                snapshot_seq,
            },
        )
        .boxed()
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), any::<u8>()).prop_map(|(session, proto_version)| Response::Pong {
            session,
            proto_version,
        }),
        arb_auction().prop_map(Response::Served),
        (
            (any::<u64>(), any::<f64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<i64>(), any::<u64>()),
        )
            .prop_map(
                |(
                    (auctions, expected_revenue, filled_slots),
                    (clicks, purchases, realized_cents, chunks),
                )| {
                    Response::BatchServed(BatchSummary {
                        auctions,
                        expected_revenue,
                        filled_slots,
                        clicks,
                        purchases,
                        realized_cents,
                        chunks,
                    })
                }
            ),
        any::<u64>().prop_map(|advertiser| Response::AdvertiserRegistered { advertiser }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(keyword, index)| Response::CampaignAdded { keyword, index }),
        Just(Response::Ack),
        vec((any::<u64>(), any::<u64>(), any::<i64>()), 0..12)
            .prop_map(|bids| Response::TopBids { bids }),
        arb_stats().prop_map(Response::Stats),
        (arb_error_code(), ".{0,60}")
            .prop_map(|(code, message)| Response::Failed { code, message }),
        any::<u32>().prop_map(|retry_after_ms| Response::Overloaded { retry_after_ms }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request round-trips bit-exactly through its payload encoding
    /// AND through the full framing layer.
    #[test]
    fn requests_round_trip(request in arb_request(), request_id in any::<u64>()) {
        let payload = request.encode();
        prop_assert_eq!(Request::decode(&payload).as_ref(), Ok(&request));

        let framed = encode_frame(FrameKind::Request, request_id, &payload);
        let frame = read_frame(&mut framed.as_slice()).unwrap().unwrap();
        prop_assert_eq!(frame.kind, FrameKind::Request);
        prop_assert_eq!(frame.request_id, request_id);
        prop_assert_eq!(Request::decode(&frame.payload), Ok(request));
    }

    /// Every response round-trips bit-exactly (f64 fields travel as raw
    /// bits, so PartialEq on the decoded value is a bit-level check for
    /// every generated finite float).
    #[test]
    fn responses_round_trip(response in arb_response(), request_id in any::<u64>()) {
        let payload = response.encode();
        prop_assert_eq!(Response::decode(&payload).as_ref(), Ok(&response));

        let framed = encode_frame(FrameKind::Response, request_id, &payload);
        let frame = read_frame(&mut framed.as_slice()).unwrap().unwrap();
        prop_assert_eq!(Response::decode(&frame.payload), Ok(response));
    }

    /// Truncating a valid message payload anywhere yields a typed error —
    /// decoding is left-to-right with mandatory full consumption, so a
    /// strict prefix always ends mid-field.
    #[test]
    fn truncated_payloads_are_typed_errors(request in arb_request(), frac in 0.0f64..1.0) {
        let payload = request.encode();
        if payload.len() > 1 {
            let cut = 1 + ((payload.len() - 1) as f64 * frac) as usize;
            if cut < payload.len() {
                prop_assert!(Request::decode(&payload[..cut]).is_err());
            }
        }
    }

    /// Arbitrary bytes never panic a decoder; they either parse or come
    /// back as a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// A length prefix beyond MAX_FRAME is rejected as TooLarge before any
    /// allocation, whatever bytes follow it.
    #[test]
    fn oversized_length_prefixes_rejected(
        len in (MAX_FRAME + 1)..=u32::MAX,
        tail in vec(any::<u8>(), 0..32),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::TooLarge { len, max: MAX_FRAME })
        );
    }

    /// Unknown message tags are typed ProtoErrors, on both sides of the
    /// protocol.
    #[test]
    fn unknown_tags_are_typed(tag in 13u8..=255, tail in vec(any::<u8>(), 0..32)) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(
            Request::decode(&bytes),
            Err(ProtoError::UnknownTag { what: "request", tag })
        );
        prop_assert_eq!(
            Response::decode(&bytes),
            Err(ProtoError::UnknownTag { what: "response", tag })
        );
    }

    /// A corrupted version byte inside an otherwise valid frame is a typed
    /// Version error.
    #[test]
    fn version_mismatch_is_typed(version in any::<u8>(), payload in vec(any::<u8>(), 0..64)) {
        let mut framed = encode_frame(FrameKind::Request, 1, &payload);
        framed[4] = version;
        let result = read_frame(&mut framed.as_slice());
        if version == PROTO_VERSION {
            prop_assert!(result.is_ok());
        } else {
            prop_assert_eq!(result, Err(FrameError::Version { got: version }));
        }
    }

    /// Trailing garbage after a complete message is a typed error, not a
    /// silent accept.
    #[test]
    fn trailing_bytes_are_typed(request in arb_request(), extra in 1usize..16) {
        let mut payload = request.encode();
        payload.extend(std::iter::repeat_n(0u8, extra));
        prop_assert_eq!(
            Request::decode(&payload),
            Err(ProtoError::Trailing { extra })
        );
    }
}

/// The count guard exercised at the exact boundary: a ServeBatch whose
/// claimed count matches its bytes parses; one claimed element more is a
/// typed error, not a huge allocation.
#[test]
fn count_guard_boundary() {
    let queries: Vec<(u64, UserAttrs)> = (0..16).map(|kw| (kw, UserAttrs::new())).collect();
    let request = Request::ServeBatch { queries };
    let mut payload = request.encode();
    assert_eq!(Request::decode(&payload), Ok(request));
    // Bump the count field (bytes 1..5) by one: it now claims more
    // elements than the payload carries.
    let claimed = u32::from_le_bytes(payload[1..5].try_into().unwrap()) + 1;
    payload[1..5].copy_from_slice(&claimed.to_le_bytes());
    assert!(matches!(
        Request::decode(&payload),
        Err(ProtoError::Oversized { .. }) | Err(ProtoError::Truncated { .. })
    ));
}

/// A count field claiming u32::MAX elements is rejected up front by the
/// count × element-size guard — decoding must not try to allocate.
#[test]
fn hostile_count_rejected_before_allocation() {
    let mut payload = vec![2u8]; // ServeBatch tag
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        Request::decode(&payload),
        Err(ProtoError::Oversized {
            what: "serve-batch queries",
            len: u32::MAX as u64,
        })
    );
}

/// Frame lengths shorter than the header tail are rejected with the
/// declared length, not a slicing panic.
#[test]
fn short_header_lengths_rejected() {
    for len in 0..HEADER_TAIL {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&vec![0u8; len as usize]);
        assert_eq!(
            read_frame(&mut bytes.as_slice()),
            Err(FrameError::TooShort { len }),
            "len={len}"
        );
    }
}
