//! Backpressure and graceful-shutdown behaviour: saturating the bounded
//! admission queue yields typed `Overloaded` responses (counted in
//! `Stats`) while every admitted request still completes, and `Shutdown`
//! drains in-flight work instead of dropping it.

use std::time::Duration;

use ssa_bidlang::Money;
use ssa_net::client::{Client, NetError};
use ssa_net::proto::{Request, Response};
use ssa_net::server::{Server, ServerConfig, ServerHandle};

/// One keyword, one slot: every data-plane request lands on the same
/// admission lane, so the saturation arithmetic is exact.
fn spawn_tiny_server(config: ServerConfig) -> ServerHandle {
    let market = ssa_core::Marketplace::builder()
        .slots(1)
        .keywords(1)
        .seed(9)
        .default_click_probs(vec![0.5])
        .build_sharded(1)
        .expect("valid marketplace");
    Server::bind("127.0.0.1:0", market, config)
        .expect("bind")
        .spawn()
}

fn populate_one_campaign(client: &mut Client) {
    let advertiser = client.register_advertiser("overloader").expect("register");
    client
        .add_campaign(
            advertiser,
            0,
            Money::from_cents(30),
            Money::from_cents(90),
            None,
            None,
        )
        .expect("campaign accepted");
}

/// Saturate the admission lane with pipelined serves: exactly `cap`
/// requests are admitted and completed, the rest come back as typed
/// `Overloaded` carrying the configured retry hint, and `Stats` accounts
/// for both populations.
#[test]
fn saturation_yields_typed_overloaded_and_admitted_work_completes() {
    let cap = 3usize;
    let total = 12usize;
    let retry_hint = 7u32;
    let server = spawn_tiny_server(ServerConfig {
        admission_per_shard: cap,
        retry_after_ms: retry_hint,
        // Pin the first admitted job in the executor long enough for the
        // reader to classify all 12 pipelined requests first.
        executor_delay: Some(Duration::from_millis(150)),
        durability: None,
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    populate_one_campaign(&mut client);

    // Pipeline without reading: the reader thread admits or refuses each
    // frame long before the delayed executor finishes the first job.
    let mut pending = Vec::new();
    for _ in 0..total {
        pending.push(
            client
                .send_request(&Request::Serve {
                    keyword: 0,
                    attrs: Default::default(),
                })
                .expect("send"),
        );
    }

    let mut served = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..total {
        let (id, response) = client.read_response().expect("response");
        assert!(pending.contains(&id), "unknown request id {id}");
        match response {
            Response::Served(auction) => {
                assert_eq!(auction.keyword, 0);
                served += 1;
            }
            Response::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, retry_hint, "retry hint travels verbatim");
                overloaded += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(served, cap, "exactly the admitted requests were served");
    assert_eq!(overloaded, total - cap, "the rest were refused, not queued");

    // Stats separates executed work from refusals.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.auctions, cap as u64);
    assert_eq!(stats.overloaded, (total - cap) as u64);

    // The lane drained with the tickets: new serves are admitted again.
    let auction = client.serve(0).expect("post-saturation serve");
    assert_eq!(auction.time, cap as u64 + 1);

    client.shutdown_server().expect("graceful shutdown");
    server.join();
}

/// Shutdown drains: requests already admitted when the shutdown lands are
/// completed and their responses flushed before the connection closes.
#[test]
fn shutdown_completes_in_flight_requests() {
    let backlog = 3usize;
    let server = spawn_tiny_server(ServerConfig {
        admission_per_shard: 64,
        retry_after_ms: 1,
        executor_delay: Some(Duration::from_millis(100)),
        durability: None,
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    populate_one_campaign(&mut client);

    let mut pending = Vec::new();
    for _ in 0..backlog {
        pending.push(
            client
                .send_request(&Request::Serve {
                    keyword: 0,
                    attrs: Default::default(),
                })
                .expect("send"),
        );
    }
    // Let the reader submit the backlog before the shutdown arrives; the
    // delayed executor guarantees the jobs are still queued or in flight.
    std::thread::sleep(Duration::from_millis(30));

    let mut other = Client::connect(server.addr()).expect("second connection");
    other.shutdown_server().expect("shutdown acknowledged");

    // Every admitted request is answered despite the shutdown.
    for expected_id in pending {
        let (id, response) = client.read_response().expect("drained response");
        assert_eq!(id, expected_id, "responses drain in submission order");
        match response {
            Response::Served(auction) => assert_eq!(auction.keyword, 0),
            bad => panic!("in-flight request dropped: {bad:?}"),
        }
    }

    // After the drain the server closes the connection cleanly.
    match client.read_response() {
        Err(NetError::Disconnected) => {}
        other => panic!("expected a clean close after drain, got {other:?}"),
    }

    server.join();
}
