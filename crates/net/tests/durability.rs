//! Server-level durability: a journalled server's full lifecycle —
//! `Configure` over the wire (journal transfer), population, serving,
//! shutdown, recovery into a fresh server — produces a marketplace that
//! stays bit-identical to an in-process twin across the restart.

use ssa_bidlang::Money;
use ssa_core::{QueryRequest, ShardedMarketplace};
use ssa_durable::{Durability, FsyncPolicy};
use ssa_net::client::Client;
use ssa_net::proto::MarketConfig;
use ssa_net::server::{build_market, Server, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};

fn temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("ssa-net-durability-{}", std::process::id()))
}

fn wire_config() -> MarketConfig {
    MarketConfig {
        slots: 2,
        keywords: 6,
        seed: 777,
        method: ssa_core::WdMethod::Reduced,
        pricing: ssa_core::PricingScheme::Gsp,
        shards: 2,
        pruned: false,
        warm_start: true,
    }
}

fn boot(dir: &Path, boot_config: &MarketConfig) -> (ServerHandle, Durability) {
    let (recovered, durability) =
        Durability::open(dir, FsyncPolicy::Off, 0).expect("open data dir");
    let market = match recovered {
        Some((market, _report)) => market,
        None => {
            let market = build_market(boot_config).expect("valid config");
            durability
                .log_configure(&market.capture_state().expect("journalable").config)
                .expect("configure logged");
            market
        }
    };
    let server = Server::bind(
        "127.0.0.1:0",
        market,
        ServerConfig {
            durability: Some(durability.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
    .spawn();
    (server, durability)
}

/// Drives the same population + queries against a client and the twin.
fn populate(client: &mut Client, twin: &mut ShardedMarketplace) {
    let remote_a = client.register_advertiser("a").expect("register");
    let local_a = twin.register_advertiser("a");
    assert_eq!(remote_a.index(), local_a.index());
    let remote_b = client.register_advertiser("b").expect("register");
    let local_b = twin.register_advertiser("b");
    // The wire-configured market has no default click model, so every
    // campaign carries its own per-slot probabilities.
    let probs = vec![0.55, 0.25];
    for kw in 0..6 {
        let (bid, value) = (Money::from_cents(30 + kw as i64), Money::from_cents(90));
        let remote_id = client
            .add_campaign(remote_a, kw, bid, value, None, Some(probs.clone()))
            .expect("campaign");
        let local_id = twin
            .add_campaign(
                local_a,
                kw,
                ssa_core::CampaignSpec::per_click(bid)
                    .click_value(value)
                    .click_probs(probs.clone()),
            )
            .expect("campaign");
        assert_eq!(remote_id, local_id);
        client
            .add_campaign(
                remote_b,
                kw,
                Money::from_cents(45),
                Money::from_cents(120),
                Some(1.3),
                Some(probs.clone()),
            )
            .expect("campaign");
        twin.add_campaign(
            local_b,
            kw,
            ssa_core::CampaignSpec::per_click(Money::from_cents(45))
                .click_value(Money::from_cents(120))
                .roi_target(1.3)
                .click_probs(probs.clone()),
        )
        .expect("campaign");
    }
}

fn serve_both(client: &mut Client, twin: &mut ShardedMarketplace, queries: usize) {
    for t in 0..queries {
        let kw = (t * 5 + 1) % 6;
        let remote = client.serve(kw).expect("serve");
        let local = twin.serve(QueryRequest::new(kw)).expect("serve");
        assert_eq!(
            remote.expected_revenue.to_bits(),
            local.expected_revenue.to_bits(),
            "revenue bits diverged at query {t}"
        );
        assert_eq!(remote, local, "divergence at query {t}");
    }
}

#[test]
fn server_restart_recovers_bit_identically() {
    let dir = temp_dir();
    let _ = std::fs::remove_dir_all(&dir);

    // Boot flags deliberately differ from the wire Configure, so recovery
    // must restore the *configured* marketplace, not the boot one.
    let boot_config = MarketConfig {
        keywords: 3,
        shards: 1,
        ..wire_config()
    };

    let (server, durability) = boot(&dir, &boot_config);
    let mut client = Client::connect(server.addr()).expect("connect");
    client.configure(&wire_config()).expect("configure");
    let mut twin = build_market(&wire_config()).expect("twin");
    populate(&mut client, &mut twin);
    serve_both(&mut client, &mut twin, 60);

    let stats = client.stats().expect("stats");
    // Boot configure + wire configure + 2 registers + 12 campaigns + 60.
    assert_eq!(stats.wal_records, 76);
    assert_eq!(stats.snapshot_seq, 0);
    assert_eq!(stats.wal_records, durability.wal_records());

    client.shutdown_server().expect("graceful shutdown");
    server.join();
    drop(durability);

    // Restart from the same directory: no Configure, no population —
    // everything comes back from the log, including RNG positions.
    let (server, durability) = boot(&dir, &boot_config);
    let mut client = Client::connect(server.addr()).expect("connect");
    serve_both(&mut client, &mut twin, 40);
    for kw in 0..6 {
        assert_eq!(
            client.top_bids(kw, 16).expect("top bids"),
            twin.top_bids(kw, 16).expect("top bids"),
            "top-bid divergence at keyword {kw}"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.wal_records, 116);
    assert_eq!(stats.auctions, 100);

    // A snapshot taken now compacts the log; the next restart recovers
    // from it alone.
    let market_state_seq = durability.wal_records();
    client.shutdown_server().expect("graceful shutdown");
    server.join();
    assert_eq!(market_state_seq, 116);

    let recovered = ssa_durable::recover(&dir)
        .expect("recover")
        .expect("state persisted");
    assert_eq!(
        recovered.0.capture_state().expect("journalable"),
        twin.capture_state().expect("journalable")
    );
    std::fs::remove_dir_all(&dir).ok();
}
