//! End-to-end recovery equivalence: random marketplaces, random mixed
//! mutation/serve streams, a snapshot taken at a random point (or not at
//! all), and a crash at a random byte of the live WAL segment. The
//! recovered marketplace must be **bit-identical** to a fresh marketplace
//! that applied the same acknowledged prefix — same stored bids, same
//! `top_bids`, same clock, same next-auction outcomes — at shard counts
//! 1, 2, and 4.

use proptest::prelude::*;
use ssa_bidlang::Money;
use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::AdvertiserHandle;
use ssa_durable::{recover, Durability, FsyncPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
enum Op {
    Serve(usize),
    ServeBatch(Vec<usize>),
    Register(String),
    AddCampaign {
        adv: usize,
        kw: usize,
        cents: i64,
        roi: Option<f64>,
    },
    UpdateBid {
        nth: usize,
        cents: i64,
    },
    Pause {
        nth: usize,
    },
    Resume {
        nth: usize,
    },
    SetRoi {
        nth: usize,
        target: Option<f64>,
    },
}

#[derive(Debug, Clone)]
struct Scenario {
    keywords: usize,
    slots: usize,
    seed: u64,
    ops: Vec<Op>,
    /// Take a snapshot after this many ops (None: never).
    snapshot_after: Option<usize>,
    /// Picks the crash byte within the live segment.
    crash_salt: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..=7,
        1usize..=3,
        0u64..100_000,
        4usize..=36,
        any::<bool>(),
        0u64..u64::MAX,
    )
        .prop_map(|(keywords, slots, seed, num_ops, snapshot, crash_salt)| {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            let mut advertisers = 2usize;
            let mut campaigns = 2usize;
            let ops = (0..num_ops)
                .map(|_| match next(10) {
                    0 => {
                        advertisers += 1;
                        Op::Register(format!("adv-{advertisers}"))
                    }
                    1 => {
                        campaigns += 1;
                        Op::AddCampaign {
                            adv: next(advertisers as u64) as usize,
                            kw: next(keywords as u64) as usize,
                            cents: next(95) as i64,
                            roi: if next(3) == 0 { Some(1.2) } else { None },
                        }
                    }
                    2 => Op::UpdateBid {
                        nth: next(campaigns as u64) as usize,
                        cents: next(95) as i64,
                    },
                    3 => Op::Pause {
                        nth: next(campaigns as u64) as usize,
                    },
                    4 => Op::Resume {
                        nth: next(campaigns as u64) as usize,
                    },
                    5 => Op::SetRoi {
                        nth: next(campaigns as u64) as usize,
                        target: if next(2) == 0 { None } else { Some(1.5) },
                    },
                    6 => Op::ServeBatch(
                        (0..1 + next(6) as usize)
                            .map(|_| next(keywords as u64) as usize)
                            .collect(),
                    ),
                    _ => Op::Serve(next(keywords as u64) as usize),
                })
                .collect::<Vec<_>>();
            let snapshot_after = snapshot.then(|| next(num_ops as u64) as usize);
            Scenario {
                keywords,
                slots,
                seed,
                ops,
                snapshot_after,
                crash_salt,
            }
        })
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ssa-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn build_market(s: &Scenario, shards: usize) -> ShardedMarketplace {
    let builder = Marketplace::builder()
        .slots(s.slots)
        .keywords(s.keywords)
        .seed(s.seed)
        .default_click_probs((0..s.slots).map(|j| 0.75 / (j + 1) as f64).collect())
        .default_purchase_probs((0..s.slots).map(|j| (0.15 / (j + 1) as f64, 0.0)).collect());
    ShardedMarketplace::new(builder, shards).unwrap()
}

fn prologue(market: &mut ShardedMarketplace, ids: &mut Vec<ssa_core::CampaignId>) {
    let a = market.register_advertiser("adv-1");
    let b = market.register_advertiser("adv-2");
    ids.push(
        market
            .add_campaign(
                a,
                0,
                CampaignSpec::per_click(Money::from_cents(40)).click_value(Money::from_cents(90)),
            )
            .unwrap(),
    );
    ids.push(
        market
            .add_campaign(
                b,
                0,
                CampaignSpec::per_click(Money::from_cents(60)).click_value(Money::from_cents(120)),
            )
            .unwrap(),
    );
}

/// Number of WAL records one op produces (always 1 in the current
/// protocol, kept as a function so the accounting survives format
/// changes).
fn records_of(_op: &Op) -> usize {
    1
}

fn apply_op(market: &mut ShardedMarketplace, ids: &mut Vec<ssa_core::CampaignId>, op: &Op) {
    match op {
        Op::Serve(kw) => {
            market.serve(QueryRequest::new(*kw)).unwrap();
        }
        Op::ServeBatch(kws) => {
            let requests: Vec<QueryRequest> = kws.iter().map(|&kw| QueryRequest::new(kw)).collect();
            market.serve_batch(&requests).unwrap();
        }
        Op::Register(name) => {
            market.register_advertiser(name.clone());
        }
        Op::AddCampaign {
            adv,
            kw,
            cents,
            roi,
        } => {
            let mut spec = CampaignSpec::per_click(Money::from_cents(*cents))
                .click_value(Money::from_cents(130));
            if let Some(roi) = roi {
                spec = spec.roi_target(*roi);
            }
            let handle = AdvertiserHandle::from_index(*adv % market.num_advertisers());
            ids.push(market.add_campaign(handle, *kw, spec).unwrap());
        }
        Op::UpdateBid { nth, cents } => {
            market
                .update_bid(ids[*nth % ids.len()], Money::from_cents(*cents))
                .unwrap();
        }
        Op::Pause { nth } => {
            market.pause_campaign(ids[*nth % ids.len()]).unwrap();
        }
        Op::Resume { nth } => {
            market.resume_campaign(ids[*nth % ids.len()]).unwrap();
        }
        Op::SetRoi { nth, target } => {
            market
                .set_roi_target(ids[*nth % ids.len()], *target)
                .unwrap();
        }
    }
}

/// Frame-end offsets of the records in a segment image.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 20;
    while bytes.len().saturating_sub(pos) >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        ends.push(pos);
    }
    ends
}

fn tail_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

fn first_seq_of(path: &Path) -> u64 {
    let name = path.file_name().unwrap().to_string_lossy().to_string();
    name.strip_prefix("wal-")
        .and_then(|rest| rest.strip_suffix(".log"))
        .unwrap()
        .parse()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery from a random crash point equals a fresh marketplace that
    /// applied the acknowledged prefix — at every shard count, with and
    /// without a mid-stream snapshot.
    #[test]
    fn crashed_log_recovers_bit_identically(s in arb_scenario()) {
        for &shards in &SHARD_COUNTS {
            let dir = temp_dir("live");
            let (_, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
            let mut market = build_market(&s, shards);
            dur.log_configure(&market.capture_state().unwrap().config).unwrap();
            market.set_journal(dur.journal());
            let mut ids = Vec::new();
            prologue(&mut market, &mut ids);
            for (i, op) in s.ops.iter().enumerate() {
                apply_op(&mut market, &mut ids, op);
                if s.snapshot_after == Some(i) {
                    dur.snapshot_now(&market).unwrap();
                }
            }
            drop(dur);
            drop(market);

            // Crash: truncate the live segment at a pseudorandom byte.
            let tail = tail_segment(&dir);
            let bytes = std::fs::read(&tail).unwrap();
            let cut = (s.crash_salt % (bytes.len() as u64 + 1)) as usize;
            std::fs::write(&tail, &bytes[..cut]).unwrap();

            // Acked operations: everything before the live segment (its
            // name says how many records precede it), plus the records
            // fully inside the truncated image, minus the configure.
            let persisted_before = first_seq_of(&tail) - 1;
            let persisted_in_tail = record_ends(&bytes).iter().filter(|&&e| e <= cut).count() as u64;
            let acked = (persisted_before + persisted_in_tail) as usize;

            let recovered = recover(&dir).expect("crashed log must recover");
            let mut want = build_market(&s, shards);
            let mut want_ids = Vec::new();
            if acked == 0 {
                prop_assert!(recovered.is_none());
                std::fs::remove_dir_all(&dir).ok();
                continue;
            }
            let (mut got, report) = recovered.expect("acked records imply state");
            if s.snapshot_after.is_none() {
                prop_assert_eq!(report.wal_records as usize, acked);
                prop_assert_eq!(report.snapshot_bytes, 0);
            }
            // Twin-replay the acked prefix: 1 configure + 4 prologue
            // records + ops (1 record each).
            let mut steps = acked - 1;
            if steps >= 1 { want.register_advertiser("adv-1"); }
            if steps >= 2 { want.register_advertiser("adv-2"); }
            if steps >= 3 {
                want_ids.push(want.add_campaign(
                    AdvertiserHandle::from_index(0), 0,
                    CampaignSpec::per_click(Money::from_cents(40)).click_value(Money::from_cents(90)),
                ).unwrap());
            }
            if steps >= 4 {
                want_ids.push(want.add_campaign(
                    AdvertiserHandle::from_index(1), 0,
                    CampaignSpec::per_click(Money::from_cents(60)).click_value(Money::from_cents(120)),
                ).unwrap());
            }
            steps = steps.saturating_sub(4);
            let mut applied = 0;
            for op in &s.ops {
                if applied >= steps { break; }
                apply_op(&mut want, &mut want_ids, op);
                applied += records_of(op);
            }
            prop_assert_eq!(applied, steps, "op stream and record accounting disagree");

            // Stored campaign state, clock, and RNG positions.
            prop_assert_eq!(got.capture_state().unwrap(), want.capture_state().unwrap());
            // top_bids, bit for bit.
            for kw in 0..s.keywords {
                prop_assert_eq!(
                    got.top_bids(kw, 8).unwrap(),
                    want.top_bids(kw, 8).unwrap()
                );
            }
            // Future auctions, bit for bit.
            for round in 0..2 {
                for kw in 0..s.keywords {
                    let a = got.serve(QueryRequest::new(kw)).unwrap();
                    let b = want.serve(QueryRequest::new(kw)).unwrap();
                    prop_assert_eq!(a.expected_revenue.to_bits(), b.expected_revenue.to_bits(),
                        "kw {} round {}", kw, round);
                    prop_assert_eq!(a, b);
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Reopening a crashed directory for writing (what the server does on
    /// restart) truncates the torn tail in place and continues the
    /// sequence, and a second recovery round-trips the continued log.
    #[test]
    fn reopen_after_crash_continues_the_log(s in arb_scenario()) {
        let dir = temp_dir("reopen");
        let (_, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let mut market = build_market(&s, 2);
        dur.log_configure(&market.capture_state().unwrap().config).unwrap();
        market.set_journal(dur.journal());
        let mut ids = Vec::new();
        prologue(&mut market, &mut ids);
        for op in &s.ops {
            apply_op(&mut market, &mut ids, op);
        }
        drop(dur);
        drop(market);

        let tail = tail_segment(&dir);
        let bytes = std::fs::read(&tail).unwrap();
        let cut = (s.crash_salt % (bytes.len() as u64 + 1)) as usize;
        std::fs::write(&tail, &bytes[..cut]).unwrap();

        // Restart: reopen, serve a little more, crash-free shutdown.
        let (recovered, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let extra: Vec<usize> = (0..5).map(|i| i % s.keywords).collect();
        let state_after = match recovered {
            Some((mut market, _)) => {
                market.set_journal(dur.journal());
                for &kw in &extra {
                    market.serve(QueryRequest::new(kw)).unwrap();
                }
                Some(market.capture_state().unwrap())
            }
            None => None,
        };
        drop(dur);

        let second = recover(&dir).expect("continued log must recover");
        match (state_after, second) {
            (None, None) => {}
            (Some(want), Some((got, _))) => {
                prop_assert_eq!(got.capture_state().unwrap(), want);
            }
            (want, got) => prop_assert!(false, "presence mismatch: want {:?} got {:?}",
                want.is_some(), got.is_some()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
