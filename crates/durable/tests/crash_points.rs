//! Crash-point sweep: a WAL image truncated at **every byte boundary**
//! must recover to exactly the operations whose records are fully on
//! disk — the torn record (and nothing else) is dropped, recovery never
//! panics, and the recovered marketplace is bit-identical to a fresh one
//! that applied the same acknowledged prefix.
//!
//! Truncation is the right crash model here: an appending writer's crash
//! leaves a *prefix* of the file (plus possibly garbage past it, which
//! the checksum catches the same way), so sweeping every prefix length
//! covers every possible kill point.

use proptest::prelude::*;
use ssa_bidlang::Money;
use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use ssa_core::sharded::ShardedMarketplace;
use ssa_durable::{recover, Durability, FsyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One always-valid marketplace operation (validity is arranged by the
/// generator: indices stay in range by construction).
#[derive(Debug, Clone)]
enum Op {
    Serve(usize),
    AddCampaign { adv: usize, kw: usize, cents: i64 },
    UpdateBid { nth: usize, cents: i64 },
    Pause { nth: usize },
    Resume { nth: usize },
    SetRoi { nth: usize, target: Option<f64> },
}

#[derive(Debug, Clone)]
struct Scenario {
    keywords: usize,
    slots: usize,
    seed: u64,
    ops: Vec<Op>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=4, 1usize..=2, 0u64..10_000, 2usize..=10).prop_map(
        |(keywords, slots, seed, num_ops)| {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            // Two advertisers and two starter campaigns exist before the
            // random tail, so mutation ops always have a target.
            let mut campaigns = 2usize;
            let ops = (0..num_ops)
                .map(|_| match next(8) {
                    0 => {
                        campaigns += 1;
                        Op::AddCampaign {
                            adv: next(2) as usize,
                            kw: next(keywords as u64) as usize,
                            cents: next(90) as i64,
                        }
                    }
                    1 => Op::UpdateBid {
                        nth: next(campaigns as u64) as usize,
                        cents: next(90) as i64,
                    },
                    2 => Op::Pause {
                        nth: next(campaigns as u64) as usize,
                    },
                    3 => Op::Resume {
                        nth: next(campaigns as u64) as usize,
                    },
                    4 => Op::SetRoi {
                        nth: next(campaigns as u64) as usize,
                        target: if next(2) == 0 {
                            None
                        } else {
                            Some(1.0 + next(100) as f64 / 50.0)
                        },
                    },
                    _ => Op::Serve(next(keywords as u64) as usize),
                })
                .collect();
            Scenario {
                keywords,
                slots,
                seed,
                ops,
            }
        },
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ssa-crashpt-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn build_market(s: &Scenario, shards: usize) -> ShardedMarketplace {
    let builder = Marketplace::builder()
        .slots(s.slots)
        .keywords(s.keywords)
        .seed(s.seed)
        .default_click_probs((0..s.slots).map(|j| 0.7 / (j + 1) as f64).collect());
    ShardedMarketplace::new(builder, shards).unwrap()
}

/// The fixed prologue every scenario starts from: two advertisers, two
/// campaigns. Returns the campaign-id list mutation ops index into.
fn prologue(market: &mut ShardedMarketplace) -> Vec<ssa_core::CampaignId> {
    let a = market.register_advertiser("a");
    let b = market.register_advertiser("b");
    vec![
        market
            .add_campaign(
                a,
                0,
                CampaignSpec::per_click(Money::from_cents(40)).click_value(Money::from_cents(90)),
            )
            .unwrap(),
        market
            .add_campaign(
                b,
                0,
                CampaignSpec::per_click(Money::from_cents(55)).click_value(Money::from_cents(100)),
            )
            .unwrap(),
    ]
}

fn apply_op(market: &mut ShardedMarketplace, ids: &mut Vec<ssa_core::CampaignId>, op: &Op) {
    let handles: Vec<_> = (0..market.num_advertisers())
        .map(ssa_core::AdvertiserHandle::from_index)
        .collect();
    match op {
        Op::Serve(kw) => {
            market.serve(QueryRequest::new(*kw)).unwrap();
        }
        Op::AddCampaign { adv, kw, cents } => {
            let id = market
                .add_campaign(
                    handles[*adv],
                    *kw,
                    CampaignSpec::per_click(Money::from_cents(*cents))
                        .click_value(Money::from_cents(110)),
                )
                .unwrap();
            ids.push(id);
        }
        Op::UpdateBid { nth, cents } => {
            market
                .update_bid(ids[*nth % ids.len()], Money::from_cents(*cents))
                .unwrap();
        }
        Op::Pause { nth } => {
            market.pause_campaign(ids[*nth % ids.len()]).unwrap();
        }
        Op::Resume { nth } => {
            market.resume_campaign(ids[*nth % ids.len()]).unwrap();
        }
        Op::SetRoi { nth, target } => {
            market
                .set_roi_target(ids[*nth % ids.len()], *target)
                .unwrap();
        }
    }
}

/// Frame-end byte offsets of every record in a segment image.
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 20;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        ends.push(pos);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For every truncation length of the on-disk WAL image, recovery
    /// succeeds and yields exactly the fully-persisted operation prefix.
    #[test]
    fn every_truncation_point_recovers_the_acked_prefix(s in arb_scenario()) {
        // Write the full log once.
        let write_dir = temp_dir("w");
        let (_, dur) = Durability::open(&write_dir, FsyncPolicy::Off, 0).unwrap();
        let mut market = build_market(&s, 2);
        dur.log_configure(&market.capture_state().unwrap().config).unwrap();
        market.set_journal(dur.journal());
        let mut ids = prologue(&mut market);
        for op in &s.ops {
            apply_op(&mut market, &mut ids, op);
        }
        drop(dur);
        let segment = std::fs::read_dir(&write_dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
            .expect("one segment");
        let full = std::fs::read(&segment).unwrap();
        let ends = record_ends(&full);
        // 1 configure + 4 prologue records + the ops.
        prop_assert_eq!(ends.len(), 5 + s.ops.len());

        let crash_dir = temp_dir("c");
        std::fs::create_dir_all(&crash_dir).unwrap();
        let crash_file = crash_dir.join(segment.file_name().unwrap());
        for cut in 0..=full.len() {
            std::fs::write(&crash_file, &full[..cut]).unwrap();
            // Records fully on disk at this cut.
            let persisted = ends.iter().filter(|&&e| e <= cut).count();
            let recovered = recover(&crash_dir).expect("recovery must never fail on a truncated log");
            match recovered {
                None => prop_assert_eq!(persisted, 0, "cut {} lost persisted records", cut),
                Some((mut got, report)) => {
                    prop_assert_eq!(report.wal_records as usize, persisted);
                    // Twin: a fresh market applying the same acked prefix.
                    let mut want = build_market(&s, 2);
                    let mut want_ids = Vec::new();
                    let mut steps = persisted - 1; // skip the configure record
                    // Prologue records: 2 registers + 2 campaigns.
                    let take = steps.min(4);
                    replay_prologue(&mut want, &mut want_ids, take);
                    steps -= take;
                    for op in s.ops.iter().take(steps) {
                        apply_op(&mut want, &mut want_ids, op);
                    }
                    prop_assert_eq!(
                        got.capture_state().unwrap(),
                        want.capture_state().unwrap(),
                        "cut {} diverged", cut
                    );
                    // And the next auction draws stay bit-identical.
                    for kw in 0..s.keywords {
                        let a = got.serve(QueryRequest::new(kw)).unwrap();
                        let b = want.serve(QueryRequest::new(kw)).unwrap();
                        prop_assert_eq!(&a, &b);
                        prop_assert_eq!(
                            a.expected_revenue.to_bits(),
                            b.expected_revenue.to_bits()
                        );
                    }
                }
            }
        }
        std::fs::remove_dir_all(&write_dir).ok();
        std::fs::remove_dir_all(&crash_dir).ok();
    }
}

/// Applies the first `take` (≤ 4) prologue records to a twin market.
fn replay_prologue(
    market: &mut ShardedMarketplace,
    ids: &mut Vec<ssa_core::CampaignId>,
    take: usize,
) {
    let mut handles = Vec::new();
    if take >= 1 {
        handles.push(market.register_advertiser("a"));
    }
    if take >= 2 {
        handles.push(market.register_advertiser("b"));
    }
    if take >= 3 {
        ids.push(
            market
                .add_campaign(
                    handles[0],
                    0,
                    CampaignSpec::per_click(Money::from_cents(40))
                        .click_value(Money::from_cents(90)),
                )
                .unwrap(),
        );
    }
    if take >= 4 {
        ids.push(
            market
                .add_campaign(
                    handles[1],
                    0,
                    CampaignSpec::per_click(Money::from_cents(55))
                        .click_value(Money::from_cents(100)),
                )
                .unwrap(),
        );
    }
}
