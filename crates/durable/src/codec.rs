//! Byte-level encoding of log records and snapshots.
//!
//! Everything is little-endian and self-delimiting. Floating-point values
//! travel as raw `f64::to_bits` words — the durability guarantee is
//! *bit-identical* recovery, so no decimal round-trip is allowed anywhere.
//! Enum variants use stable one-byte tags that mirror the wire protocol in
//! `ssa_net::proto` where the same types appear (method, pricing), so a
//! captured WAL stays readable across both layers' test fixtures.

use ssa_core::{AttrValue, MarketConfigState, MutationRecord, PricingScheme, UserAttrs, WdMethod};

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the named field.
    Truncated(&'static str),
    /// An enum tag byte had no corresponding variant.
    UnknownTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix implied more elements than the remaining bytes
    /// could possibly hold.
    Oversized(&'static str),
    /// A string field held invalid UTF-8.
    Utf8(&'static str),
    /// Decoding finished with unconsumed bytes left over.
    Trailing(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated(what) => write!(f, "buffer truncated reading {what}"),
            CodecError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::Oversized(what) => write!(f, "{what} length exceeds remaining bytes"),
            CodecError::Utf8(what) => write!(f, "{what} is not valid UTF-8"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after record"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected polynomial 0xEDB88320), const-table implementation.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every WAL record and
/// snapshot body.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive writers / readers.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub(crate) fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn put_pair_vec(buf: &mut Vec<u8>, v: &[(f64, f64)]) {
    put_u32(buf, v.len() as u32);
    for &(a, b) in v {
        put_f64(buf, a);
        put_f64(buf, b);
    }
}

fn put_opt<T>(buf: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put(buf, x);
        }
    }
}

fn put_attrs(buf: &mut Vec<u8>, attrs: &UserAttrs) {
    put_u32(buf, attrs.len() as u32);
    for (key, value) in attrs.iter() {
        put_string(buf, key);
        match value {
            AttrValue::Int(v) => {
                buf.push(0);
                put_i64(buf, *v);
            }
            AttrValue::Str(s) => {
                buf.push(1);
                put_string(buf, s);
            }
        }
    }
}

/// A cursor over an immutable byte buffer; every read names the field it
/// is reading so corruption reports say *what* was truncated.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::UnknownTag { what, tag }),
        }
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u32` element count and checks the remaining buffer can hold
    /// at least `min_elem_bytes` per element, so a corrupt count cannot
    /// trigger a huge allocation.
    pub(crate) fn count(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, CodecError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(CodecError::Oversized(what));
        }
        Ok(n)
    }

    pub(crate) fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let n = self.count(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8(what))
    }

    fn f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, CodecError> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    fn pair_vec(&mut self, what: &'static str) -> Result<Vec<(f64, f64)>, CodecError> {
        let n = self.count(16, what)?;
        (0..n)
            .map(|_| Ok((self.f64(what)?, self.f64(what)?)))
            .collect()
    }

    fn opt<T>(
        &mut self,
        what: &'static str,
        read: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            tag => Err(CodecError::UnknownTag { what, tag }),
        }
    }

    /// Reads a typed attribute bag: a count, then sorted `key → value`
    /// entries (tag 0 = integer, tag 1 = string). Minimum entry size is the
    /// key length prefix (4) + value tag (1) + string length prefix (4).
    fn attrs(&mut self, what: &'static str) -> Result<UserAttrs, CodecError> {
        let n = self.count(9, what)?;
        (0..n)
            .map(|_| {
                let key = self.string(what)?;
                let value = match self.u8(what)? {
                    0 => AttrValue::Int(self.i64(what)?),
                    1 => AttrValue::Str(self.string(what)?),
                    tag => return Err(CodecError::UnknownTag { what, tag }),
                };
                Ok((key, value))
            })
            .collect()
    }

    pub(crate) fn finish(self) -> Result<(), CodecError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing(left))
        }
    }
}

// ---------------------------------------------------------------------------
// WdMethod / PricingScheme tags (mirroring ssa_net::proto).
// ---------------------------------------------------------------------------

fn put_method(buf: &mut Vec<u8>, method: WdMethod) {
    match method {
        WdMethod::Lp => buf.push(0),
        WdMethod::Hungarian => buf.push(1),
        WdMethod::Reduced => buf.push(2),
        WdMethod::ReducedParallel(threads) => {
            buf.push(3);
            put_u32(buf, threads as u32);
        }
    }
}

fn read_method(r: &mut Reader<'_>) -> Result<WdMethod, CodecError> {
    match r.u8("method")? {
        0 => Ok(WdMethod::Lp),
        1 => Ok(WdMethod::Hungarian),
        2 => Ok(WdMethod::Reduced),
        3 => Ok(WdMethod::ReducedParallel(r.u32("method threads")? as usize)),
        tag => Err(CodecError::UnknownTag {
            what: "method",
            tag,
        }),
    }
}

fn put_pricing(buf: &mut Vec<u8>, pricing: PricingScheme) {
    buf.push(match pricing {
        PricingScheme::PayYourBid => 0,
        PricingScheme::Gsp => 1,
        PricingScheme::Vickrey => 2,
    });
}

fn read_pricing(r: &mut Reader<'_>) -> Result<PricingScheme, CodecError> {
    match r.u8("pricing")? {
        0 => Ok(PricingScheme::PayYourBid),
        1 => Ok(PricingScheme::Gsp),
        2 => Ok(PricingScheme::Vickrey),
        tag => Err(CodecError::UnknownTag {
            what: "pricing",
            tag,
        }),
    }
}

// ---------------------------------------------------------------------------
// MarketConfigState.
// ---------------------------------------------------------------------------

pub(crate) fn put_config(buf: &mut Vec<u8>, config: &MarketConfigState) {
    put_u64(buf, config.slots as u64);
    put_u64(buf, config.keywords as u64);
    put_u64(buf, config.seed);
    put_method(buf, config.method);
    put_pricing(buf, config.pricing);
    put_u64(buf, config.shards as u64);
    put_bool(buf, config.pruned);
    put_bool(buf, config.warm_start);
    put_opt(buf, &config.default_click_probs, |b, v| put_f64_vec(b, v));
    put_opt(buf, &config.default_purchase_probs, |b, v| {
        put_pair_vec(b, v)
    });
}

pub(crate) fn read_config(r: &mut Reader<'_>) -> Result<MarketConfigState, CodecError> {
    Ok(MarketConfigState {
        slots: r.u64("config slots")? as usize,
        keywords: r.u64("config keywords")? as usize,
        seed: r.u64("config seed")?,
        method: read_method(r)?,
        pricing: read_pricing(r)?,
        shards: r.u64("config shards")? as usize,
        pruned: r.bool("config pruned")?,
        warm_start: r.bool("config warm_start")?,
        default_click_probs: r.opt("config click probs", |r| r.f64_vec("config click probs"))?,
        default_purchase_probs: r.opt("config purchase probs", |r| {
            r.pair_vec("config purchase probs")
        })?,
    })
}

// ---------------------------------------------------------------------------
// WalOp: one log record's payload (after the sequence number).
// ---------------------------------------------------------------------------

/// One write-ahead-log operation: either a marketplace (re)configuration
/// or a journalled mutation.
///
/// A `Configure` record resets the replayed marketplace to a fresh build of
/// the embedded configuration, exactly as the serving layer's `Configure`
/// request does; every other record replays through
/// [`ssa_core::journal::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Build (or rebuild) the marketplace from this configuration.
    Configure(MarketConfigState),
    /// Replay one journalled mutation.
    Mutation(MutationRecord),
}

const TAG_CONFIGURE: u8 = 0;
const TAG_REGISTER: u8 = 1;
const TAG_ADD_CAMPAIGN: u8 = 2;
const TAG_UPDATE_BID: u8 = 3;
const TAG_PAUSE: u8 = 4;
const TAG_RESUME: u8 = 5;
const TAG_SET_ROI: u8 = 6;
const TAG_SERVE: u8 = 7;
const TAG_SERVE_BATCH: u8 = 8;

impl WalOp {
    /// Appends the tagged encoding of this operation to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::Configure(config) => {
                buf.push(TAG_CONFIGURE);
                put_config(buf, config);
            }
            WalOp::Mutation(record) => match record {
                MutationRecord::RegisterAdvertiser { name } => {
                    buf.push(TAG_REGISTER);
                    put_string(buf, name);
                }
                MutationRecord::AddCampaign {
                    advertiser,
                    keyword,
                    bid_cents,
                    click_value_cents,
                    roi_target,
                    click_probs,
                    purchase_probs,
                    targeting,
                } => {
                    buf.push(TAG_ADD_CAMPAIGN);
                    put_u64(buf, *advertiser as u64);
                    put_u64(buf, *keyword as u64);
                    put_i64(buf, *bid_cents);
                    put_i64(buf, *click_value_cents);
                    put_opt(buf, roi_target, |b, v| put_f64(b, *v));
                    put_opt(buf, click_probs, |b, v| put_f64_vec(b, v));
                    put_opt(buf, purchase_probs, |b, v| put_pair_vec(b, v));
                    put_opt(buf, targeting, |b, v| put_string(b, v));
                }
                MutationRecord::UpdateBid {
                    keyword,
                    index,
                    bid_cents,
                } => {
                    buf.push(TAG_UPDATE_BID);
                    put_u64(buf, *keyword as u64);
                    put_u64(buf, *index as u64);
                    put_i64(buf, *bid_cents);
                }
                MutationRecord::PauseCampaign { keyword, index } => {
                    buf.push(TAG_PAUSE);
                    put_u64(buf, *keyword as u64);
                    put_u64(buf, *index as u64);
                }
                MutationRecord::ResumeCampaign { keyword, index } => {
                    buf.push(TAG_RESUME);
                    put_u64(buf, *keyword as u64);
                    put_u64(buf, *index as u64);
                }
                MutationRecord::SetRoiTarget {
                    keyword,
                    index,
                    target,
                } => {
                    buf.push(TAG_SET_ROI);
                    put_u64(buf, *keyword as u64);
                    put_u64(buf, *index as u64);
                    put_opt(buf, target, |b, v| put_f64(b, *v));
                }
                MutationRecord::Serve { keyword, attrs } => {
                    buf.push(TAG_SERVE);
                    put_u64(buf, *keyword as u64);
                    put_attrs(buf, attrs);
                }
                MutationRecord::ServeBatch { queries } => {
                    buf.push(TAG_SERVE_BATCH);
                    put_u32(buf, queries.len() as u32);
                    for (kw, attrs) in queries {
                        put_u64(buf, *kw as u64);
                        put_attrs(buf, attrs);
                    }
                }
            },
        }
    }

    /// Decodes one operation, requiring the buffer to be exactly consumed.
    pub fn decode(bytes: &[u8]) -> Result<WalOp, CodecError> {
        let mut r = Reader::new(bytes);
        let op = Self::read(&mut r)?;
        r.finish()?;
        Ok(op)
    }

    fn read(r: &mut Reader<'_>) -> Result<WalOp, CodecError> {
        let tag = r.u8("op tag")?;
        let op = match tag {
            TAG_CONFIGURE => WalOp::Configure(read_config(r)?),
            TAG_REGISTER => WalOp::Mutation(MutationRecord::RegisterAdvertiser {
                name: r.string("advertiser name")?,
            }),
            TAG_ADD_CAMPAIGN => WalOp::Mutation(MutationRecord::AddCampaign {
                advertiser: r.u64("campaign advertiser")? as usize,
                keyword: r.u64("campaign keyword")? as usize,
                bid_cents: r.i64("campaign bid")?,
                click_value_cents: r.i64("campaign click value")?,
                roi_target: r.opt("campaign roi", |r| r.f64("campaign roi"))?,
                click_probs: r.opt("campaign click probs", |r| {
                    r.f64_vec("campaign click probs")
                })?,
                purchase_probs: r.opt("campaign purchase probs", |r| {
                    r.pair_vec("campaign purchase probs")
                })?,
                targeting: r.opt("campaign targeting", |r| r.string("campaign targeting"))?,
            }),
            TAG_UPDATE_BID => WalOp::Mutation(MutationRecord::UpdateBid {
                keyword: r.u64("update keyword")? as usize,
                index: r.u64("update index")? as usize,
                bid_cents: r.i64("update bid")?,
            }),
            TAG_PAUSE => WalOp::Mutation(MutationRecord::PauseCampaign {
                keyword: r.u64("pause keyword")? as usize,
                index: r.u64("pause index")? as usize,
            }),
            TAG_RESUME => WalOp::Mutation(MutationRecord::ResumeCampaign {
                keyword: r.u64("resume keyword")? as usize,
                index: r.u64("resume index")? as usize,
            }),
            TAG_SET_ROI => WalOp::Mutation(MutationRecord::SetRoiTarget {
                keyword: r.u64("roi keyword")? as usize,
                index: r.u64("roi index")? as usize,
                target: r.opt("roi target", |r| r.f64("roi target"))?,
            }),
            TAG_SERVE => WalOp::Mutation(MutationRecord::Serve {
                keyword: r.u64("serve keyword")? as usize,
                attrs: r.attrs("serve attrs")?,
            }),
            TAG_SERVE_BATCH => {
                // Minimum element: keyword (8) + empty attr bag count (4).
                let n = r.count(12, "batch queries")?;
                let queries = (0..n)
                    .map(|_| Ok((r.u64("batch keyword")? as usize, r.attrs("batch attrs")?)))
                    .collect::<Result<Vec<_>, CodecError>>()?;
                WalOp::Mutation(MutationRecord::ServeBatch { queries })
            }
            tag => return Err(CodecError::UnknownTag { what: "op", tag }),
        };
        Ok(op)
    }
}

// ---------------------------------------------------------------------------
// MarketState (snapshot body).
// ---------------------------------------------------------------------------

/// Encodes a full marketplace checkpoint as a snapshot body.
pub(crate) fn encode_state(state: &ssa_core::MarketState) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + state.campaigns.len() * 64);
    put_config(&mut buf, &state.config);
    put_u32(&mut buf, state.advertisers.len() as u32);
    for name in &state.advertisers {
        put_string(&mut buf, name);
    }
    put_u32(&mut buf, state.campaigns.len() as u32);
    for c in &state.campaigns {
        put_u64(&mut buf, c.keyword as u64);
        put_u64(&mut buf, c.advertiser as u64);
        put_i64(&mut buf, c.bid_cents);
        put_i64(&mut buf, c.click_value_cents);
        put_opt(&mut buf, &c.roi_target, |b, v| put_f64(b, *v));
        put_f64_vec(&mut buf, &c.click_probs);
        put_pair_vec(&mut buf, &c.purchase_probs);
        put_bool(&mut buf, c.paused);
        put_opt(&mut buf, &c.targeting, |b, v| put_string(b, v));
    }
    put_u64(&mut buf, state.clock);
    put_u32(&mut buf, state.rng_states.len() as u32);
    for s in &state.rng_states {
        for &word in s {
            put_u64(&mut buf, word);
        }
    }
    buf
}

/// Decodes a snapshot body back into a marketplace checkpoint.
pub(crate) fn decode_state(bytes: &[u8]) -> Result<ssa_core::MarketState, CodecError> {
    let mut r = Reader::new(bytes);
    let config = read_config(&mut r)?;
    let n = r.count(4, "advertisers")?;
    let advertisers = (0..n)
        .map(|_| r.string("advertiser name"))
        .collect::<Result<Vec<_>, _>>()?;
    let n = r.count(43, "campaigns")?;
    let campaigns = (0..n)
        .map(|_| {
            Ok(ssa_core::CampaignState {
                keyword: r.u64("campaign keyword")? as usize,
                advertiser: r.u64("campaign advertiser")? as usize,
                bid_cents: r.i64("campaign bid")?,
                click_value_cents: r.i64("campaign click value")?,
                roi_target: r.opt("campaign roi", |r| r.f64("campaign roi"))?,
                click_probs: r.f64_vec("campaign click probs")?,
                purchase_probs: r.pair_vec("campaign purchase probs")?,
                paused: r.bool("campaign paused")?,
                targeting: r.opt("campaign targeting", |r| r.string("campaign targeting"))?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let clock = r.u64("clock")?;
    let n = r.count(32, "rng states")?;
    let rng_states = (0..n)
        .map(|_| {
            Ok([
                r.u64("rng word")?,
                r.u64("rng word")?,
                r.u64("rng word")?,
                r.u64("rng word")?,
            ])
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    r.finish()?;
    Ok(ssa_core::MarketState {
        config,
        advertisers,
        campaigns,
        clock,
        rng_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::{CampaignState, MarketState};

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector plus the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_config() -> MarketConfigState {
        MarketConfigState {
            slots: 3,
            keywords: 11,
            seed: 42,
            method: WdMethod::ReducedParallel(2),
            pricing: PricingScheme::Gsp,
            shards: 4,
            pruned: true,
            warm_start: false,
            default_click_probs: Some(vec![0.3, 0.2, 0.1]),
            default_purchase_probs: None,
        }
    }

    #[test]
    fn ops_round_trip() {
        let ops = vec![
            WalOp::Configure(sample_config()),
            WalOp::Mutation(MutationRecord::RegisterAdvertiser {
                name: "acme".into(),
            }),
            WalOp::Mutation(MutationRecord::AddCampaign {
                advertiser: 1,
                keyword: 7,
                bid_cents: 125,
                click_value_cents: 600,
                roi_target: Some(1.25),
                click_probs: Some(vec![0.5, 0.25]),
                purchase_probs: Some(vec![(0.1, 0.01), (0.05, 0.002)]),
                targeting: Some("geo = 'us' and age >= 21".into()),
            }),
            WalOp::Mutation(MutationRecord::AddCampaign {
                advertiser: 0,
                keyword: 0,
                bid_cents: 0,
                click_value_cents: 0,
                roi_target: None,
                click_probs: None,
                purchase_probs: None,
                targeting: None,
            }),
            WalOp::Mutation(MutationRecord::UpdateBid {
                keyword: 3,
                index: 2,
                bid_cents: -1,
            }),
            WalOp::Mutation(MutationRecord::PauseCampaign {
                keyword: 1,
                index: 0,
            }),
            WalOp::Mutation(MutationRecord::ResumeCampaign {
                keyword: 1,
                index: 0,
            }),
            WalOp::Mutation(MutationRecord::SetRoiTarget {
                keyword: 2,
                index: 1,
                target: None,
            }),
            WalOp::Mutation(MutationRecord::Serve {
                keyword: 9,
                attrs: UserAttrs::new(),
            }),
            WalOp::Mutation(MutationRecord::Serve {
                keyword: 2,
                attrs: UserAttrs::new()
                    .geo("us")
                    .device("mobile")
                    .set_int("age", -3),
            }),
            WalOp::Mutation(MutationRecord::ServeBatch {
                queries: vec![
                    (0, UserAttrs::new()),
                    (9, UserAttrs::new().segment("gamer")),
                    (4, UserAttrs::new().set_int("score", i64::MAX)),
                    (4, UserAttrs::new()),
                    (1, UserAttrs::new()),
                ],
            }),
        ];
        for op in ops {
            let mut buf = Vec::new();
            op.encode_into(&mut buf);
            assert_eq!(WalOp::decode(&buf).expect("round trip"), op, "{op:?}");
        }
    }

    #[test]
    fn state_round_trips_preserving_f64_bits() {
        let state = MarketState {
            config: sample_config(),
            advertisers: vec!["a".into(), "advertiser-две".into()],
            campaigns: vec![CampaignState {
                keyword: 5,
                advertiser: 1,
                bid_cents: 99,
                click_value_cents: 400,
                roi_target: Some(f64::from_bits(0x3FF0_0000_0000_0001)),
                click_probs: vec![0.1 + 0.2],
                purchase_probs: vec![(1.0 / 3.0, 2.0 / 7.0)],
                paused: true,
                targeting: Some("device != 'bot'".into()),
            }],
            clock: 987,
            rng_states: vec![[1, 2, 3, 4], [u64::MAX, 0, 7, 9]],
        };
        let bytes = encode_state(&state);
        let back = decode_state(&bytes).expect("round trip");
        assert_eq!(back, state);
        // PartialEq on f64 would accept -0.0 == 0.0; check raw bits too.
        assert_eq!(
            back.campaigns[0].click_probs[0].to_bits(),
            state.campaigns[0].click_probs[0].to_bits()
        );
    }

    #[test]
    fn truncated_buffers_fail_cleanly() {
        let mut buf = Vec::new();
        WalOp::Configure(sample_config()).encode_into(&mut buf);
        for len in 0..buf.len() {
            assert!(
                WalOp::decode(&buf[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn oversized_counts_are_rejected_without_allocating() {
        // A ServeBatch claiming u32::MAX keywords in a 16-byte buffer.
        let mut buf = vec![8u8];
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0u8; 8]);
        assert!(matches!(WalOp::decode(&buf), Err(CodecError::Oversized(_))));
    }
}
