//! # ssa-durable — write-ahead log + snapshot recovery
//!
//! Crash durability for the serving marketplace, built on two marketplace
//! properties the core crate guarantees (see [`ssa_core::journal`] and
//! [`ssa_core::state`]):
//!
//! * every control-plane mutation and every served query is observable
//!   through the [`ssa_core::MutationJournal`] hook, and
//! * auction outcomes are a deterministic function of the campaign book,
//!   the clock, and the per-keyword RNG streams.
//!
//! So durability needs only an ordered, checksummed log of the *operations*
//! — never the outcomes. Replaying the log re-draws the identical clicks,
//! purchases, and charges, bit for bit, and leaves every RNG stream at the
//! identical position.
//!
//! ## On-disk format
//!
//! A log directory holds WAL segments and snapshots:
//!
//! ```text
//! data/
//! ├── wal-00000000000000000001.log      segments of framed records:
//! │     [magic 8B][version u32][first_seq u64]          <- 20B header
//! │     [len u32][crc32 u32][seq u64 ++ op bytes]...    <- records
//! └── snapshot-00000000000000000517.snap
//!       [magic 8B][version u32][last_seq u64]
//!       [body_len u32][crc32 u32][MarketState body]
//! ```
//!
//! The header version is [`WAL_VERSION`]. Version 2, the current
//! format, extended version 1 for typed query targeting: `Serve` /
//! `ServeBatch` records journal the query's attribute bag and
//! `AddCampaign` carries the campaign's optional targeting source.
//! Recovery refuses any other version with [`DurableError::Version`]
//! rather than misreading it; a deliberate format change bumps
//! [`WAL_VERSION`] and regenerates the committed golden fixture with
//! `SSA_REGEN_GOLDEN=1 cargo test --test durable_golden` (the fixture
//! and its byte-for-byte check live in the umbrella crate's
//! `tests/durable_golden.rs`).
//!
//! Records carry contiguous sequence numbers from 1. A snapshot at
//! sequence `S` captures the complete marketplace state after record `S`;
//! taking one rotates the WAL to a fresh segment starting at `S + 1` and
//! deletes everything older (log compaction). Recovery is
//! `snapshot ∘ WAL suffix`: load the newest valid snapshot, then replay
//! every record past it.
//!
//! ## Crash semantics
//!
//! * A crash mid-append leaves a *torn tail*: a record whose frame is
//!   short or whose checksum fails, necessarily at the very end of the
//!   final segment. Recovery truncates it — losing exactly the operations
//!   that were never acknowledged, never an acknowledged one.
//! * A snapshot is written to a temp file and renamed, so a half-written
//!   snapshot is never visible; a damaged one falls back to its
//!   predecessor.
//! * Damage anywhere else (mid-log checksum failure, a sequence gap) is
//!   reported as [`DurableError::Corrupt`], never silently skipped.
//!
//! ## Fsync trade-offs
//!
//! [`FsyncPolicy`] picks the failure domain:
//!
//! * [`FsyncPolicy::Off`] — records are `write(2)`-flushed per operation.
//!   Survives process death (including `kill -9`): the bytes are in the
//!   OS page cache. Does *not* survive kernel panic or power loss.
//! * [`FsyncPolicy::Always`] — additionally `fdatasync`s every record and
//!   syncs directory entries on rotation. Survives power loss, at the
//!   cost of one sync per operation.
//!
//! ## Quick use
//!
//! ```no_run
//! use ssa_durable::{Durability, FsyncPolicy};
//! use std::path::Path;
//!
//! let dir = Path::new("data");
//! let (recovered, dur) = Durability::open(dir, FsyncPolicy::Off, 10_000)?;
//! let mut market = match recovered {
//!     Some((market, report)) => {
//!         eprintln!("{}", report.to_json());
//!         market
//!     }
//!     None => {
//!         let builder = ssa_core::Marketplace::builder().slots(4).keywords(100);
//!         let market = ssa_core::ShardedMarketplace::new(builder, 4)?;
//!         dur.log_configure(&market.capture_state()?.config)?;
//!         market
//!     }
//! };
//! market.set_journal(dur.journal());
//! // ... serve; call dur.maybe_snapshot(&market) between requests ...
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod snapshot;
mod store;
mod wal;

pub use codec::{crc32, CodecError, WalOp};
pub use snapshot::SNAPSHOT_MAGIC;
pub use store::{recover, Durability, RecoveryReport};
pub use wal::WAL_MAGIC;

use std::str::FromStr;

/// Version stamped into every WAL segment and snapshot header. Bump it
/// when the record or snapshot encoding changes; recovery refuses files
/// from a different version rather than misreading them. The golden
/// fixture test (`tests/durable_golden.rs` in the umbrella crate) pins
/// the format at this version — a deliberate bump regenerates it.
pub const WAL_VERSION: u32 = 2;

/// When WAL appends reach stable storage; see the
/// [crate docs](self#fsync-trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` every record: survives power loss.
    Always,
    /// Flush to the OS per record: survives process death only.
    Off,
}

/// A [`FsyncPolicy`] string didn't parse; lists the accepted spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFsyncError(String);

impl std::fmt::Display for ParseFsyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad fsync policy '{}': expected 'always' or 'off'",
            self.0
        )
    }
}

impl std::error::Error for ParseFsyncError {}

impl FromStr for FsyncPolicy {
    type Err = ParseFsyncError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(ParseFsyncError(other.to_string())),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Off => "off",
        })
    }
}

/// Anything that can go wrong opening, writing, or recovering a log
/// directory.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A checksum-valid byte sequence failed to decode.
    Codec(CodecError),
    /// A WAL segment or snapshot was written by a different format
    /// version.
    Version {
        /// Which file kind mismatched.
        what: &'static str,
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The log is damaged in a way a crash cannot explain (bad magic,
    /// sequence gap, mid-log checksum failure, lost snapshot).
    Corrupt(String),
    /// Replaying a record against the marketplace failed — the log
    /// disagrees with the marketplace's own validation, so the log is
    /// not one this marketplace wrote.
    Market(ssa_core::MarketError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(err) => write!(f, "durability I/O error: {err}"),
            DurableError::Codec(err) => write!(f, "durability decode error: {err}"),
            DurableError::Version {
                what,
                found,
                expected,
            } => write!(
                f,
                "{what} has format version {found}, this build expects {expected}"
            ),
            DurableError::Corrupt(msg) => write!(f, "durability log corrupt: {msg}"),
            DurableError::Market(err) => write!(f, "replay rejected: {err}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(err) => Some(err),
            DurableError::Codec(err) => Some(err),
            DurableError::Market(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(err: std::io::Error) -> Self {
        DurableError::Io(err)
    }
}

impl From<CodecError> for DurableError {
    fn from(err: CodecError) -> Self {
        DurableError::Codec(err)
    }
}

impl From<ssa_core::MarketError> for DurableError {
    fn from(err: ssa_core::MarketError) -> Self {
        DurableError::Market(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("always".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Always));
        assert_eq!("off".parse::<FsyncPolicy>(), Ok(FsyncPolicy::Off));
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(FsyncPolicy::Off.to_string(), "off");
    }

    #[test]
    fn recovery_report_json_shape() {
        let report = RecoveryReport {
            wal_records: 12,
            snapshot_bytes: 3400,
            replay_ms: 1.5,
        };
        assert_eq!(
            report.to_json(),
            "{\"metric\":\"recovery\",\"wal_records\":12,\"snapshot_bytes\":3400,\"replay_ms\":1.500}"
        );
    }
}
