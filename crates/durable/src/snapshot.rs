//! Snapshot files: a full [`ssa_core::MarketState`] checkpoint, written
//! atomically, covering every WAL record up to its sequence number.
//!
//! # Layout
//!
//! `snapshot-<last_seq:020>.snap`:
//!
//! ```text
//! +------------+-------------+--------------+--------------+-----------+------+
//! | magic (8B) | version u32 | last_seq u64 | body_len u32 | crc32 u32 | body |
//! +------------+-------------+--------------+--------------+-----------+------+
//! body = MarketState encoding (see crate::codec); crc32 covers the body.
//! ```
//!
//! A snapshot is written to a `.tmp` sibling and renamed into place, so a
//! crash mid-write leaves at most a stray `.tmp` (ignored on load) and
//! never a half-visible snapshot. [`load_latest`] walks candidates newest
//! first and skips any that fail validation, so a damaged newest snapshot
//! degrades to the previous one (whose WAL suffix still exists until the
//! *next* successful snapshot compacts it).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, decode_state, encode_state};
use crate::{DurableError, FsyncPolicy, WAL_VERSION};
use ssa_core::MarketState;

/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SSASNAP\0";

fn snapshot_path(dir: &Path, last_seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{last_seq:020}.snap"))
}

/// Lists snapshot files in `dir` as `(last_seq, path)`, newest first.
pub(crate) fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(out)
}

/// Writes a snapshot covering WAL records `..= last_seq` and returns its
/// size in bytes. Atomic: tmp file + rename.
pub(crate) fn write_snapshot(
    dir: &Path,
    last_seq: u64,
    state: &MarketState,
    policy: FsyncPolicy,
) -> io::Result<u64> {
    let body = encode_state(state);
    let mut bytes = Vec::with_capacity(28 + body.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&last_seq.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    let path = snapshot_path(dir, last_seq);
    let tmp = path.with_extension("snap.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        if policy == FsyncPolicy::Always {
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, &path)?;
    if policy == FsyncPolicy::Always {
        // Persist the rename itself (the directory entry).
        File::open(dir)?.sync_all()?;
    }
    Ok(bytes.len() as u64)
}

/// Loads the newest snapshot that validates, as
/// `(state, last_seq, file_bytes)`. Invalid candidates are skipped;
/// version mismatches are reported as errors (the operator must migrate,
/// not silently lose the checkpoint).
pub(crate) fn load_latest(dir: &Path) -> Result<Option<(MarketState, u64, u64)>, DurableError> {
    for (seq, path) in list_snapshots(dir)? {
        let bytes = fs::read(&path)?;
        match validate(&bytes, seq) {
            Ok(state) => return Ok(Some((state, seq, bytes.len() as u64))),
            Err(DurableError::Version {
                what,
                found,
                expected,
            }) => {
                return Err(DurableError::Version {
                    what,
                    found,
                    expected,
                })
            }
            // Damaged snapshot: fall back to the next-newest candidate.
            Err(_) => continue,
        }
    }
    Ok(None)
}

fn validate(bytes: &[u8], expected_seq: u64) -> Result<MarketState, DurableError> {
    if bytes.len() < 28 {
        return Err(DurableError::Corrupt("snapshot shorter than header".into()));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(DurableError::Corrupt("snapshot bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(DurableError::Version {
            what: "snapshot",
            found: version,
            expected: WAL_VERSION,
        });
    }
    let last_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if last_seq != expected_seq {
        return Err(DurableError::Corrupt(
            "snapshot header seq disagrees with file name".into(),
        ));
    }
    let body_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if bytes.len() - 28 != body_len {
        return Err(DurableError::Corrupt(
            "snapshot body length mismatch".into(),
        ));
    }
    let body = &bytes[28..];
    if crc32(body) != crc {
        return Err(DurableError::Corrupt("snapshot checksum mismatch".into()));
    }
    decode_state(body).map_err(DurableError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::{MarketConfigState, PricingScheme, WdMethod};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ssa-snap-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state(seed: u64) -> MarketState {
        MarketState {
            config: MarketConfigState {
                slots: 2,
                keywords: 3,
                seed,
                method: WdMethod::Reduced,
                pricing: PricingScheme::Gsp,
                shards: 1,
                pruned: false,
                warm_start: false,
                default_click_probs: None,
                default_purchase_probs: None,
            },
            advertisers: vec!["a".into()],
            campaigns: vec![],
            clock: seed * 10,
            rng_states: vec![[seed, 1, 2, 3]; 3],
        }
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let dir = temp_dir("latest");
        write_snapshot(&dir, 10, &sample_state(1), FsyncPolicy::Off).unwrap();
        write_snapshot(&dir, 25, &sample_state(2), FsyncPolicy::Off).unwrap();
        let (state, seq, bytes) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 25);
        assert_eq!(state, sample_state(2));
        assert!(bytes > 28);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, 10, &sample_state(1), FsyncPolicy::Off).unwrap();
        write_snapshot(&dir, 25, &sample_state(2), FsyncPolicy::Off).unwrap();
        let newest = snapshot_path(&dir, 25);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (state, seq, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 10);
        assert_eq!(state, sample_state(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let dir = temp_dir("tmp");
        fs::write(dir.join("snapshot-00000000000000000099.snap.tmp"), b"junk").unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
