//! Segmented write-ahead log: on-disk layout, tail-scan, and the
//! append-side writer.
//!
//! # Layout
//!
//! A log directory holds one or more *segments* named
//! `wal-<first_seq:020>.log`. Each segment is:
//!
//! ```text
//! +----------------+-------------+----------------+
//! | magic (8B)     | version u32 | first_seq u64  |   20-byte header
//! +----------------+-------------+----------------+
//! | payload_len u32 | crc32 u32 | payload          |   record 0
//! | payload_len u32 | crc32 u32 | payload          |   record 1
//! | ...                                            |
//! +------------------------------------------------+
//! payload = seq u64 ++ WalOp encoding; crc32 covers the whole payload.
//! ```
//!
//! Sequence numbers start at 1 and are contiguous across segment
//! boundaries. A new segment is opened by snapshot rotation (see
//! [`crate::store`]), never mid-stream, so **only the final segment can
//! end in a torn record** — a crash mid-append leaves a short or
//! checksum-failing tail, which [`scan`] detects and reports as the
//! truncation point. Anything else (a bad record *before* the tail, a
//! sequence gap) is corruption, not a crash artifact.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, put_u32, put_u64, WalOp};
use crate::{DurableError, WAL_VERSION};

/// First eight bytes of every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"SSAWAL\0\0";

/// Byte length of a segment header (magic + version + first_seq).
pub(crate) const HEADER_LEN: u64 = 20;

/// Upper bound on a single record payload; a corrupt length prefix above
/// this is treated as a torn tail rather than attempted as an allocation.
const MAX_PAYLOAD_LEN: u32 = 1 << 28;

/// Segment file name for the segment whose first record is `first_seq`.
pub(crate) fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

/// One discovered segment file.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    pub path: PathBuf,
    pub first_seq: u64,
}

/// Lists segment files in `dir`, sorted by first sequence number.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<Segment>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push(Segment {
                path: entry.path(),
                first_seq: seq,
            });
        }
    }
    out.sort_by_key(|s| s.first_seq);
    Ok(out)
}

/// Where the valid prefix of the log ends.
#[derive(Debug, Clone)]
pub(crate) struct Tail {
    /// The final segment file.
    pub path: PathBuf,
    /// The sequence number the segment's name claims it starts at.
    pub first_seq: u64,
    /// Byte offset of the end of the last valid record (header only, if
    /// the segment has no valid records). Bytes past this are torn. Can be
    /// *below* [`HEADER_LEN`] if the crash cut off the header write
    /// itself, in which case the segment must be recreated, not appended.
    pub valid_len: u64,
}

/// Everything a scan of the log directory learns.
#[derive(Debug)]
pub(crate) struct ScanOutcome {
    /// Valid records with sequence number strictly greater than the
    /// `after_seq` filter, in log order.
    pub records: Vec<(u64, WalOp)>,
    /// Sequence number of the last valid record anywhere in the log
    /// (pre-filter), or `None` for an empty log.
    pub last_seq: Option<u64>,
    /// The final segment's tail position, or `None` if there are no
    /// segment files at all.
    pub tail: Option<Tail>,
}

/// Reads every segment in `dir`, validating checksums and sequence
/// continuity, and returns the records with `seq > after_seq`.
///
/// A torn tail (short frame, oversized length, checksum or decode failure
/// at the very end of the final segment) is expected after a crash: the
/// scan stops there and reports the truncation point in
/// [`ScanOutcome::tail`]. The same damage in a *non-final* position is
/// corruption and yields [`DurableError::Corrupt`].
pub(crate) fn scan(dir: &Path, after_seq: u64) -> Result<ScanOutcome, DurableError> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut last_seq = None;
    let mut tail = None;
    for (i, segment) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let bytes = fs::read(&segment.path)?;
        let (valid_len, torn) =
            scan_segment(&bytes, segment, after_seq, &mut records, &mut last_seq)?;
        if torn && !is_last {
            return Err(DurableError::Corrupt(format!(
                "{}: torn record in a non-final segment",
                segment.path.display()
            )));
        }
        if is_last {
            tail = Some(Tail {
                path: segment.path.clone(),
                first_seq: segment.first_seq,
                valid_len,
            });
        }
    }
    Ok(ScanOutcome {
        records,
        last_seq,
        tail,
    })
}

/// Walks one segment's records. Returns `(valid_len, torn)`.
fn scan_segment(
    bytes: &[u8],
    segment: &Segment,
    after_seq: u64,
    records: &mut Vec<(u64, WalOp)>,
    last_seq: &mut Option<u64>,
) -> Result<(u64, bool), DurableError> {
    let display = segment.path.display();
    if bytes.len() < HEADER_LEN as usize {
        // A header can only be short if the creating write itself was cut
        // off; treat the whole segment as torn (no valid records).
        return Ok((bytes.len() as u64, true));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(DurableError::Corrupt(format!("{display}: bad magic")));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(DurableError::Version {
            what: "WAL segment",
            found: version,
            expected: WAL_VERSION,
        });
    }
    let first_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if first_seq != segment.first_seq {
        return Err(DurableError::Corrupt(format!(
            "{display}: header first_seq {first_seq} disagrees with file name"
        )));
    }
    let mut pos = HEADER_LEN as usize;
    let mut expected = match *last_seq {
        Some(seq) => seq + 1,
        None => first_seq,
    };
    if first_seq != expected {
        return Err(DurableError::Corrupt(format!(
            "{display}: segment starts at seq {first_seq}, expected {expected}"
        )));
    }
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok((pos as u64, false));
        }
        if remaining < 8 {
            return Ok((pos as u64, true));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if !(9..=MAX_PAYLOAD_LEN).contains(&len) || remaining - 8 < len as usize {
            return Ok((pos as u64, true));
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return Ok((pos as u64, true));
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if seq != expected {
            return Err(DurableError::Corrupt(format!(
                "{display}: record seq {seq} where {expected} was expected"
            )));
        }
        let op = match WalOp::decode(&payload[8..]) {
            Ok(op) => op,
            // A checksum-valid but undecodable payload means the record
            // was written by something we don't understand — corruption,
            // not a torn write.
            Err(err) => {
                return Err(DurableError::Corrupt(format!(
                    "{display}: record seq {seq}: {err}"
                )))
            }
        };
        *last_seq = Some(seq);
        expected = seq + 1;
        if seq > after_seq {
            records.push((seq, op));
        }
        pos += 8 + len as usize;
    }
}

/// The append side of one segment file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl WalWriter {
    /// Creates a fresh segment whose first record will be `first_seq`.
    pub(crate) fn create(dir: &Path, first_seq: u64) -> io::Result<WalWriter> {
        let path = segment_path(dir, first_seq);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&WAL_MAGIC)?;
        out.write_all(&WAL_VERSION.to_le_bytes())?;
        out.write_all(&first_seq.to_le_bytes())?;
        out.flush()?;
        Ok(WalWriter { out, path })
    }

    /// Reopens an existing segment for appending, first truncating any
    /// torn bytes past `valid_len`.
    pub(crate) fn open_tail(path: &Path, valid_len: u64) -> io::Result<WalWriter> {
        let file = OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(valid_len)?;
        let mut out = BufWriter::new(file);
        out.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            out,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record and flushes it to the OS (surviving a process
    /// kill; call [`WalWriter::sync`] as well to survive power loss).
    pub(crate) fn append(&mut self, seq: u64, op: &WalOp) -> io::Result<()> {
        let mut payload = Vec::with_capacity(32);
        put_u64(&mut payload, seq);
        op.encode_into(&mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.out.write_all(&frame)?;
        self.out.flush()
    }

    /// Forces written records to stable storage (`fdatasync`).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }

    /// The segment file this writer appends to.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::MutationRecord;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ssa-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn serve(kw: usize) -> WalOp {
        WalOp::Mutation(MutationRecord::Serve {
            keyword: kw,
            attrs: ssa_core::UserAttrs::new(),
        })
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &serve(seq as usize)).unwrap();
        }
        drop(w);
        let scan = scan(&dir, 0).unwrap();
        assert_eq!(scan.last_seq, Some(5));
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[2], (3, serve(3)));
        let tail = scan.tail.unwrap();
        let file_len = fs::metadata(&tail.path).unwrap().len();
        assert_eq!(tail.valid_len, file_len);
        // The filter drops covered records but still validates them.
        let filtered = super::scan(&dir, 3).unwrap();
        assert_eq!(filtered.records.len(), 2);
        assert_eq!(filtered.last_seq, Some(5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncation_point_reported() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(1, &serve(0)).unwrap();
        w.append(2, &serve(1)).unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        let clean = scan(&dir, 0).unwrap();
        let valid_after_first = {
            // Reconstruct record 1's frame length: 8-byte header + payload.
            let len = u32::from_le_bytes(full[20..24].try_into().unwrap()) as u64;
            HEADER_LEN + 8 + len
        };
        assert_eq!(clean.tail.unwrap().valid_len, full.len() as u64);
        // Chop the file mid-way through record 2.
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let scan = scan(&dir, 0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.last_seq, Some(1));
        let tail = scan.tail.unwrap();
        assert!(tail.valid_len < fs::metadata(&tail.path).unwrap().len());
        assert_eq!(tail.valid_len, valid_after_first);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_log_record_is_an_error_not_a_truncation() {
        let dir = temp_dir("midcorrupt");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(1, &serve(0)).unwrap();
        drop(w);
        let mut w = WalWriter::create(&dir, 2).unwrap();
        w.append(2, &serve(1)).unwrap();
        drop(w);
        // Flip a payload byte in the FIRST (non-final) segment.
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(scan(&dir, 0), Err(DurableError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_tail_truncates_and_appends_continue_the_stream() {
        let dir = temp_dir("reopen");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(1, &serve(0)).unwrap();
        w.append(2, &serve(1)).unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 1]).unwrap();
        let first = scan(&dir, 0).unwrap();
        let tail = first.tail.unwrap();
        assert!(tail.valid_len < fs::metadata(&tail.path).unwrap().len());
        let mut w = WalWriter::open_tail(&tail.path, tail.valid_len).unwrap();
        // Seq 2 was torn away, so the stream resumes at 2.
        w.append(2, &serve(7)).unwrap();
        drop(w);
        let second = scan(&dir, 0).unwrap();
        assert_eq!(second.last_seq, Some(2));
        assert_eq!(second.records[1], (2, serve(7)));
        let tail = second.tail.unwrap();
        assert_eq!(tail.valid_len, fs::metadata(&tail.path).unwrap().len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_across_segments_is_corruption() {
        let dir = temp_dir("gap");
        let mut w = WalWriter::create(&dir, 1).unwrap();
        w.append(1, &serve(0)).unwrap();
        drop(w);
        // Next segment claims to start at 5: records 2-4 are missing.
        let mut w = WalWriter::create(&dir, 5).unwrap();
        w.append(5, &serve(1)).unwrap();
        drop(w);
        assert!(matches!(scan(&dir, 0), Err(DurableError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
