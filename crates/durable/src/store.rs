//! The durability store: recovery, the live [`Durability`] handle, and
//! snapshot rotation/compaction.
//!
//! One [`Durability`] wraps one log directory. [`Durability::open`]
//! recovers whatever the directory holds, positions the WAL writer after
//! the last valid record (truncating a torn tail in place), and hands
//! back a cloneable handle. [`Durability::journal`] adapts the handle to
//! the marketplace's [`MutationJournal`] hook; the serving layer calls
//! [`Durability::maybe_snapshot`] between requests, from the same thread
//! that owns the marketplace, so a snapshot always observes a state that
//! exactly covers every journalled record.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::codec::WalOp;
use crate::wal::{self, WalWriter, HEADER_LEN};
use crate::{snapshot, DurableError, FsyncPolicy};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::{MarketConfigState, MarketState, MutationJournal, MutationRecord};

/// What [`recover`] (and [`Durability::open`]) replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// WAL records replayed on top of the snapshot (0 if the snapshot was
    /// current through the end of the log).
    pub wal_records: u64,
    /// Size of the snapshot file restored from, in bytes (0 without one).
    pub snapshot_bytes: u64,
    /// Wall-clock time of the whole recovery, in milliseconds.
    pub replay_ms: f64,
}

impl RecoveryReport {
    /// One JSON line in the repository's bench-report idiom
    /// (`"metric":"recovery"`), consumed by the perf-smoke and
    /// crash-recovery CI jobs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"metric\":\"recovery\",\"wal_records\":{},\"snapshot_bytes\":{},\"replay_ms\":{:.3}}}",
            self.wal_records, self.snapshot_bytes, self.replay_ms
        )
    }
}

struct Recovered {
    market: Option<(ShardedMarketplace, RecoveryReport)>,
    /// Sequence number of the last valid record on disk (snapshot or WAL,
    /// whichever is newer); the next append is `last_seq + 1`.
    last_seq: u64,
    snapshot_seq: u64,
    tail: Option<wal::Tail>,
}

fn recover_inner(dir: &Path) -> Result<Recovered, DurableError> {
    let start = Instant::now();
    let snap = snapshot::load_latest(dir)?;
    let (mut market, base_seq, snapshot_bytes) = match snap {
        Some((state, seq, bytes)) => (Some(ShardedMarketplace::from_state(&state)?), seq, bytes),
        None => (None, 0, 0),
    };
    let scan = wal::scan(dir, base_seq)?;
    if let Some(&(first, _)) = scan.records.first() {
        // The log must resume exactly where the snapshot left off; a gap
        // means records were lost (e.g. the newest snapshot rotted away
        // after its WAL prefix was already compacted).
        if first != base_seq + 1 {
            return Err(DurableError::Corrupt(format!(
                "first WAL record past the snapshot is seq {first}, expected {}",
                base_seq + 1
            )));
        }
    }
    let mut wal_records = 0u64;
    for (seq, op) in &scan.records {
        match op {
            WalOp::Configure(config) => {
                market = Some(build_market(config)?);
            }
            WalOp::Mutation(record) => {
                let market = market.as_mut().ok_or_else(|| {
                    DurableError::Corrupt(format!(
                        "record seq {seq} precedes any configure record or snapshot"
                    ))
                })?;
                ssa_core::journal::apply(market, record)?;
            }
        }
        wal_records += 1;
    }
    let last_seq = scan.last_seq.unwrap_or(base_seq).max(base_seq);
    let report = RecoveryReport {
        wal_records,
        snapshot_bytes,
        replay_ms: start.elapsed().as_secs_f64() * 1e3,
    };
    Ok(Recovered {
        market: market.map(|m| (m, report)),
        last_seq,
        snapshot_seq: base_seq,
        tail: scan.tail,
    })
}

fn build_market(config: &MarketConfigState) -> Result<ShardedMarketplace, DurableError> {
    // An empty checkpoint of `config`: building via `from_state` keeps the
    // builder wiring (keyword-local RNG, defaults) in exactly one place.
    let empty = MarketState {
        config: config.clone(),
        advertisers: Vec::new(),
        campaigns: Vec::new(),
        clock: 0,
        rng_states: Vec::new(),
    };
    Ok(ShardedMarketplace::from_state(&empty)?)
}

/// Rebuilds the marketplace persisted in `dir` by loading the newest
/// valid snapshot and replaying the WAL suffix past it.
///
/// Returns `Ok(None)` when the directory holds no snapshot and no
/// records — a fresh start. Read-only: torn tail bytes are *ignored* here
/// and truncated only when [`Durability::open`] takes over the directory
/// for writing.
pub fn recover(dir: &Path) -> Result<Option<(ShardedMarketplace, RecoveryReport)>, DurableError> {
    if !dir.is_dir() {
        return Ok(None);
    }
    Ok(recover_inner(dir)?.market)
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    policy: FsyncPolicy,
    snapshot_every: u64,
    writer: WalWriter,
    next_seq: u64,
    snapshot_seq: u64,
    records_since_snapshot: u64,
}

impl Inner {
    fn append(&mut self, op: &WalOp) -> Result<(), DurableError> {
        self.writer.append(self.next_seq, op)?;
        if self.policy == FsyncPolicy::Always {
            self.writer.sync()?;
        }
        self.next_seq += 1;
        self.records_since_snapshot += 1;
        Ok(())
    }
}

/// A handle on one durable log directory.
///
/// Cheap to clone (all clones share the same writer); every operation
/// takes an internal lock, serializing appends with snapshot rotation.
#[derive(Debug, Clone)]
pub struct Durability {
    inner: Arc<Mutex<Inner>>,
}

impl Durability {
    /// Opens (creating if needed) the log directory `dir`: recovers any
    /// persisted marketplace, truncates a torn WAL tail in place, and
    /// positions the writer after the last valid record.
    ///
    /// `snapshot_every` is the snapshot cadence in WAL records for
    /// [`Durability::maybe_snapshot`]; `0` disables automatic snapshots.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot_every: u64,
    ) -> Result<(Option<(ShardedMarketplace, RecoveryReport)>, Durability), DurableError> {
        std::fs::create_dir_all(dir)?;
        let recovered = recover_inner(dir)?;
        let next_seq = recovered.last_seq + 1;
        let writer = match &recovered.tail {
            // A tail whose header itself was cut off can't be appended to;
            // recreate it (it contains no valid records by construction).
            Some(tail) if tail.valid_len >= HEADER_LEN => {
                WalWriter::open_tail(&tail.path, tail.valid_len)?
            }
            Some(tail) => WalWriter::create(dir, tail.first_seq)?,
            None => WalWriter::create(dir, next_seq)?,
        };
        let inner = Inner {
            dir: dir.to_path_buf(),
            policy,
            snapshot_every,
            writer,
            next_seq,
            snapshot_seq: recovered.snapshot_seq,
            records_since_snapshot: recovered.last_seq - recovered.snapshot_seq,
        };
        let handle = Durability {
            inner: Arc::new(Mutex::new(inner)),
        };
        Ok((recovered.market, handle))
    }

    /// Appends a [`WalOp::Configure`] record. The serving layer calls this
    /// when it builds a marketplace from scratch (fresh boot or a
    /// `Configure` request), *before* attaching the journal to it.
    pub fn log_configure(&self, config: &MarketConfigState) -> Result<(), DurableError> {
        self.lock().append(&WalOp::Configure(config.clone()))
    }

    /// Adapts this handle to the marketplace's journal hook. The returned
    /// journal panics if a record cannot be persisted — continuing would
    /// silently break the recovery guarantee.
    pub fn journal(&self) -> Box<dyn MutationJournal> {
        Box::new(DurableJournal(self.clone()))
    }

    /// Takes a snapshot if at least `snapshot_every` records accumulated
    /// since the last one. Returns whether a snapshot was taken.
    ///
    /// Must be called from the thread that owns `market`, after its
    /// journalled operations completed — so the captured state covers
    /// exactly the records appended so far.
    pub fn maybe_snapshot(&self, market: &ShardedMarketplace) -> Result<bool, DurableError> {
        {
            let inner = self.lock();
            if inner.snapshot_every == 0 || inner.records_since_snapshot < inner.snapshot_every {
                return Ok(false);
            }
        }
        self.snapshot_now(market)?;
        Ok(true)
    }

    /// Takes a snapshot unconditionally (no-op if no records arrived since
    /// the last one), then rotates the WAL to a fresh segment and deletes
    /// segments and snapshots the new snapshot supersedes.
    pub fn snapshot_now(&self, market: &ShardedMarketplace) -> Result<(), DurableError> {
        let state = market.capture_state()?;
        let mut inner = self.lock();
        if inner.records_since_snapshot == 0 {
            return Ok(());
        }
        let last_seq = inner.next_seq - 1;
        snapshot::write_snapshot(&inner.dir, last_seq, &state, inner.policy)?;
        // Rotate: further appends go to a fresh segment starting past the
        // snapshot, then drop everything the snapshot supersedes.
        inner.writer = WalWriter::create(&inner.dir, last_seq + 1)?;
        if inner.policy == FsyncPolicy::Always {
            std::fs::File::open(&inner.dir)?.sync_all()?;
        }
        let keep = inner.writer.path().to_path_buf();
        for segment in wal::list_segments(&inner.dir)? {
            if segment.path != keep {
                std::fs::remove_file(&segment.path)?;
            }
        }
        for (seq, path) in snapshot::list_snapshots(&inner.dir)? {
            if seq < last_seq {
                std::fs::remove_file(&path)?;
            }
        }
        inner.snapshot_seq = last_seq;
        inner.records_since_snapshot = 0;
        Ok(())
    }

    /// Total records appended to the WAL over the directory's lifetime
    /// (`= the sequence number of the newest record`).
    pub fn wal_records(&self) -> u64 {
        self.lock().next_seq - 1
    }

    /// Sequence number the newest snapshot covers through (0 if none).
    pub fn snapshot_seq(&self) -> u64 {
        self.lock().snapshot_seq
    }

    /// The log directory this handle writes to.
    pub fn dir(&self) -> PathBuf {
        self.lock().dir.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means an append already panicked; durability is
        // gone either way, so propagate the panic.
        self.inner.lock().expect("durability lock poisoned")
    }
}

/// [`MutationJournal`] adapter over [`Durability`]; see
/// [`Durability::journal`].
#[derive(Debug)]
struct DurableJournal(Durability);

impl MutationJournal for DurableJournal {
    fn record(&mut self, record: &MutationRecord) {
        if let Err(err) = self.0.lock().append(&WalOp::Mutation(record.clone())) {
            // Contract of MutationJournal: fail loudly. Acknowledging an
            // operation the log did not accept would break recovery.
            panic!("write-ahead log append failed: {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_bidlang::Money;
    use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ssa-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        dir
    }

    fn fresh_market(dur: &Durability, shards: usize) -> ShardedMarketplace {
        let builder = Marketplace::builder()
            .slots(2)
            .keywords(5)
            .seed(99)
            .default_click_probs(vec![0.6, 0.3]);
        let mut market = ShardedMarketplace::new(builder, shards).unwrap();
        dur.log_configure(&market.capture_state().unwrap().config)
            .unwrap();
        market.set_journal(dur.journal());
        market
    }

    fn populate(market: &mut ShardedMarketplace) {
        let a = market.register_advertiser("a");
        let b = market.register_advertiser("b");
        for kw in 0..5 {
            market
                .add_campaign(
                    a,
                    kw,
                    CampaignSpec::per_click(Money::from_cents(40 + kw as i64))
                        .click_value(Money::from_cents(90)),
                )
                .unwrap();
            market
                .add_campaign(
                    b,
                    kw,
                    CampaignSpec::per_click(Money::from_cents(55))
                        .click_value(Money::from_cents(120))
                        .roi_target(1.1),
                )
                .unwrap();
        }
    }

    fn serve_n(market: &mut ShardedMarketplace, n: usize) {
        for i in 0..n {
            market.serve(QueryRequest::new(i % 5)).unwrap();
        }
    }

    #[test]
    fn open_recover_reopen_is_bit_identical() {
        let dir = temp_dir("reopen");
        let (recovered, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        assert!(recovered.is_none());
        let mut market = fresh_market(&dur, 2);
        populate(&mut market);
        serve_n(&mut market, 40);
        let live_state = market.capture_state().unwrap();
        // 1 configure + 2 registers + 10 add_campaigns + the serves.
        assert_eq!(dur.wal_records(), market.now() + 13);
        drop(dur);
        drop(market);

        let (recovered, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let (mut back, report) = recovered.expect("state persisted");
        assert_eq!(report.wal_records, 53); // 1 configure + 12 mutations + 40 serves
        assert_eq!(report.snapshot_bytes, 0);
        assert_eq!(back.capture_state().unwrap(), live_state);
        // The reopened log keeps counting from where it left off.
        back.set_journal(dur.journal());
        back.serve(QueryRequest::new(0)).unwrap();
        assert_eq!(dur.wal_records(), 54);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovery_uses_it() {
        let dir = temp_dir("compact");
        let (_, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let mut market = fresh_market(&dur, 4);
        populate(&mut market);
        serve_n(&mut market, 30);
        dur.snapshot_now(&market).unwrap();
        assert_eq!(dur.snapshot_seq(), 43);
        serve_n(&mut market, 7);
        let live_state = market.capture_state().unwrap();
        drop(dur);

        // Only one (fresh) segment and one snapshot remain on disk.
        assert_eq!(wal::list_segments(&dir).unwrap().len(), 1);
        assert_eq!(snapshot::list_snapshots(&dir).unwrap().len(), 1);
        let (recovered, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let (back, report) = recovered.expect("state persisted");
        assert_eq!(report.wal_records, 7);
        assert!(report.snapshot_bytes > 0);
        assert_eq!(back.capture_state().unwrap(), live_state);
        assert_eq!(dur.snapshot_seq(), 43);
        assert_eq!(dur.wal_records(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maybe_snapshot_honours_cadence() {
        let dir = temp_dir("cadence");
        let (_, dur) = Durability::open(&dir, FsyncPolicy::Off, 10).unwrap();
        let mut market = fresh_market(&dur, 1);
        populate(&mut market);
        assert!(dur.maybe_snapshot(&market).unwrap()); // 13 records >= 10
        assert!(!dur.maybe_snapshot(&market).unwrap()); // 0 since last
        serve_n(&mut market, 9);
        assert!(!dur.maybe_snapshot(&market).unwrap()); // 9 < 10
        serve_n(&mut market, 1);
        assert!(dur.maybe_snapshot(&market).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reconfigure_resets_the_replayed_market() {
        let dir = temp_dir("reconfig");
        let (_, dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let mut market = fresh_market(&dur, 2);
        populate(&mut market);
        serve_n(&mut market, 10);
        // Serving layer behaviour on Configure: build fresh, journal the
        // config, move the journal over.
        let journal = market.take_journal().unwrap();
        let builder = Marketplace::builder().slots(1).keywords(3).seed(7);
        let mut market = ShardedMarketplace::new(builder, 1).unwrap();
        dur.log_configure(&market.capture_state().unwrap().config)
            .unwrap();
        market.set_journal(journal);
        let a = market.register_advertiser("fresh");
        market
            .add_campaign(
                a,
                1,
                CampaignSpec::per_click(Money::from_cents(33))
                    .click_value(Money::from_cents(70))
                    .click_probs(vec![0.5]),
            )
            .unwrap();
        market.serve(QueryRequest::new(1)).unwrap();
        let live_state = market.capture_state().unwrap();
        drop(dur);

        let (recovered, _dur) = Durability::open(&dir, FsyncPolicy::Off, 0).unwrap();
        let (back, _) = recovered.expect("state persisted");
        assert_eq!(back.capture_state().unwrap(), live_state);
        assert_eq!(back.num_keywords(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_always_policy_round_trips() {
        let dir = temp_dir("fsync");
        let (_, dur) = Durability::open(&dir, FsyncPolicy::Always, 0).unwrap();
        let mut market = fresh_market(&dur, 1);
        populate(&mut market);
        serve_n(&mut market, 3);
        dur.snapshot_now(&market).unwrap();
        serve_n(&mut market, 2);
        let live_state = market.capture_state().unwrap();
        drop(dur);
        let (recovered, _) = Durability::open(&dir, FsyncPolicy::Always, 0).unwrap();
        assert_eq!(recovered.unwrap().0.capture_state().unwrap(), live_state);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
