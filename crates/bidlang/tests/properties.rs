//! Property-based tests for the bidding language.

use proptest::prelude::*;
use ssa_bidlang::two_dependent::{
    bids_revenue, encode_digraph, ordering_revenue, solve_exact, solve_local_search,
    WeightedDigraph,
};
use ssa_bidlang::{
    dependence_set, is_one_dependent, parse_formula, AdvertiserId, AdvertiserView, BidsTable,
    Formula, HeavyPattern, Money, Predicate, SlotId,
};

const MAX_SLOTS: u16 = 5;

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (1..=MAX_SLOTS).prop_map(|j| Predicate::Slot(SlotId::new(j))),
        Just(Predicate::Click),
        Just(Predicate::Purchase),
        (1..=MAX_SLOTS).prop_map(|j| Predicate::HeavyInSlot(SlotId::new(j))),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        arb_predicate().prop_map(Formula::Pred),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            inner.prop_map(|f| !f),
        ]
    })
}

fn arb_view() -> impl Strategy<Value = AdvertiserView> {
    (
        proptest::option::of(1..=MAX_SLOTS),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(0u32..(1 << MAX_SLOTS)),
    )
        .prop_map(|(slot, clicked, purchased, heavy)| AdvertiserView {
            slot: slot.map(SlotId::new),
            clicked,
            purchased,
            heavy_pattern: heavy.map(HeavyPattern),
        })
}

proptest! {
    /// `Display` output reparses to a structurally identical formula.
    #[test]
    fn display_parse_roundtrip(f in arb_formula()) {
        let text = f.to_string();
        let reparsed = parse_formula(&text).unwrap_or_else(|e| {
            panic!("failed to reparse {text:?}: {e}")
        });
        prop_assert_eq!(f, reparsed);
    }

    /// Constant-folding simplification never changes semantics.
    #[test]
    fn simplify_preserves_semantics(f in arb_formula(), v in arb_view()) {
        let simplified = f.clone().simplify();
        prop_assert_eq!(f.eval(&v), simplified.eval(&v));
        prop_assert!(simplified.size() <= f.size());
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_idempotent(f in arb_formula()) {
        let once = f.simplify();
        let twice = once.clone().simplify();
        prop_assert_eq!(once, twice);
    }

    /// 1-dependence holds exactly when no heavyweight predicate occurs, and
    /// the dependence set is at most the owner singleton.
    #[test]
    fn dependence_analysis_is_syntactic(f in arb_formula()) {
        prop_assert_eq!(is_one_dependent(&f), !f.mentions_heavy());
        let owner = AdvertiserId::new(3);
        match dependence_set(&f, owner).m() {
            Some(m) => prop_assert!(m <= 1),
            None => prop_assert!(f.mentions_heavy()),
        }
    }

    /// OR-bid payments are monotone in the rows and bounded by the total.
    #[test]
    fn payment_bounded_by_max(
        rows in proptest::collection::vec((arb_formula(), 0i64..100), 0..6),
        v in arb_view(),
    ) {
        let bids = BidsTable::new(
            rows.into_iter().map(|(f, c)| (f, Money::from_cents(c))),
        );
        let p = bids.payment(&v);
        prop_assert!(p >= Money::ZERO);
        prop_assert!(p <= bids.max_payment());
    }
}

fn arb_digraph(max_n: usize) -> impl Strategy<Value = WeightedDigraph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0i64..20, n * n).prop_map(move |w| {
            let mut g = WeightedDigraph::new(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        g.set_weight(
                            AdvertiserId::from(i),
                            AdvertiserId::from(j),
                            Money::from_cents(w[i * n + j]),
                        );
                    }
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3 reduction: revenue computed through the 2-dependent bid
    /// machinery equals the direct feedback-arc objective, for every
    /// assignment the exact solver returns.
    #[test]
    fn reduction_revenue_agrees(g in arb_digraph(5), k in 1u16..=3) {
        let bids = encode_digraph(&g);
        let sol = solve_exact(&bids, g.len(), k);
        prop_assert_eq!(
            sol.revenue,
            ordering_revenue(&g, &sol.ordering)
        );
        let slot_of = sol.slot_assignment(g.len());
        prop_assert_eq!(sol.revenue, bids_revenue(&bids, &slot_of));
    }

    /// The heuristic never beats the exact optimum and achieves at least the
    /// best single advertiser's outgoing weight (a trivial lower bound).
    #[test]
    fn local_search_sound(g in arb_digraph(5), k in 1u16..=3) {
        let exact = solve_exact(&encode_digraph(&g), g.len(), k);
        let heur = solve_local_search(&g, k, 20);
        prop_assert!(heur.revenue <= exact.revenue);
        let best_single = (0..g.len())
            .map(|i| ordering_revenue(&g, &[AdvertiserId::from(i)]))
            .max()
            .unwrap_or(Money::ZERO);
        prop_assert!(heur.revenue >= best_single);
    }
}
