//! The atomic predicates of the bidding language (Section II-A and III-F).

use crate::ids::SlotId;
use std::fmt;

/// An atomic predicate an advertiser can bid on.
///
/// The first three are the Section II-A predicates; `HeavyInSlot` is the
/// Section III-F extension that lets advertisers bid on *which slots hold
/// heavyweight advertisers*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// The bidding advertiser is assigned slot `j` (`Slotj` in the paper).
    Slot(SlotId),
    /// The user clicked on the bidding advertiser's ad.
    Click,
    /// The user made a purchase via the bidding advertiser's ad.
    Purchase,
    /// Slot `j` is occupied by a *heavyweight* advertiser (Section III-F).
    HeavyInSlot(SlotId),
}

impl Predicate {
    /// `true` for predicates whose truth value is fully determined by the
    /// bidding advertiser's own slot assignment plus its click/purchase
    /// outcome — i.e. predicates that only yield 1-dependent events
    /// (Definition 1).
    #[inline]
    pub fn is_own_outcome(self) -> bool {
        !matches!(self, Predicate::HeavyInSlot(_))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Slot(s) => write!(f, "{s}"),
            Predicate::Click => write!(f, "Click"),
            Predicate::Purchase => write!(f, "Purchase"),
            Predicate::HeavyInSlot(s) => write!(f, "Heavy{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Predicate::Slot(SlotId::new(2)).to_string(), "Slot2");
        assert_eq!(Predicate::Click.to_string(), "Click");
        assert_eq!(Predicate::Purchase.to_string(), "Purchase");
        assert_eq!(
            Predicate::HeavyInSlot(SlotId::new(1)).to_string(),
            "HeavySlot1"
        );
    }

    #[test]
    fn own_outcome_classification() {
        assert!(Predicate::Click.is_own_outcome());
        assert!(Predicate::Purchase.is_own_outcome());
        assert!(Predicate::Slot(SlotId::new(1)).is_own_outcome());
        assert!(!Predicate::HeavyInSlot(SlotId::new(1)).is_own_outcome());
    }
}
