//! Bids tables: OR-bids on Boolean combinations of predicates (Section II-A).

use crate::formula::Formula;
use crate::money::Money;
use crate::outcome::AdvertiserView;
use std::fmt;

/// One row of a Bids table: "pay `value` if `formula` is true".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BidRow {
    /// The Boolean event being bid on.
    pub formula: Formula,
    /// The amount the advertiser pays if the event occurs.
    pub value: Money,
}

/// An advertiser's Bids table (paper Figures 3 and 6).
///
/// Semantics are OR-bid: the advertiser pays the **sum** of the values of all
/// rows whose formulas hold in the final outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BidsTable {
    rows: Vec<BidRow>,
}

impl BidsTable {
    /// Builds a table from `(formula, value)` rows.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative: the language prices *desirable*
    /// events; negative payments would let an advertiser be paid by the
    /// provider.
    pub fn new<I: IntoIterator<Item = (Formula, Money)>>(rows: I) -> Self {
        let rows: Vec<BidRow> = rows
            .into_iter()
            .map(|(formula, value)| {
                assert!(
                    value >= Money::ZERO,
                    "bid values must be non-negative, got {value} for {formula}"
                );
                BidRow { formula, value }
            })
            .collect();
        BidsTable { rows }
    }

    /// An empty table (bids nothing, pays nothing).
    pub fn empty() -> Self {
        BidsTable::default()
    }

    /// The paper's Figure 3 table: 5¢ for a purchase, 2¢ for slot 1 or 2.
    pub fn figure3() -> Self {
        use crate::ids::SlotId;
        BidsTable::new(vec![
            (Formula::purchase(), Money::from_cents(5)),
            (
                Formula::any_slot([SlotId::new(1), SlotId::new(2)]),
                Money::from_cents(2),
            ),
        ])
    }

    /// The classical single-feature bid: pay `value` per click (Figure 1).
    pub fn single_feature(value: Money) -> Self {
        BidsTable::new(vec![(Formula::click(), value)])
    }

    /// The rows of the table.
    pub fn rows(&self) -> &[BidRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    pub fn push(&mut self, formula: Formula, value: Money) {
        assert!(value >= Money::ZERO, "bid values must be non-negative");
        self.rows.push(BidRow { formula, value });
    }

    /// Total payment owed under an outcome view: the sum of values of rows
    /// whose formulas are true (OR-bid semantics).
    pub fn payment(&self, view: &AdvertiserView) -> Money {
        self.rows
            .iter()
            .filter(|r| r.formula.eval(view))
            .map(|r| r.value)
            .sum()
    }

    /// `true` if any row's formula mentions a heavyweight predicate.
    pub fn mentions_heavy(&self) -> bool {
        self.rows.iter().any(|r| r.formula.mentions_heavy())
    }

    /// Sum of all row values — an upper bound on the payment in any outcome.
    pub fn max_payment(&self) -> Money {
        self.rows.iter().map(|r| r.value).sum()
    }
}

impl fmt::Display for BidsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<40} value", "formula")?;
        for row in &self.rows {
            writeln!(f, "{:<40} {}", row.formula.to_string(), row.value)?;
        }
        Ok(())
    }
}

impl FromIterator<(Formula, Money)> for BidsTable {
    fn from_iter<I: IntoIterator<Item = (Formula, Money)>>(iter: I) -> Self {
        BidsTable::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;

    fn view(slot: Option<u16>, clicked: bool, purchased: bool) -> AdvertiserView {
        AdvertiserView {
            slot: slot.map(SlotId::new),
            clicked,
            purchased,
            heavy_pattern: None,
        }
    }

    #[test]
    fn figure3_payments() {
        let bids = BidsTable::figure3();
        // Purchase and slot 1: both rows true → 5 + 2 = 7 (the paper's text).
        assert_eq!(bids.payment(&view(Some(1), true, true)).cents(), 7);
        // Purchase only (slot 3): 5.
        assert_eq!(bids.payment(&view(Some(3), true, true)).cents(), 5);
        // Slot 2, no purchase: 2.
        assert_eq!(bids.payment(&view(Some(2), true, false)).cents(), 2);
        // Nothing: 0.
        assert_eq!(bids.payment(&view(None, false, false)).cents(), 0);
    }

    #[test]
    fn figure6_payments() {
        // Figure 6: Click ∧ Slot1 → 4; Click → 0.
        let bids = BidsTable::new(vec![
            (
                Formula::click() & Formula::slot(SlotId::new(1)),
                Money::from_cents(4),
            ),
            (Formula::click(), Money::ZERO),
        ]);
        assert_eq!(bids.payment(&view(Some(1), true, false)).cents(), 4);
        assert_eq!(bids.payment(&view(Some(2), true, false)).cents(), 0);
    }

    #[test]
    fn single_feature_is_click_only() {
        let bids = BidsTable::single_feature(Money::from_cents(3));
        assert_eq!(bids.payment(&view(Some(5), true, false)).cents(), 3);
        assert_eq!(bids.payment(&view(Some(1), false, true)).cents(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bids_rejected() {
        let _ = BidsTable::new(vec![(Formula::click(), Money::from_cents(-1))]);
    }

    #[test]
    fn max_payment_bounds() {
        let bids = BidsTable::figure3();
        assert_eq!(bids.max_payment().cents(), 7);
        assert!(bids.payment(&view(Some(1), true, true)).cents() <= bids.max_payment().cents());
    }

    #[test]
    fn empty_table() {
        let bids = BidsTable::empty();
        assert!(bids.is_empty());
        assert_eq!(bids.payment(&view(Some(1), true, true)), Money::ZERO);
    }

    #[test]
    fn display_contains_rows() {
        let s = BidsTable::figure3().to_string();
        assert!(s.contains("Purchase"));
        assert!(s.contains("Slot1 ∨ Slot2"));
        assert!(s.contains("$0.05"));
    }

    #[test]
    fn from_iterator() {
        let bids: BidsTable = vec![(Formula::click(), Money::from_cents(1))]
            .into_iter()
            .collect();
        assert_eq!(bids.len(), 1);
    }
}
