//! Exact money arithmetic in integer cents.
//!
//! The paper's bids are quoted in cents ("willing to pay 5 cents if he gets a
//! purchase"). Bids and realised payments are kept exact as `i64` cents;
//! *expected* revenue — a probability-weighted quantity — lives in `f64` and
//! is produced via [`Money::as_f64`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An exact amount of money in integer cents.
///
/// Negative amounts are allowed (they arise as intermediate values in the
/// no-slot normalisation of winner determination) but bids themselves are
/// validated non-negative by [`crate::BidsTable::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(i64);

impl Money {
    /// Zero cents.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from integer cents.
    #[inline]
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents)
    }

    /// The amount in integer cents.
    #[inline]
    pub const fn cents(self) -> i64 {
        self.0
    }

    /// The amount as a floating-point number of cents, for expected-value
    /// computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Rounds a floating-point number of cents to the nearest exact amount.
    ///
    /// Used when converting expected-value prices (e.g. GSP charges) back to
    /// chargeable amounts.
    #[inline]
    pub fn from_f64_rounded(cents: f64) -> Self {
        Money(cents.round() as i64)
    }

    /// Returns `true` if the amount is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Saturating subtraction clamped at zero; useful for budget updates.
    #[inline]
    pub fn saturating_sub_at_zero(self, rhs: Money) -> Money {
        Money((self.0 - rhs.0).max(0))
    }

    /// The larger of two amounts.
    #[inline]
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    #[inline]
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }
}

impl Add for Money {
    type Output = Money;
    #[inline]
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    #[inline]
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    #[inline]
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    #[inline]
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    #[inline]
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        Money(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 100, abs % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Money::from_cents(250);
        let b = Money::from_cents(100);
        assert_eq!((a + b).cents(), 350);
        assert_eq!((a - b).cents(), 150);
        assert_eq!((a * 3).cents(), 750);
        assert_eq!((-b).cents(), -100);
        let mut c = a;
        c += b;
        c -= Money::from_cents(50);
        assert_eq!(c.cents(), 300);
    }

    #[test]
    fn display_formats_dollars() {
        assert_eq!(Money::from_cents(507).to_string(), "$5.07");
        assert_eq!(Money::from_cents(-3).to_string(), "-$0.03");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn sum_and_clamps() {
        let total: Money = [1, 2, 3].iter().map(|&c| Money::from_cents(c)).sum();
        assert_eq!(total.cents(), 6);
        assert_eq!(
            Money::from_cents(5).saturating_sub_at_zero(Money::from_cents(9)),
            Money::ZERO
        );
        assert_eq!(Money::from_cents(5).max(Money::from_cents(9)).cents(), 9);
        assert_eq!(Money::from_cents(5).min(Money::from_cents(9)).cents(), 5);
    }

    #[test]
    fn f64_roundtrip() {
        assert_eq!(Money::from_f64_rounded(4.6).cents(), 5);
        assert_eq!(Money::from_f64_rounded(-4.6).cents(), -5);
        assert_eq!(Money::from_cents(7).as_f64(), 7.0);
    }
}
