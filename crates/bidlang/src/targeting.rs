//! Typed user-attribute targeting: a small expression language campaigns
//! use to restrict which queries they bid on.
//!
//! A query carries a [`UserAttrs`] bag of typed attributes — the
//! conventional sponsored-search context keys (`geo`, `device`,
//! `segment`) plus arbitrary integer/string custom keys. A campaign may
//! attach a targeting expression over those attributes:
//!
//! ```text
//! geo = 'us' and (device = 'mobile' or segment in ('sports', 'autos'))
//!     and not age < 21
//! ```
//!
//! Grammar (precedence low → high): `or := and ('or' and)*`,
//! `and := unary ('and' unary)*`, `unary := 'not' unary | primary`,
//! `primary := '(' or ')' | comparison`,
//! `comparison := key (= != < <= > >=) value | key 'in' '(' value, … ')'`.
//! Values are integer literals or quoted strings. Like the formula
//! [`crate::parser`], the recursive-descent parser enforces
//! [`MAX_TARGETING_DEPTH`] so hostile `(((…` / `not not not …` sources
//! from untrusted advertisers fail with a typed
//! [`ParseErrorKind::TooDeep`] instead of overflowing the stack.
//!
//! Expressions are parsed once per campaign into a [`TargetExpr`] AST and
//! compiled to a [`CompiledTargeting`] postfix bytecode program; the hot
//! serve path only ever runs [`CompiledTargeting::matches`] — a
//! fixed-size-stack bytecode loop with no allocation, no recursion, and
//! no re-parsing per auction.
//!
//! # Semantics
//!
//! * A missing attribute fails **every** comparison on its key, including
//!   `!=` and `in` — absence is not a value.
//! * `=` / `!=` compare any two values of the same type; a type mismatch
//!   (e.g. `geo = 5` against `geo: "us"`) is simply false.
//! * Ordered comparisons (`<`, `<=`, `>`, `>=`) hold only between two
//!   integers; strings never order.

use crate::parser::ParseErrorKind;
use std::fmt;

/// Maximum targeting-expression nesting depth; see
/// [`crate::parser::MAX_FORMULA_DEPTH`] for the rationale.
pub const MAX_TARGETING_DEPTH: usize = 64;

/// Stack slots the bytecode evaluator reserves. Parsing bounds nesting at
/// [`MAX_TARGETING_DEPTH`], and the evaluation stack of a postfix program
/// never exceeds the expression's nesting depth plus one (left-deep
/// operator chains — the only unbounded shape — evaluate in two slots).
const EVAL_STACK: usize = MAX_TARGETING_DEPTH + 2;

// ---------------------------------------------------------------------------
// Attribute values and the per-query attribute bag.
// ---------------------------------------------------------------------------

/// A typed attribute value: an integer or a string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrValue {
    /// A signed integer attribute (ages, scores, versions, …).
    Int(i64),
    /// A string attribute (geo codes, device classes, segments, …).
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(n) => write!(f, "{n}"),
            AttrValue::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Int(n)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

/// The typed user attributes attached to one query: a small map from
/// attribute key to [`AttrValue`], kept sorted by key so two equal bags
/// are byte-identical when serialized (wire frames, WAL records).
///
/// Built fluently:
///
/// ```
/// use ssa_bidlang::targeting::UserAttrs;
///
/// let attrs = UserAttrs::new()
///     .geo("us")
///     .device("mobile")
///     .set_int("age", 34);
/// assert_eq!(attrs.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct UserAttrs {
    /// Key → value pairs, sorted by key, each key at most once.
    entries: Vec<(String, AttrValue)>,
}

/// The shared empty attribute bag (legacy keyword-only queries).
static EMPTY_ATTRS: UserAttrs = UserAttrs {
    entries: Vec::new(),
};

impl UserAttrs {
    /// An empty attribute bag.
    pub fn new() -> Self {
        UserAttrs::default()
    }

    /// A `'static` reference to the empty bag, for call sites that need an
    /// attribute reference but carry none (legacy keyword-only queries).
    pub fn empty_ref() -> &'static UserAttrs {
        &EMPTY_ATTRS
    }

    /// Inserts or replaces `key`, keeping the entries sorted.
    pub fn set(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        let key = key.into();
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
        self
    }

    /// Inserts or replaces a string attribute.
    pub fn set_str(self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set(key, AttrValue::Str(value.into()))
    }

    /// Inserts or replaces an integer attribute.
    pub fn set_int(self, key: impl Into<String>, value: i64) -> Self {
        self.set(key, AttrValue::Int(value))
    }

    /// Sets the conventional `geo` key (e.g. a country code).
    pub fn geo(self, value: impl Into<String>) -> Self {
        self.set_str("geo", value)
    }

    /// Sets the conventional `device` key (e.g. `"mobile"`).
    pub fn device(self, value: impl Into<String>) -> Self {
        self.set_str("device", value)
    }

    /// Sets the conventional `segment` key (an audience segment).
    pub fn segment(self, value: impl Into<String>) -> Self {
        self.set_str("segment", value)
    }

    /// Looks up an attribute by key.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of attributes set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no attribute is set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, AttrValue)> for UserAttrs {
    fn from_iter<I: IntoIterator<Item = (String, AttrValue)>>(iter: I) -> Self {
        iter.into_iter()
            .fold(UserAttrs::new(), |attrs, (k, v)| attrs.set(k, v))
    }
}

// ---------------------------------------------------------------------------
// The expression AST and its reference evaluator.
// ---------------------------------------------------------------------------

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (integers only)
    Lt,
    /// `<=` (integers only)
    Le,
    /// `>` (integers only)
    Gt,
    /// `>=` (integers only)
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A parsed targeting expression. This is the *slow reference* form: its
/// [`TargetExpr::matches`] walks the tree recursively and exists to
/// cross-check the compiled bytecode in tests. Production serving always
/// goes through [`CompiledTargeting`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetExpr {
    /// Both sides must hold.
    And(Box<TargetExpr>, Box<TargetExpr>),
    /// Either side must hold.
    Or(Box<TargetExpr>, Box<TargetExpr>),
    /// The inner expression must not hold.
    Not(Box<TargetExpr>),
    /// `key op value`; see the [module docs](self) for missing-key and
    /// type-mismatch semantics.
    Cmp {
        /// Attribute key compared.
        key: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal compared against.
        value: AttrValue,
    },
    /// `key in (v1, v2, …)`: the attribute equals one of the listed values.
    In {
        /// Attribute key tested.
        key: String,
        /// Accepted values.
        values: Vec<AttrValue>,
    },
}

/// One comparison under the module's semantics: missing key ⇒ false,
/// `=`/`!=` need matching types, ordered operators need two integers.
fn compare(have: Option<&AttrValue>, op: CmpOp, want: &AttrValue) -> bool {
    let Some(have) = have else { return false };
    match op {
        CmpOp::Eq => have == want,
        CmpOp::Ne => {
            matches!(
                (have, want),
                (AttrValue::Int(_), AttrValue::Int(_)) | (AttrValue::Str(_), AttrValue::Str(_))
            ) && have != want
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (have, want) {
            (AttrValue::Int(a), AttrValue::Int(b)) => match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            },
            _ => false,
        },
    }
}

impl TargetExpr {
    /// Reference evaluation by direct AST interpretation. Quadratic-ish
    /// and recursive — for tests and cross-checking only; serving uses
    /// [`CompiledTargeting::matches`].
    pub fn matches(&self, attrs: &UserAttrs) -> bool {
        match self {
            TargetExpr::And(a, b) => a.matches(attrs) && b.matches(attrs),
            TargetExpr::Or(a, b) => a.matches(attrs) || b.matches(attrs),
            TargetExpr::Not(inner) => !inner.matches(attrs),
            TargetExpr::Cmp { key, op, value } => compare(attrs.get(key), *op, value),
            TargetExpr::In { key, values } => attrs
                .get(key)
                .map(|have| values.iter().any(|v| v == have))
                .unwrap_or(false),
        }
    }
}

// ---------------------------------------------------------------------------
// Parse errors.
// ---------------------------------------------------------------------------

/// Error produced when a targeting source cannot be parsed. Mirrors the
/// formula parser's [`crate::parser::ParseError`] shape: message, byte
/// position, and a [`ParseErrorKind`] separating plain syntax errors from
/// the hostile-nesting depth limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
    /// Failure category (syntax vs. the nesting depth limit).
    pub kind: ParseErrorKind,
}

impl fmt::Display for TargetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "targeting parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for TargetParseError {}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    And,
    Or,
    Not,
    In,
    LParen,
    RParen,
    Comma,
    Op(CmpOp),
    Ident(String),
    Int(i64),
    Str(String),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> TargetParseError {
        TargetParseError {
            message: message.into(),
            position: self.pos,
            kind: ParseErrorKind::Syntax,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, TargetParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = self.rest();
        if rest.is_empty() {
            return Ok(None);
        }
        // Multi-char operators before their single-char prefixes.
        for (sym, tok) in [
            ("!=", Token::Op(CmpOp::Ne)),
            ("<=", Token::Op(CmpOp::Le)),
            (">=", Token::Op(CmpOp::Ge)),
            ("=", Token::Op(CmpOp::Eq)),
            ("<", Token::Op(CmpOp::Lt)),
            (">", Token::Op(CmpOp::Gt)),
            ("(", Token::LParen),
            (")", Token::RParen),
            (",", Token::Comma),
        ] {
            if let Some(stripped) = rest.strip_prefix(sym) {
                self.pos = self.input.len() - stripped.len();
                return Ok(Some((tok, start)));
            }
        }
        // Quoted string literals ('…' or "…"; no escapes — attribute
        // values are plain codes and segments).
        if let Some(quote) = rest.chars().next().filter(|c| *c == '\'' || *c == '"') {
            let body = &rest[1..];
            let Some(end) = body.find(quote) else {
                return Err(self.error("unterminated string literal"));
            };
            self.pos += 1 + end + 1;
            return Ok(Some((Token::Str(body[..end].to_string()), start)));
        }
        // Integer literals (optionally negative).
        let negative = rest.starts_with('-');
        let digits_at = usize::from(negative);
        let digit_len = rest[digits_at..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len() - digits_at);
        if digit_len > 0 {
            let text = &rest[..digits_at + digit_len];
            let n: i64 = text
                .parse()
                .map_err(|_| self.error(format!("invalid integer literal {text:?}")))?;
            self.pos += text.len();
            return Ok(Some((Token::Int(n), start)));
        }
        if negative {
            return Err(self.error("unexpected character '-'"));
        }
        // Identifiers and word operators.
        let word_len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if word_len == 0 {
            return Err(self.error(format!(
                "unexpected character {:?}",
                rest.chars().next().expect("nonempty")
            )));
        }
        let word = &rest[..word_len];
        self.pos += word_len;
        let tok = match word.to_ascii_lowercase().as_str() {
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "in" => Token::In,
            _ => Token::Ident(word.to_string()),
        };
        Ok(Some((tok, start)))
    }
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<(Token, usize)>,
    index: usize,
    input_len: usize,
    /// Current recursive-descent nesting depth.
    depth: usize,
}

impl Parser {
    /// Enters one nesting level; errors once [`MAX_TARGETING_DEPTH`] is
    /// hit.
    fn descend(&mut self) -> Result<(), TargetParseError> {
        self.depth += 1;
        if self.depth > MAX_TARGETING_DEPTH {
            Err(TargetParseError {
                message: format!("targeting nesting deeper than {MAX_TARGETING_DEPTH} levels"),
                position: self.position(),
                kind: ParseErrorKind::TooDeep,
            })
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.index)
            .map(|(_, p)| *p)
            .unwrap_or(self.input_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|(t, _)| t.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn syntax(&self, message: impl Into<String>) -> TargetParseError {
        TargetParseError {
            message: message.into(),
            position: self.position(),
            kind: ParseErrorKind::Syntax,
        }
    }

    fn parse_or(&mut self) -> Result<TargetExpr, TargetParseError> {
        self.descend()?;
        let or = self.parse_or_at_depth();
        self.ascend();
        or
    }

    fn parse_or_at_depth(&mut self) -> Result<TargetExpr, TargetParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = TargetExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<TargetExpr, TargetParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = TargetExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<TargetExpr, TargetParseError> {
        if self.peek() == Some(&Token::Not) {
            self.advance();
            self.descend()?;
            let inner = self.parse_unary();
            self.ascend();
            return Ok(TargetExpr::Not(Box::new(inner?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<TargetExpr, TargetParseError> {
        if self.peek() == Some(&Token::LParen) {
            self.advance();
            let inner = self.parse_or()?;
            return match self.advance() {
                Some(Token::RParen) => Ok(inner),
                _ => Err(self.syntax("expected ')'")),
            };
        }
        let key = match self.advance() {
            Some(Token::Ident(key)) => key,
            other => return Err(self.syntax(format!("expected an attribute key, found {other:?}"))),
        };
        match self.advance() {
            Some(Token::Op(op)) => {
                let value = self.parse_value()?;
                Ok(TargetExpr::Cmp { key, op, value })
            }
            Some(Token::In) => {
                if self.advance() != Some(Token::LParen) {
                    return Err(self.syntax("expected '(' after 'in'"));
                }
                let mut values = vec![self.parse_value()?];
                loop {
                    match self.advance() {
                        Some(Token::Comma) => values.push(self.parse_value()?),
                        Some(Token::RParen) => break,
                        _ => return Err(self.syntax("expected ',' or ')' in value list")),
                    }
                }
                Ok(TargetExpr::In { key, values })
            }
            other => Err(self.syntax(format!(
                "expected a comparison operator or 'in' after {key:?}, found {other:?}"
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<AttrValue, TargetParseError> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(AttrValue::Int(n)),
            Some(Token::Str(s)) => Ok(AttrValue::Str(s)),
            other => Err(self.syntax(format!(
                "expected an integer or quoted string literal, found {other:?}"
            ))),
        }
    }
}

/// Parses a targeting expression from text into its [`TargetExpr`] AST.
///
/// ```
/// use ssa_bidlang::targeting::{parse_targeting, UserAttrs};
///
/// let expr = parse_targeting("geo = 'us' and not device = 'tv'").unwrap();
/// assert!(expr.matches(&UserAttrs::new().geo("us").device("mobile")));
/// assert!(!expr.matches(&UserAttrs::new().geo("us").device("tv")));
/// assert!(!expr.matches(&UserAttrs::new()));
/// ```
pub fn parse_targeting(input: &str) -> Result<TargetExpr, TargetParseError> {
    let mut lexer = Lexer::new(input);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    let mut parser = Parser {
        tokens,
        index: 0,
        input_len: input.len(),
        depth: 0,
    };
    let expr = parser.parse_or()?;
    if parser.index != parser.tokens.len() {
        return Err(parser.syntax("trailing input after expression"));
    }
    Ok(expr)
}

// ---------------------------------------------------------------------------
// The compiled matcher.
// ---------------------------------------------------------------------------

/// One postfix bytecode instruction; leaves push a comparison result,
/// connectives pop and combine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TargetOp {
    And,
    Or,
    Not,
    Cmp {
        key: String,
        op: CmpOp,
        value: AttrValue,
    },
    In {
        key: String,
        values: Vec<AttrValue>,
    },
}

/// A targeting expression compiled to postfix bytecode, retaining its
/// source text (which is what wire frames and WAL records carry).
///
/// Compiled once per campaign at registration; the per-auction cost is
/// one pass of [`CompiledTargeting::matches`] — an allocation-free,
/// recursion-free stack loop whose depth the parser's
/// [`MAX_TARGETING_DEPTH`] bounds.
///
/// ```
/// use ssa_bidlang::targeting::{CompiledTargeting, UserAttrs};
///
/// let t = CompiledTargeting::parse("segment in ('sports', 'autos') and age >= 21").unwrap();
/// assert!(t.matches(&UserAttrs::new().segment("autos").set_int("age", 34)));
/// assert!(!t.matches(&UserAttrs::new().segment("autos").set_int("age", 20)));
/// assert_eq!(t.source(), "segment in ('sports', 'autos') and age >= 21");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTargeting {
    source: String,
    ops: Vec<TargetOp>,
}

/// Appends `expr`'s postfix code to `ops` iteratively (an explicit work
/// list, so left-deep chains of any length compile without recursion).
fn emit(expr: &TargetExpr, ops: &mut Vec<TargetOp>) {
    enum Work<'a> {
        Visit(&'a TargetExpr),
        Emit(&'a TargetExpr),
    }
    let mut stack = vec![Work::Visit(expr)];
    while let Some(item) = stack.pop() {
        match item {
            Work::Visit(e) => match e {
                TargetExpr::And(a, b) | TargetExpr::Or(a, b) => {
                    stack.push(Work::Emit(e));
                    stack.push(Work::Visit(b));
                    stack.push(Work::Visit(a));
                }
                TargetExpr::Not(inner) => {
                    stack.push(Work::Emit(e));
                    stack.push(Work::Visit(inner));
                }
                leaf => stack.push(Work::Emit(leaf)),
            },
            Work::Emit(e) => ops.push(match e {
                TargetExpr::And(..) => TargetOp::And,
                TargetExpr::Or(..) => TargetOp::Or,
                TargetExpr::Not(..) => TargetOp::Not,
                TargetExpr::Cmp { key, op, value } => TargetOp::Cmp {
                    key: key.clone(),
                    op: *op,
                    value: value.clone(),
                },
                TargetExpr::In { key, values } => TargetOp::In {
                    key: key.clone(),
                    values: values.clone(),
                },
            }),
        }
    }
}

impl CompiledTargeting {
    /// Parses and compiles a targeting source in one step.
    pub fn parse(source: &str) -> Result<Self, TargetParseError> {
        let expr = parse_targeting(source)?;
        Ok(CompiledTargeting::compile(&expr, source))
    }

    /// Compiles an already-parsed expression, recording `source` as the
    /// canonical text to journal and put on the wire.
    pub fn compile(expr: &TargetExpr, source: &str) -> Self {
        let mut ops = Vec::new();
        emit(expr, &mut ops);
        let compiled = CompiledTargeting {
            source: source.to_string(),
            ops,
        };
        debug_assert!(
            compiled.max_stack() <= EVAL_STACK,
            "postfix stack outgrew the depth bound"
        );
        compiled
    }

    /// The source text the expression was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Maximum evaluation-stack occupancy of the program.
    fn max_stack(&self) -> usize {
        let mut depth = 0usize;
        let mut max = 0usize;
        for op in &self.ops {
            match op {
                TargetOp::And | TargetOp::Or => depth -= 1,
                TargetOp::Not => {}
                TargetOp::Cmp { .. } | TargetOp::In { .. } => {
                    depth += 1;
                    max = max.max(depth);
                }
            }
        }
        max
    }

    /// Whether a query with these attributes satisfies the expression.
    /// Allocation-free and recursion-free: one pass over the bytecode with
    /// a fixed-size boolean stack.
    pub fn matches(&self, attrs: &UserAttrs) -> bool {
        let mut stack = [false; EVAL_STACK];
        let mut top = 0usize;
        for op in &self.ops {
            match op {
                TargetOp::And => {
                    top -= 1;
                    stack[top - 1] = stack[top - 1] && stack[top];
                }
                TargetOp::Or => {
                    top -= 1;
                    stack[top - 1] = stack[top - 1] || stack[top];
                }
                TargetOp::Not => stack[top - 1] = !stack[top - 1],
                TargetOp::Cmp { key, op, value } => {
                    stack[top] = compare(attrs.get(key), *op, value);
                    top += 1;
                }
                TargetOp::In { key, values } => {
                    stack[top] = attrs
                        .get(key)
                        .map(|have| values.iter().any(|v| v == have))
                        .unwrap_or(false);
                    top += 1;
                }
            }
        }
        debug_assert_eq!(top, 1, "a well-formed program leaves one result");
        stack[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> UserAttrs {
        UserAttrs::new()
            .geo("us")
            .device("mobile")
            .segment("sports")
            .set_int("age", 34)
    }

    #[test]
    fn attribute_bags_sort_and_replace() {
        let a = UserAttrs::new().set_int("z", 1).geo("us").set_int("z", 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("z"), Some(&AttrValue::Int(2)));
        assert_eq!(a.get("geo"), Some(&AttrValue::Str("us".into())));
        assert_eq!(a.get("missing"), None);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["geo", "z"], "entries stay sorted by key");
        // Insertion order never matters: equal content ⇒ equal bags.
        let b = UserAttrs::new().geo("us").set_int("z", 2);
        assert_eq!(a, b);
        assert!(UserAttrs::empty_ref().is_empty());
    }

    #[test]
    fn comparisons_follow_the_documented_semantics() {
        let t = |src: &str| CompiledTargeting::parse(src).expect("parses");
        let a = attrs();
        assert!(t("geo = 'us'").matches(&a));
        assert!(!t("geo = 'de'").matches(&a));
        assert!(t("geo != 'de'").matches(&a));
        assert!(t("age >= 21").matches(&a));
        assert!(t("age < 35").matches(&a));
        assert!(!t("age > 34").matches(&a));
        assert!(t("age <= 34").matches(&a));
        // Missing keys fail every comparison, != and in included.
        let empty = UserAttrs::new();
        for src in ["geo = 'us'", "geo != 'us'", "age < 99", "geo in ('us')"] {
            assert!(!t(src).matches(&empty), "{src} held on empty attrs");
        }
        // Type mismatches are false, both directions.
        assert!(!t("geo = 5").matches(&a));
        assert!(!t("geo != 5").matches(&a), "!= needs matching types");
        assert!(!t("age = 'us'").matches(&a));
        // Strings never order.
        assert!(!t("geo < 'zz'").matches(&a));
        // Set membership.
        assert!(t("segment in ('autos', 'sports')").matches(&a));
        assert!(!t("segment in ('autos', 'news')").matches(&a));
        assert!(t("age in (33, 34)").matches(&a));
    }

    #[test]
    fn connectives_and_precedence() {
        let t = |src: &str| CompiledTargeting::parse(src).expect("parses");
        let a = attrs();
        assert!(t("geo = 'us' and device = 'mobile'").matches(&a));
        assert!(!t("geo = 'us' and device = 'tv'").matches(&a));
        assert!(t("geo = 'de' or device = 'mobile'").matches(&a));
        assert!(t("not geo = 'de'").matches(&a));
        // and binds tighter than or: the left disjunct alone decides.
        assert!(t("geo = 'us' or device = 'tv' and age < 0").matches(&a));
        assert!(!t("(geo = 'us' or device = 'tv') and age < 0").matches(&a));
        // Case-insensitive word operators.
        assert!(t("geo = 'us' AND NOT device = 'tv'").matches(&a));
    }

    #[test]
    fn compiled_matches_reference_on_every_shape() {
        // The bytecode and the AST interpreter must agree everywhere,
        // including deep mixes of every construct.
        let sources = [
            "geo = 'us'",
            "not not geo = 'us'",
            "geo = 'us' and device = 'mobile' or segment in ('sports') and age > 30",
            "not (geo = 'de' or (device = 'tv' and not age < 21))",
            "age in (1, 2, 34) or (geo != 'us' and age >= 0)",
        ];
        let bags = [
            UserAttrs::new(),
            attrs(),
            UserAttrs::new().geo("de").device("tv"),
            UserAttrs::new().set_int("age", 20),
        ];
        for src in sources {
            let expr = parse_targeting(src).expect("parses");
            let compiled = CompiledTargeting::compile(&expr, src);
            for bag in &bags {
                assert_eq!(
                    compiled.matches(bag),
                    expr.matches(bag),
                    "compiled and reference disagree on {src:?}"
                );
            }
        }
    }

    #[test]
    fn long_flat_chains_evaluate_in_constant_stack() {
        // Left-deep chains are the unbounded shape the fixed-size stack
        // must absorb: 10k conjuncts parse at depth 1 and evaluate fine.
        let src = (0..10_000)
            .map(|i| format!("age != {}", i + 1000))
            .collect::<Vec<_>>()
            .join(" and ");
        let t = CompiledTargeting::parse(&src).expect("flat chains are not deep");
        assert!(t.matches(&UserAttrs::new().set_int("age", 7)));
        assert!(!t.matches(&UserAttrs::new().set_int("age", 1500)));
        assert!(!t.matches(&UserAttrs::new()), "missing key fails !=");
    }

    #[test]
    fn hostile_nesting_is_a_typed_error() {
        for input in [
            format!("{}geo = 'us'{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}geo = 'us'", "not ".repeat(100_000)),
        ] {
            let err = parse_targeting(&input).expect_err("depth limit");
            assert_eq!(err.kind, ParseErrorKind::TooDeep, "{} bytes", input.len());
            assert!(err.message.contains("nesting"));
        }
        // Reasonable nesting still parses (and compiles).
        let ok = format!("{}geo = 'us'{}", "(".repeat(20), ")".repeat(20));
        assert!(CompiledTargeting::parse(&ok).is_ok());
    }

    #[test]
    fn syntax_errors_are_typed_and_positioned() {
        for src in [
            "",
            "geo",
            "geo =",
            "geo = 'us",
            "= 'us'",
            "geo in ()",
            "geo in ('us'",
            "geo ~ 'us'",
            "geo = 'us' extra",
            "and geo = 'us'",
            "age = 99999999999999999999999",
        ] {
            let err = CompiledTargeting::parse(src).expect_err(src);
            assert_eq!(err.kind, ParseErrorKind::Syntax, "{src:?}");
        }
        let err = CompiledTargeting::parse("geo ~ 'us'").unwrap_err();
        assert_eq!(err.position, 4);
        let display: Box<dyn std::error::Error> = Box::new(err);
        assert!(display.to_string().contains("byte 4"));
    }

    #[test]
    fn source_survives_compilation() {
        let src = "geo = 'us' and device in ('mobile', 'tablet')";
        let t = CompiledTargeting::parse(src).unwrap();
        assert_eq!(t.source(), src);
        // Reparsing the retained source reproduces the same program —
        // the round trip the WAL and wire layers rely on.
        assert_eq!(CompiledTargeting::parse(t.source()).unwrap(), t);
    }
}
