//! 2-dependent bids and the Theorem 3 reduction.
//!
//! Theorem 3 proves winner determination APX-hard for OR-bids on 2-dependent
//! events by encoding a weighted directed graph as "placed-above" bids: for
//! each arc *(i, i′)* with weight *w*, advertiser *i* bids *w* on the event
//! `E_{i>i'}` — "*i* gets a slot and is placed above *i′*, who may or may not
//! get a slot". Winner determination then equals finding the maximum-weight
//! feedback arc set over all size-*k* subgraphs.
//!
//! This module provides:
//!
//! * [`AboveBid`] — a 2-dependent bid and its event semantics,
//! * [`WeightedDigraph`] and [`encode_digraph`] — the reduction of the proof,
//! * [`solve_exact`] — brute-force winner determination over all
//!   `(n choose k) · k!` assignments (exponential; for validation only),
//! * [`ordering_revenue`] — direct evaluation of an ordering on the digraph,
//! * [`solve_local_search`] — a swap/replace local-search heuristic, the
//!   practical fallback the hardness result motivates.

use crate::ids::{AdvertiserId, SlotId};
use crate::money::Money;

/// A bid of `value` on the event `E_{bidder > other}`: the bidder is placed
/// in some slot, and `other` is either in a strictly lower slot or unplaced.
///
/// This event depends on the placements of exactly two advertisers, so it is
/// 2-dependent in the sense of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AboveBid {
    /// The advertiser placing (and paying) the bid.
    pub bidder: AdvertiserId,
    /// The competitor the bidder wants to appear above.
    pub other: AdvertiserId,
    /// The amount paid if the event holds.
    pub value: Money,
}

impl AboveBid {
    /// Evaluates the event against a slot assignment
    /// (`slot_of[i]` = slot of advertiser `i`, or `None`).
    pub fn holds(&self, slot_of: &[Option<SlotId>]) -> bool {
        match slot_of[self.bidder.index()] {
            None => false,
            Some(mine) => match slot_of[self.other.index()] {
                None => true,
                Some(theirs) => mine.is_above(theirs),
            },
        }
    }
}

/// Total revenue of a set of above-bids under an assignment, assuming
/// advertisers pay what they bid.
pub fn bids_revenue(bids: &[AboveBid], slot_of: &[Option<SlotId>]) -> Money {
    bids.iter()
        .filter(|b| b.holds(slot_of))
        .map(|b| b.value)
        .sum()
}

/// A weighted directed graph on `n` advertisers; `weight[i][j]` is the value
/// advertiser `i` attaches to appearing above advertiser `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedDigraph {
    weights: Vec<Vec<Money>>,
}

impl WeightedDigraph {
    /// Creates a graph with `n` vertices and all-zero weights.
    pub fn new(n: usize) -> Self {
        WeightedDigraph {
            weights: vec![vec![Money::ZERO; n]; n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sets the weight of arc `(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (`from == to`) — `E_{i>i}` is not a meaningful
    /// event — or negative weights.
    pub fn set_weight(&mut self, from: AdvertiserId, to: AdvertiserId, w: Money) {
        assert_ne!(from, to, "self-loops are not expressible as above-bids");
        assert!(w >= Money::ZERO, "arc weights must be non-negative");
        self.weights[from.index()][to.index()] = w;
    }

    /// The weight of arc `(from, to)`.
    pub fn weight(&self, from: AdvertiserId, to: AdvertiserId) -> Money {
        self.weights[from.index()][to.index()]
    }
}

/// The Theorem 3 encoding: each positive-weight arc `(i, i′)` becomes a bid
/// by `i` of that weight on `E_{i>i'}`.
pub fn encode_digraph(graph: &WeightedDigraph) -> Vec<AboveBid> {
    let n = graph.len();
    let mut bids = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let w = graph.weights[i][j];
            if w.is_positive() {
                bids.push(AboveBid {
                    bidder: AdvertiserId::from(i),
                    other: AdvertiserId::from(j),
                    value: w,
                });
            }
        }
    }
    bids
}

/// Revenue of placing `ordering[0]` in slot 1, `ordering[1]` in slot 2, …
/// computed **directly on the digraph**: each placed advertiser collects the
/// weight of its arcs to every advertiser placed later or not placed at all.
///
/// This is the "maximum weighted feedback arc set over size-k subgraphs"
/// objective of the Theorem 3 proof.
pub fn ordering_revenue(graph: &WeightedDigraph, ordering: &[AdvertiserId]) -> Money {
    let mut total = Money::ZERO;
    for (pos, &a) in ordering.iter().enumerate() {
        for other in 0..graph.len() {
            if other == a.index() {
                continue;
            }
            // `other` is below `a` iff it appears strictly later in the
            // ordering or not at all.
            let above = ordering[..=pos].iter().any(|&x| x.index() == other);
            if !above {
                total += graph.weights[a.index()][other];
            }
        }
    }
    total
}

/// Result of an exact or heuristic 2-dependent winner determination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoDependentSolution {
    /// The chosen ordering: `ordering[j]` occupies slot `j+1`. May be shorter
    /// than `k` if fewer advertisers than slots exist.
    pub ordering: Vec<AdvertiserId>,
    /// The revenue achieved, assuming advertisers pay what they bid.
    pub revenue: Money,
}

impl TwoDependentSolution {
    /// Converts the ordering into a `slot_of` assignment over `n`
    /// advertisers.
    pub fn slot_assignment(&self, n: usize) -> Vec<Option<SlotId>> {
        let mut slot_of = vec![None; n];
        for (j, a) in self.ordering.iter().enumerate() {
            slot_of[a.index()] = Some(SlotId::from_index0(j));
        }
        slot_of
    }
}

/// Exact winner determination for above-bids by brute force over all
/// `(n choose k) · k!` ordered selections.
///
/// Exponential — Theorem 3 says nothing substantially better exists — so this
/// is intended for validation on small instances. Guarded to `n ≤ 12`.
pub fn solve_exact(bids: &[AboveBid], n: usize, k: u16) -> TwoDependentSolution {
    assert!(n <= 12, "brute-force solver is restricted to n ≤ 12");
    let k = usize::from(k).min(n);
    let mut best = TwoDependentSolution {
        ordering: Vec::new(),
        revenue: Money::ZERO,
    };
    let mut current: Vec<AdvertiserId> = Vec::with_capacity(k);
    let mut used = vec![false; n];
    fn recurse(
        bids: &[AboveBid],
        n: usize,
        k: usize,
        current: &mut Vec<AdvertiserId>,
        used: &mut Vec<bool>,
        best: &mut TwoDependentSolution,
    ) {
        // Evaluate every prefix too: leaving slots empty is allowed.
        let slot_of = {
            let mut s = vec![None; n];
            for (j, a) in current.iter().enumerate() {
                s[a.index()] = Some(SlotId::from_index0(j));
            }
            s
        };
        let revenue = bids_revenue(bids, &slot_of);
        if revenue > best.revenue {
            *best = TwoDependentSolution {
                ordering: current.clone(),
                revenue,
            };
        }
        if current.len() == k {
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                current.push(AdvertiserId::from(i));
                recurse(bids, n, k, current, used, best);
                current.pop();
                used[i] = false;
            }
        }
    }
    recurse(bids, n, k, &mut current, &mut used, &mut best);
    best
}

/// Local-search heuristic for 2-dependent winner determination: greedy
/// construction followed by best-improvement swap / replace moves.
///
/// Theorem 3 rules out exact polynomial algorithms (unless P = NP); this is
/// the pragmatic alternative a provider could deploy. Runs in
/// `O(iterations · n · k)` per improvement round.
pub fn solve_local_search(
    graph: &WeightedDigraph,
    k: u16,
    max_rounds: usize,
) -> TwoDependentSolution {
    let n = graph.len();
    let k = usize::from(k).min(n);
    // Multi-start: once with a free greedy choice, then once per forced
    // first pick. Local optima of the move set below depend heavily on who
    // sits in slot 1, so restarting over slot-1 candidates is the cheapest
    // effective diversification (O(n) restarts of an O(n·k) search).
    let mut best = local_search_from(graph, k, max_rounds, None);
    for first in 0..n {
        let candidate = local_search_from(graph, k, max_rounds, Some(AdvertiserId::from(first)));
        if candidate.revenue > best.revenue {
            best = candidate;
        }
    }
    best
}

fn local_search_from(
    graph: &WeightedDigraph,
    k: usize,
    max_rounds: usize,
    forced_first: Option<AdvertiserId>,
) -> TwoDependentSolution {
    let n = graph.len();
    // Greedy: repeatedly append the advertiser with the largest marginal gain.
    let mut ordering: Vec<AdvertiserId> = Vec::with_capacity(k);
    let mut used = vec![false; n];
    if let Some(first) = forced_first {
        if k > 0 {
            used[first.index()] = true;
            ordering.push(first);
        }
    }
    while ordering.len() < k {
        let mut best_gain = Money::ZERO;
        let mut best_adv = None;
        #[allow(clippy::needless_range_loop)] // `i` indexes both `used` and ids
        for i in 0..n {
            if used[i] {
                continue;
            }
            ordering.push(AdvertiserId::from(i));
            let gain = ordering_revenue(graph, &ordering);
            ordering.pop();
            if best_adv.is_none() || gain > best_gain {
                best_gain = gain;
                best_adv = Some(i);
            }
        }
        let Some(i) = best_adv else { break };
        used[i] = true;
        ordering.push(AdvertiserId::from(i));
    }
    let mut revenue = ordering_revenue(graph, &ordering);

    for _ in 0..max_rounds {
        let mut improved = false;
        // Swap moves: exchange two placed advertisers.
        for a in 0..ordering.len() {
            for b in (a + 1)..ordering.len() {
                ordering.swap(a, b);
                let r = ordering_revenue(graph, &ordering);
                if r > revenue {
                    revenue = r;
                    improved = true;
                } else {
                    ordering.swap(a, b);
                }
            }
        }
        // Replace moves: substitute a placed advertiser with an unplaced one.
        for pos in 0..ordering.len() {
            for i in 0..n {
                if used[i] {
                    continue;
                }
                let old = ordering[pos];
                ordering[pos] = AdvertiserId::from(i);
                let r = ordering_revenue(graph, &ordering);
                if r > revenue {
                    revenue = r;
                    used[old.index()] = false;
                    used[i] = true;
                    improved = true;
                } else {
                    ordering[pos] = old;
                }
            }
        }
        // Insert moves: insert an unplaced advertiser at any position,
        // evicting the bottom advertiser if the page is full. This compound
        // move escapes local optima that single swaps / replaces cannot
        // (e.g. when the optimum needs a new advertiser *above* the current
        // winners).
        for pos in 0..=ordering.len() {
            for i in 0..n {
                if used[i] {
                    continue;
                }
                let mut candidate = ordering.clone();
                candidate.insert(pos.min(candidate.len()), AdvertiserId::from(i));
                let evicted = if candidate.len() > k {
                    candidate.pop()
                } else {
                    None
                };
                let r = ordering_revenue(graph, &candidate);
                if r > revenue {
                    revenue = r;
                    used[i] = true;
                    if let Some(e) = evicted {
                        used[e.index()] = false;
                    }
                    ordering = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    TwoDependentSolution { ordering, revenue }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adv(i: usize) -> AdvertiserId {
        AdvertiserId::from(i)
    }

    #[test]
    fn above_bid_semantics() {
        let bid = AboveBid {
            bidder: adv(0),
            other: adv(1),
            value: Money::from_cents(3),
        };
        // Bidder above other.
        let s = vec![Some(SlotId::new(1)), Some(SlotId::new(2))];
        assert!(bid.holds(&s));
        // Bidder below other.
        let s = vec![Some(SlotId::new(2)), Some(SlotId::new(1))];
        assert!(!bid.holds(&s));
        // Other unplaced: event still holds ("who may or may not get a slot").
        let s = vec![Some(SlotId::new(1)), None];
        assert!(bid.holds(&s));
        // Bidder unplaced: event fails.
        let s = vec![None, Some(SlotId::new(1))];
        assert!(!bid.holds(&s));
    }

    #[test]
    fn encode_skips_zero_arcs() {
        let mut g = WeightedDigraph::new(3);
        g.set_weight(adv(0), adv(1), Money::from_cents(5));
        g.set_weight(adv(2), adv(0), Money::from_cents(2));
        let bids = encode_digraph(&g);
        assert_eq!(bids.len(), 2);
    }

    #[test]
    fn exact_matches_direct_objective_on_triangle() {
        // 0 → 1 (5), 1 → 2 (4), 2 → 0 (3): a weighted cycle; with k = 2 the
        // best is to place the endpoints of the heaviest "path".
        let mut g = WeightedDigraph::new(3);
        g.set_weight(adv(0), adv(1), Money::from_cents(5));
        g.set_weight(adv(1), adv(2), Money::from_cents(4));
        g.set_weight(adv(2), adv(0), Money::from_cents(3));
        let bids = encode_digraph(&g);
        let sol = solve_exact(&bids, 3, 2);
        assert_eq!(sol.revenue, ordering_revenue(&g, &sol.ordering));
        // Best: place 0 then 1 → 0 collects w(0,1)=5 (1 below) and nothing
        // from 2 (2 unplaced counts as below: w(0,2)=0), 1 collects
        // w(1,2)=4 → 9.
        assert_eq!(sol.revenue.cents(), 9);
    }

    #[test]
    fn exact_can_leave_slots_empty() {
        // Only one profitable advertiser; filling further slots is harmless
        // but the empty-prefix evaluation must not crash and the optimum must
        // be found.
        let mut g = WeightedDigraph::new(2);
        g.set_weight(adv(0), adv(1), Money::from_cents(7));
        let bids = encode_digraph(&g);
        let sol = solve_exact(&bids, 2, 2);
        assert_eq!(sol.revenue.cents(), 7);
        assert_eq!(sol.ordering[0], adv(0));
    }

    #[test]
    fn local_search_reaches_exact_on_small_instances() {
        let mut g = WeightedDigraph::new(5);
        let weights = [
            (0, 1, 4),
            (1, 0, 2),
            (2, 3, 9),
            (3, 4, 1),
            (4, 2, 6),
            (0, 4, 3),
        ];
        for (a, b, w) in weights {
            g.set_weight(adv(a), adv(b), Money::from_cents(w));
        }
        let exact = solve_exact(&encode_digraph(&g), 5, 3);
        let heuristic = solve_local_search(&g, 3, 50);
        assert!(heuristic.revenue <= exact.revenue);
        // On this instance local search finds the optimum.
        assert_eq!(heuristic.revenue, exact.revenue);
    }

    #[test]
    fn slot_assignment_roundtrip() {
        let sol = TwoDependentSolution {
            ordering: vec![adv(2), adv(0)],
            revenue: Money::ZERO,
        };
        let s = sol.slot_assignment(3);
        assert_eq!(s[2], Some(SlotId::new(1)));
        assert_eq!(s[0], Some(SlotId::new(2)));
        assert_eq!(s[1], None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = WeightedDigraph::new(2);
        g.set_weight(adv(0), adv(0), Money::from_cents(1));
    }
}
