//! A small text parser for bid formulas.
//!
//! Grammar (precedence low → high): `or := and ('|' and)*`,
//! `and := unary ('&' unary)*`, `unary := '!' unary | atom`,
//! `atom := 'Click' | 'Purchase' | 'SlotN' | 'HeavySlotN' | 'true' | 'false'
//! | '(' or ')'`.
//!
//! Both ASCII (`& | !`) and the paper's mathematical connectives
//! (`∧ ∨ ¬`) are accepted, as are the spellings `AND`/`OR`/`NOT`
//! (case-insensitive) used by the SQL-flavoured bidding programs.

use crate::formula::Formula;
use crate::ids::SlotId;
use std::fmt;

/// Error produced when a formula string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Click,
    Purchase,
    Slot(u16),
    HeavySlot(u16),
    True,
    False,
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = self.rest();
        if rest.is_empty() {
            return Ok(None);
        }
        // Single-char / symbol tokens first.
        for (sym, tok) in [
            ("∧", Token::And),
            ("∨", Token::Or),
            ("¬", Token::Not),
            ("⊤", Token::True),
            ("⊥", Token::False),
            ("&&", Token::And),
            ("||", Token::Or),
            ("&", Token::And),
            ("|", Token::Or),
            ("!", Token::Not),
            ("(", Token::LParen),
            (")", Token::RParen),
        ] {
            if let Some(stripped) = rest.strip_prefix(sym) {
                self.pos = self.input.len() - stripped.len();
                return Ok(Some((tok, start)));
            }
        }
        // Identifier tokens.
        let word_len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if word_len == 0 {
            return Err(self.error(format!(
                "unexpected character {:?}",
                rest.chars().next().expect("nonempty")
            )));
        }
        let word = &rest[..word_len];
        self.pos += word_len;
        let lower = word.to_ascii_lowercase();
        let tok = match lower.as_str() {
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "click" => Token::Click,
            "purchase" => Token::Purchase,
            "true" => Token::True,
            "false" => Token::False,
            _ => {
                if let Some(num) = lower.strip_prefix("heavyslot") {
                    Token::HeavySlot(parse_slot_number(num, start)?)
                } else if let Some(num) = lower.strip_prefix("slot") {
                    Token::Slot(parse_slot_number(num, start)?)
                } else {
                    return Err(ParseError {
                        message: format!("unknown identifier {word:?}"),
                        position: start,
                    });
                }
            }
        };
        Ok(Some((tok, start)))
    }
}

fn parse_slot_number(digits: &str, position: usize) -> Result<u16, ParseError> {
    let n: u16 = digits.parse().map_err(|_| ParseError {
        message: format!("invalid slot number {digits:?}"),
        position,
    })?;
    if n == 0 {
        return Err(ParseError {
            message: "slot numbers are 1-based".to_string(),
            position,
        });
    }
    Ok(n)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    index: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.index)
            .map(|(_, p)| *p)
            .unwrap_or(self.input_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|(t, _)| t.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = lhs | rhs;
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = lhs & rhs;
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.advance();
            return Ok(!self.parse_unary()?);
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Formula, ParseError> {
        let position = self.position();
        match self.advance() {
            Some(Token::Click) => Ok(Formula::click()),
            Some(Token::Purchase) => Ok(Formula::purchase()),
            Some(Token::Slot(n)) => Ok(Formula::slot(SlotId::new(n))),
            Some(Token::HeavySlot(n)) => Ok(Formula::heavy_in_slot(SlotId::new(n))),
            Some(Token::True) => Ok(Formula::True),
            Some(Token::False) => Ok(Formula::False),
            Some(Token::LParen) => {
                let inner = self.parse_or()?;
                match self.advance() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError {
                        message: "expected ')'".to_string(),
                        position: self.position(),
                    }),
                }
            }
            other => Err(ParseError {
                message: format!("expected a predicate, found {other:?}"),
                position,
            }),
        }
    }
}

/// Parses a formula from text.
///
/// ```
/// use ssa_bidlang::{parse_formula, Formula, SlotId};
/// let f = parse_formula("Click & Slot1 | Purchase").unwrap();
/// assert_eq!(
///     f,
///     Formula::click() & Formula::slot(SlotId::new(1)) | Formula::purchase()
/// );
/// ```
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut lexer = Lexer::new(input);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    let mut parser = Parser {
        tokens,
        index: 0,
        input_len: input.len(),
    };
    let formula = parser.parse_or()?;
    if parser.index != parser.tokens.len() {
        return Err(ParseError {
            message: "trailing input after formula".to_string(),
            position: parser.position(),
        });
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figures() {
        // Figure 4 / 6 formulas.
        assert_eq!(
            parse_formula("Click ∧ Slot1").unwrap(),
            Formula::click() & Formula::slot(SlotId::new(1))
        );
        assert_eq!(parse_formula("Click").unwrap(), Formula::click());
        // Figure 3.
        assert_eq!(
            parse_formula("Slot1 ∨ Slot2").unwrap(),
            Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(2))
        );
        assert_eq!(parse_formula("Purchase").unwrap(), Formula::purchase());
    }

    #[test]
    fn ascii_and_word_operators() {
        let expect = Formula::click() & !Formula::purchase();
        assert_eq!(parse_formula("Click & !Purchase").unwrap(), expect);
        assert_eq!(parse_formula("Click AND NOT Purchase").unwrap(), expect);
        assert_eq!(parse_formula("Click && ¬Purchase").unwrap(), expect);
    }

    #[test]
    fn precedence_and_parentheses() {
        // AND binds tighter than OR.
        assert_eq!(
            parse_formula("Purchase | Click & Slot2").unwrap(),
            Formula::purchase() | (Formula::click() & Formula::slot(SlotId::new(2)))
        );
        assert_eq!(
            parse_formula("(Purchase | Click) & Slot2").unwrap(),
            (Formula::purchase() | Formula::click()) & Formula::slot(SlotId::new(2))
        );
    }

    #[test]
    fn heavy_slots_and_constants() {
        assert_eq!(
            parse_formula("HeavySlot3 & true").unwrap(),
            Formula::heavy_in_slot(SlotId::new(3)) & Formula::True
        );
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
    }

    #[test]
    fn case_insensitive_atoms() {
        assert_eq!(parse_formula("click").unwrap(), Formula::click());
        assert_eq!(
            parse_formula("SLOT2").unwrap(),
            Formula::slot(SlotId::new(2))
        );
    }

    #[test]
    fn errors() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("Click &").is_err());
        assert!(parse_formula("(Click").is_err());
        assert!(parse_formula("Slot0").is_err());
        assert!(parse_formula("Gadget").is_err());
        assert!(parse_formula("Click Click").is_err());
        assert!(parse_formula("Slot99999999").is_err());
        let err = parse_formula("Click @ Purchase").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.position, 6);
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "Click ∧ Slot1",
            "Purchase ∨ Click ∧ Slot2",
            "(Purchase ∨ Click) ∧ Slot2",
            "¬(Click ∨ Purchase)",
            "Slot1 ∨ Slot2 ∨ Slot3",
        ] {
            let f = parse_formula(text).unwrap();
            let reparsed = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, reparsed, "roundtrip failed for {text}");
        }
    }
}
