//! A small text parser for bid formulas.
//!
//! Grammar (precedence low → high): `or := and ('|' and)*`,
//! `and := unary ('&' unary)*`, `unary := '!' unary | atom`,
//! `atom := 'Click' | 'Purchase' | 'SlotN' | 'HeavySlotN' | 'true' | 'false'
//! | '(' or ')'`.
//!
//! Both ASCII (`& | !`) and the paper's mathematical connectives
//! (`∧ ∨ ¬`) are accepted, as are the spellings `AND`/`OR`/`NOT`
//! (case-insensitive) used by the SQL-flavoured bidding programs.

use crate::formula::Formula;
use crate::ids::SlotId;
use std::fmt;

/// Maximum formula nesting depth. Formulas arrive from untrusted
/// advertiser programs; unbounded `(((…` or `!!!…` chains would otherwise
/// overflow the recursive-descent parser's stack.
pub const MAX_FORMULA_DEPTH: usize = 64;

/// What kind of parse failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorKind {
    /// Malformed input (bad token, missing operand, trailing input, …).
    #[default]
    Syntax,
    /// Nesting exceeded [`MAX_FORMULA_DEPTH`].
    TooDeep,
}

/// Error produced when a formula string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
    /// Failure category (syntax vs. the nesting depth limit).
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    And,
    Or,
    Not,
    LParen,
    RParen,
    Click,
    Purchase,
    Slot(u16),
    HeavySlot(u16),
    True,
    False,
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
            kind: ParseErrorKind::Syntax,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let rest = self.rest();
        if rest.is_empty() {
            return Ok(None);
        }
        // Single-char / symbol tokens first.
        for (sym, tok) in [
            ("∧", Token::And),
            ("∨", Token::Or),
            ("¬", Token::Not),
            ("⊤", Token::True),
            ("⊥", Token::False),
            ("&&", Token::And),
            ("||", Token::Or),
            ("&", Token::And),
            ("|", Token::Or),
            ("!", Token::Not),
            ("(", Token::LParen),
            (")", Token::RParen),
        ] {
            if let Some(stripped) = rest.strip_prefix(sym) {
                self.pos = self.input.len() - stripped.len();
                return Ok(Some((tok, start)));
            }
        }
        // Identifier tokens.
        let word_len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if word_len == 0 {
            return Err(self.error(format!(
                "unexpected character {:?}",
                rest.chars().next().expect("nonempty")
            )));
        }
        let word = &rest[..word_len];
        self.pos += word_len;
        let lower = word.to_ascii_lowercase();
        let tok = match lower.as_str() {
            "and" => Token::And,
            "or" => Token::Or,
            "not" => Token::Not,
            "click" => Token::Click,
            "purchase" => Token::Purchase,
            "true" => Token::True,
            "false" => Token::False,
            _ => {
                if let Some(num) = lower.strip_prefix("heavyslot") {
                    Token::HeavySlot(parse_slot_number(num, start)?)
                } else if let Some(num) = lower.strip_prefix("slot") {
                    Token::Slot(parse_slot_number(num, start)?)
                } else {
                    return Err(ParseError {
                        message: format!("unknown identifier {word:?}"),
                        position: start,
                        kind: ParseErrorKind::Syntax,
                    });
                }
            }
        };
        Ok(Some((tok, start)))
    }
}

fn parse_slot_number(digits: &str, position: usize) -> Result<u16, ParseError> {
    let n: u16 = digits.parse().map_err(|_| ParseError {
        message: format!("invalid slot number {digits:?}"),
        position,
        kind: ParseErrorKind::Syntax,
    })?;
    if n == 0 {
        return Err(ParseError {
            message: "slot numbers are 1-based".to_string(),
            position,
            kind: ParseErrorKind::Syntax,
        });
    }
    Ok(n)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    index: usize,
    input_len: usize,
    /// Current recursive-descent nesting depth.
    depth: usize,
}

impl Parser {
    /// Enters one nesting level; errors once [`MAX_FORMULA_DEPTH`] is hit.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_FORMULA_DEPTH {
            Err(ParseError {
                message: format!("formula nesting deeper than {MAX_FORMULA_DEPTH} levels"),
                position: self.position(),
                kind: ParseErrorKind::TooDeep,
            })
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.index)
            .map(|(_, p)| *p)
            .unwrap_or(self.input_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.index).map(|(t, _)| t.clone());
        if t.is_some() {
            self.index += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        self.descend()?;
        let or = self.parse_or_at_depth();
        self.ascend();
        or
    }

    fn parse_or_at_depth(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = lhs | rhs;
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = lhs & rhs;
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.advance();
            self.descend()?;
            let inner = self.parse_unary();
            self.ascend();
            return Ok(!inner?);
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Formula, ParseError> {
        let position = self.position();
        match self.advance() {
            Some(Token::Click) => Ok(Formula::click()),
            Some(Token::Purchase) => Ok(Formula::purchase()),
            Some(Token::Slot(n)) => Ok(Formula::slot(SlotId::new(n))),
            Some(Token::HeavySlot(n)) => Ok(Formula::heavy_in_slot(SlotId::new(n))),
            Some(Token::True) => Ok(Formula::True),
            Some(Token::False) => Ok(Formula::False),
            Some(Token::LParen) => {
                let inner = self.parse_or()?;
                match self.advance() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError {
                        message: "expected ')'".to_string(),
                        position: self.position(),
                        kind: ParseErrorKind::Syntax,
                    }),
                }
            }
            other => Err(ParseError {
                message: format!("expected a predicate, found {other:?}"),
                position,
                kind: ParseErrorKind::Syntax,
            }),
        }
    }
}

/// Parses a formula from text.
///
/// ```
/// use ssa_bidlang::{parse_formula, Formula, SlotId};
/// let f = parse_formula("Click & Slot1 | Purchase").unwrap();
/// assert_eq!(
///     f,
///     Formula::click() & Formula::slot(SlotId::new(1)) | Formula::purchase()
/// );
/// ```
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut lexer = Lexer::new(input);
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        tokens.push(tok);
    }
    let mut parser = Parser {
        tokens,
        index: 0,
        input_len: input.len(),
        depth: 0,
    };
    let formula = parser.parse_or()?;
    if parser.index != parser.tokens.len() {
        return Err(ParseError {
            message: "trailing input after formula".to_string(),
            position: parser.position(),
            kind: ParseErrorKind::Syntax,
        });
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figures() {
        // Figure 4 / 6 formulas.
        assert_eq!(
            parse_formula("Click ∧ Slot1").unwrap(),
            Formula::click() & Formula::slot(SlotId::new(1))
        );
        assert_eq!(parse_formula("Click").unwrap(), Formula::click());
        // Figure 3.
        assert_eq!(
            parse_formula("Slot1 ∨ Slot2").unwrap(),
            Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(2))
        );
        assert_eq!(parse_formula("Purchase").unwrap(), Formula::purchase());
    }

    #[test]
    fn ascii_and_word_operators() {
        let expect = Formula::click() & !Formula::purchase();
        assert_eq!(parse_formula("Click & !Purchase").unwrap(), expect);
        assert_eq!(parse_formula("Click AND NOT Purchase").unwrap(), expect);
        assert_eq!(parse_formula("Click && ¬Purchase").unwrap(), expect);
    }

    #[test]
    fn precedence_and_parentheses() {
        // AND binds tighter than OR.
        assert_eq!(
            parse_formula("Purchase | Click & Slot2").unwrap(),
            Formula::purchase() | (Formula::click() & Formula::slot(SlotId::new(2)))
        );
        assert_eq!(
            parse_formula("(Purchase | Click) & Slot2").unwrap(),
            (Formula::purchase() | Formula::click()) & Formula::slot(SlotId::new(2))
        );
    }

    #[test]
    fn heavy_slots_and_constants() {
        assert_eq!(
            parse_formula("HeavySlot3 & true").unwrap(),
            Formula::heavy_in_slot(SlotId::new(3)) & Formula::True
        );
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
    }

    #[test]
    fn case_insensitive_atoms() {
        assert_eq!(parse_formula("click").unwrap(), Formula::click());
        assert_eq!(
            parse_formula("SLOT2").unwrap(),
            Formula::slot(SlotId::new(2))
        );
    }

    #[test]
    fn errors() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("Click &").is_err());
        assert!(parse_formula("(Click").is_err());
        assert!(parse_formula("Slot0").is_err());
        assert!(parse_formula("Gadget").is_err());
        assert!(parse_formula("Click Click").is_err());
        assert!(parse_formula("Slot99999999").is_err());
        let err = parse_formula("Click @ Purchase").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.position, 6);
    }

    #[test]
    fn hostile_nesting_is_a_typed_error() {
        // Untrusted advertiser programs must not be able to overflow the
        // parser stack: `(((…`, `!!!…`, and word-operator chains all stop
        // at the depth limit with a typed error.
        for input in [
            format!("{}Click{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}Click", "!".repeat(100_000)),
            format!("{}Click", "NOT ".repeat(100_000)),
        ] {
            let err = parse_formula(&input).expect_err("depth limit");
            assert_eq!(
                err.kind,
                ParseErrorKind::TooDeep,
                "input {} bytes",
                input.len()
            );
            assert!(err.message.contains("nesting"));
        }
        // Reasonable nesting still parses.
        let ok = format!("{}Click{}", "(".repeat(20), ")".repeat(20));
        assert_eq!(parse_formula(&ok).unwrap(), Formula::click());
        // Ordinary syntax errors keep the Syntax kind.
        assert_eq!(
            parse_formula("Click &").unwrap_err().kind,
            ParseErrorKind::Syntax
        );
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "Click ∧ Slot1",
            "Purchase ∨ Click ∧ Slot2",
            "(Purchase ∨ Click) ∧ Slot2",
            "¬(Click ∨ Purchase)",
            "Slot1 ∨ Slot2 ∨ Slot3",
        ] {
            let f = parse_formula(text).unwrap();
            let reparsed = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, reparsed, "roundtrip failed for {text}");
        }
    }
}
