//! Boolean formulas over bidding predicates.
//!
//! A [`Formula`] is the left column of a Bids table row (paper Figures 3
//! and 6): an arbitrary Boolean combination of [`Predicate`]s. The operators
//! `&`, `|` and `!` are overloaded so formulas compose naturally:
//!
//! ```
//! use ssa_bidlang::{Formula, SlotId};
//! // "Click ∧ Slot1" from the paper's Figure 6.
//! let f = Formula::click() & Formula::slot(SlotId::new(1));
//! assert_eq!(f.to_string(), "Click ∧ Slot1");
//! ```

use crate::ids::SlotId;
use crate::outcome::AdvertiserView;
use crate::predicate::Predicate;
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A Boolean combination of [`Predicate`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic predicate.
    Pred(Predicate),
    /// Logical negation.
    Not(Box<Formula>),
    /// Logical conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Logical disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The `Click` predicate as a formula.
    #[inline]
    pub fn click() -> Formula {
        Formula::Pred(Predicate::Click)
    }

    /// The `Purchase` predicate as a formula.
    #[inline]
    pub fn purchase() -> Formula {
        Formula::Pred(Predicate::Purchase)
    }

    /// The `Slotj` predicate as a formula.
    #[inline]
    pub fn slot(slot: SlotId) -> Formula {
        Formula::Pred(Predicate::Slot(slot))
    }

    /// The `HeavySlotj` predicate (Section III-F) as a formula.
    #[inline]
    pub fn heavy_in_slot(slot: SlotId) -> Formula {
        Formula::Pred(Predicate::HeavyInSlot(slot))
    }

    /// Disjunction `Slot1 ∨ … ∨ Slotk` over a set of slots; the paper's
    /// "displayed in positions 1 or 2" style bid. Empty input yields `False`.
    pub fn any_slot<I: IntoIterator<Item = SlotId>>(slots: I) -> Formula {
        slots
            .into_iter()
            .map(Formula::slot)
            .reduce(|a, b| a | b)
            .unwrap_or(Formula::False)
    }

    /// The "not displayed at all" event `∧j ¬Slotj` for `k` slots.
    pub fn no_slot(k: u16) -> Formula {
        (1..=k)
            .map(|j| !Formula::slot(SlotId::new(j)))
            .reduce(|a, b| a & b)
            .unwrap_or(Formula::True)
    }

    /// Evaluates the formula against one advertiser's view of the outcome.
    pub fn eval(&self, view: &AdvertiserView) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Pred(p) => view.satisfies(*p),
            Formula::Not(f) => !f.eval(view),
            Formula::And(a, b) => a.eval(view) && b.eval(view),
            Formula::Or(a, b) => a.eval(view) || b.eval(view),
        }
    }

    /// Visits every predicate occurring in the formula.
    pub fn for_each_predicate<F: FnMut(Predicate)>(&self, f: &mut F) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(p) => f(*p),
            Formula::Not(inner) => inner.for_each_predicate(f),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.for_each_predicate(f);
                b.for_each_predicate(f);
            }
        }
    }

    /// Collects the distinct predicates of the formula in first-occurrence
    /// order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut out = Vec::new();
        self.for_each_predicate(&mut |p| {
            if !out.contains(&p) {
                out.push(p);
            }
        });
        out
    }

    /// `true` if the formula mentions any `HeavyInSlot` predicate, i.e.
    /// requires the Section III-F heavyweight machinery.
    pub fn mentions_heavy(&self) -> bool {
        let mut found = false;
        self.for_each_predicate(&mut |p| {
            found |= matches!(p, Predicate::HeavyInSlot(_));
        });
        found
    }

    /// Structural size (number of AST nodes); used by tests and as a guard on
    /// adversarial inputs.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Pred(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(a, b) | Formula::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Constant-folding simplification. Removes `True`/`False` sub-terms and
    /// double negations; does **not** attempt full Boolean minimisation.
    pub fn simplify(self) -> Formula {
        match self {
            Formula::Not(f) => match f.simplify() {
                Formula::True => Formula::False,
                Formula::False => Formula::True,
                Formula::Not(inner) => *inner,
                other => Formula::Not(Box::new(other)),
            },
            Formula::And(a, b) => match (a.simplify(), b.simplify()) {
                (Formula::False, _) | (_, Formula::False) => Formula::False,
                (Formula::True, x) | (x, Formula::True) => x,
                (x, y) => Formula::And(Box::new(x), Box::new(y)),
            },
            Formula::Or(a, b) => match (a.simplify(), b.simplify()) {
                (Formula::True, _) | (_, Formula::True) => Formula::True,
                (Formula::False, x) | (x, Formula::False) => x,
                (x, y) => Formula::Or(Box::new(x), Box::new(y)),
            },
            leaf => leaf,
        }
    }
}

impl BitAnd for Formula {
    type Output = Formula;
    fn bitand(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }
}

impl BitOr for Formula {
    type Output = Formula;
    fn bitor(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }
}

impl Not for Formula {
    type Output = Formula;
    fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }
}

impl From<Predicate> for Formula {
    fn from(p: Predicate) -> Formula {
        Formula::Pred(p)
    }
}

/// Precedence levels used for minimal parenthesisation in `Display`.
fn precedence(f: &Formula) -> u8 {
    match f {
        Formula::True | Formula::False | Formula::Pred(_) | Formula::Not(_) => 3,
        Formula::And(..) => 2,
        Formula::Or(..) => 1,
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_child(
            out: &mut fmt::Formatter<'_>,
            child: &Formula,
            parent_prec: u8,
        ) -> fmt::Result {
            if precedence(child) < parent_prec {
                write!(out, "({child})")
            } else {
                write!(out, "{child}")
            }
        }
        match self {
            Formula::True => write!(out, "⊤"),
            Formula::False => write!(out, "⊥"),
            Formula::Pred(p) => write!(out, "{p}"),
            Formula::Not(f) => {
                write!(out, "¬")?;
                write_child(out, f, 3)
            }
            // Right children of equal precedence are parenthesised so that
            // the (left-associative) parser reconstructs the same tree.
            Formula::And(a, b) => {
                write_child(out, a, 2)?;
                write!(out, " ∧ ")?;
                write_child(out, b, 3)
            }
            Formula::Or(a, b) => {
                write_child(out, a, 1)?;
                write!(out, " ∨ ")?;
                write_child(out, b, 2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::AdvertiserView;

    fn view(slot: Option<u16>, clicked: bool, purchased: bool) -> AdvertiserView {
        AdvertiserView {
            slot: slot.map(SlotId::new),
            clicked,
            purchased,
            heavy_pattern: None,
        }
    }

    #[test]
    fn eval_atoms() {
        let v = view(Some(2), true, false);
        assert!(Formula::click().eval(&v));
        assert!(!Formula::purchase().eval(&v));
        assert!(Formula::slot(SlotId::new(2)).eval(&v));
        assert!(!Formula::slot(SlotId::new(1)).eval(&v));
        assert!(Formula::True.eval(&v));
        assert!(!Formula::False.eval(&v));
    }

    #[test]
    fn eval_compound_figure3() {
        // Figure 3: Purchase pays; Slot1 ∨ Slot2 pays.
        let slot12 = Formula::any_slot([SlotId::new(1), SlotId::new(2)]);
        assert!(slot12.eval(&view(Some(1), false, false)));
        assert!(slot12.eval(&view(Some(2), false, false)));
        assert!(!slot12.eval(&view(Some(3), false, false)));
        assert!(!slot12.eval(&view(None, false, false)));
    }

    #[test]
    fn top_or_bottom_but_not_middle() {
        // The Section I brand-awareness bid: top or bottom, never the middle.
        let f = Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(4));
        assert!(f.eval(&view(Some(1), false, false)));
        assert!(f.eval(&view(Some(4), false, false)));
        assert!(!f.eval(&view(Some(2), false, false)));
    }

    #[test]
    fn top_slot_or_nothing() {
        // "displayed in the topmost slot or not displayed at all"
        let f = Formula::slot(SlotId::new(1)) | Formula::no_slot(4);
        assert!(f.eval(&view(Some(1), false, false)));
        assert!(f.eval(&view(None, false, false)));
        assert!(!f.eval(&view(Some(3), false, false)));
    }

    #[test]
    fn negation_and_constants() {
        let v = view(None, false, false);
        assert!((!Formula::click()).eval(&v));
        assert!(Formula::no_slot(3).eval(&v));
        assert!(!Formula::no_slot(3).eval(&view(Some(2), false, false)));
        assert_eq!(Formula::any_slot([]), Formula::False);
        assert_eq!(Formula::no_slot(0), Formula::True);
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = Formula::click() & Formula::slot(SlotId::new(1));
        assert_eq!(f.to_string(), "Click ∧ Slot1");
        let g = Formula::purchase() | (Formula::click() & Formula::slot(SlotId::new(2)));
        assert_eq!(g.to_string(), "Purchase ∨ Click ∧ Slot2");
        let h = (Formula::purchase() | Formula::click()) & Formula::slot(SlotId::new(2));
        assert_eq!(h.to_string(), "(Purchase ∨ Click) ∧ Slot2");
        let n = !(Formula::click() | Formula::purchase());
        assert_eq!(n.to_string(), "¬(Click ∨ Purchase)");
    }

    #[test]
    fn predicates_deduplicated_in_order() {
        let f = (Formula::click() & Formula::purchase()) | Formula::click();
        assert_eq!(f.predicates(), vec![Predicate::Click, Predicate::Purchase]);
    }

    #[test]
    fn simplify_folds_constants() {
        let f = (Formula::click() & Formula::True) | Formula::False;
        assert_eq!(f.simplify(), Formula::click());
        let g = !!Formula::purchase();
        assert_eq!(g.simplify(), Formula::purchase());
        let h = Formula::click() & Formula::False;
        assert_eq!(h.simplify(), Formula::False);
        let i = !Formula::True;
        assert_eq!(i.simplify(), Formula::False);
    }

    #[test]
    fn mentions_heavy() {
        assert!(!Formula::click().mentions_heavy());
        let f = Formula::click() & Formula::heavy_in_slot(SlotId::new(1));
        assert!(f.mentions_heavy());
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::click().size(), 1);
        assert_eq!((Formula::click() & Formula::purchase()).size(), 3);
        assert_eq!((!Formula::click()).size(), 2);
    }
}
