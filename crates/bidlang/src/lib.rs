//! # ssa-bidlang — the multi-feature bidding language
//!
//! This crate implements Section II-A of *Toward Expressive and Scalable
//! Sponsored Search Auctions* (Martin, Gehrke & Halpern, ICDE 2008): a bidding
//! language in which advertisers place **OR-bids on Boolean combinations of
//! predicates** over the auction outcome.
//!
//! The available predicates are:
//!
//! * [`Predicate::Slot`] — "my ad is shown in slot *j*",
//! * [`Predicate::Click`] — "the user clicked on my ad",
//! * [`Predicate::Purchase`] — "the user made a purchase via my ad",
//! * [`Predicate::HeavyInSlot`] — "slot *j* is occupied by a *heavyweight*
//!   advertiser" (the Section III-F extension).
//!
//! A bid is a [`BidsTable`]: a list of ([`Formula`], value) rows. If several
//! formulas hold in the final outcome the advertiser pays the **sum** of the
//! corresponding values (OR-bid semantics, Section II-A).
//!
//! ```
//! use ssa_bidlang::{Formula, BidsTable, Money, SlotId, AdvertiserView};
//!
//! // The paper's Figure 3: pay 5¢ for a purchase, 2¢ for slot 1 or 2
//! // (and hence 7¢ for both).
//! let bids = BidsTable::new(vec![
//!     (Formula::purchase(), Money::from_cents(5)),
//!     (Formula::slot(SlotId::new(1)) | Formula::slot(SlotId::new(2)), Money::from_cents(2)),
//! ]);
//! let outcome = AdvertiserView {
//!     slot: Some(SlotId::new(1)),
//!     clicked: true,
//!     purchased: true,
//!     heavy_pattern: None,
//! };
//! assert_eq!(bids.payment(&outcome), Money::from_cents(7));
//! ```
//!
//! The crate also contains:
//!
//! * a text [`parser`] for formulas (`"Click & Slot1 | Purchase"`),
//! * [`dependence`] analysis implementing Definition 1 (*m*-dependent events),
//! * the [`two_dependent`] module reproducing the Theorem 3 reduction from
//!   maximum weighted feedback arc set, together with brute-force solvers used
//!   to validate it,
//! * a [`targeting`] expression language over typed user attributes
//!   (`geo = 'us' and segment in ('sports', 'autos')`), compiled once per
//!   campaign to an allocation-free bytecode matcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bids;
pub mod dependence;
pub mod formula;
pub mod ids;
pub mod money;
pub mod outcome;
pub mod parser;
pub mod predicate;
pub mod targeting;
pub mod two_dependent;

pub use bids::{BidRow, BidsTable};
pub use dependence::{dependence_set, is_one_dependent, Dependence};
pub use formula::Formula;
pub use ids::{AdvertiserId, SlotId};
pub use money::Money;
pub use outcome::{AdvertiserView, HeavyPattern, Outcome};
pub use parser::{parse_formula, ParseError, ParseErrorKind};
pub use predicate::Predicate;
pub use targeting::{
    parse_targeting, AttrValue, CompiledTargeting, TargetExpr, TargetParseError, UserAttrs,
};
