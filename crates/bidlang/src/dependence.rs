//! *m*-dependence analysis (Definition 1 of the paper).
//!
//! An event is *m-dependent* if its probability, conditional on any
//! allocation, depends only on the placement of at most *m* advertisers.
//! Theorem 2 shows winner determination is polynomial for OR-bids on
//! 1-dependent events; Theorem 3 shows it is APX-hard already for
//! 2-dependent events.
//!
//! For the formula language of this crate the analysis is syntactic:
//!
//! * `Slotj` / `Click` / `Purchase` predicates concern only the *owning*
//!   advertiser, so any combination of them is 1-dependent (the paper's
//!   Section III-B observation);
//! * `HeavySlotj` predicates depend on which advertiser (heavyweight or not)
//!   occupies slot `j`, hence on the whole allocation — they are only
//!   tractable through the Section III-F pattern decomposition, which this
//!   analysis flags via [`Dependence::AllAdvertisers`].

use crate::formula::Formula;
use crate::ids::AdvertiserId;
use std::collections::BTreeSet;

/// The set of advertisers whose placement an event's probability can depend
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dependence {
    /// The event depends only on the placements of this explicit set.
    On(BTreeSet<AdvertiserId>),
    /// The event may depend on every advertiser's placement (heavyweight
    /// predicates).
    AllAdvertisers,
}

impl Dependence {
    /// The `m` of Definition 1, if bounded.
    pub fn m(&self) -> Option<usize> {
        match self {
            Dependence::On(set) => Some(set.len()),
            Dependence::AllAdvertisers => None,
        }
    }

    /// Merges two dependence sets (union).
    pub fn union(self, other: Dependence) -> Dependence {
        match (self, other) {
            (Dependence::AllAdvertisers, _) | (_, Dependence::AllAdvertisers) => {
                Dependence::AllAdvertisers
            }
            (Dependence::On(mut a), Dependence::On(b)) => {
                a.extend(b);
                Dependence::On(a)
            }
        }
    }
}

/// Computes the dependence set of `formula` when owned by advertiser `owner`.
pub fn dependence_set(formula: &Formula, owner: AdvertiserId) -> Dependence {
    let mut dep = Dependence::On(BTreeSet::new());
    formula.for_each_predicate(&mut |p| {
        let contribution = if p.is_own_outcome() {
            Dependence::On(BTreeSet::from([owner]))
        } else {
            Dependence::AllAdvertisers
        };
        // `std::mem::replace` dance because the closure captures `dep` by
        // reference but `union` consumes.
        let current = std::mem::replace(&mut dep, Dependence::AllAdvertisers);
        dep = current.union(contribution);
    });
    dep
}

/// `true` if the event defined by `formula` (owned by any single advertiser)
/// is 1-dependent — the precondition of Theorem 2.
pub fn is_one_dependent(formula: &Formula) -> bool {
    matches!(
        dependence_set(formula, AdvertiserId::new(0)).m(),
        Some(0) | Some(1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotId;

    #[test]
    fn own_outcome_formulas_are_one_dependent() {
        let f = (Formula::click() & Formula::slot(SlotId::new(1)))
            | (Formula::purchase() & !Formula::slot(SlotId::new(2)));
        assert!(is_one_dependent(&f));
        let dep = dependence_set(&f, AdvertiserId::new(7));
        assert_eq!(dep, Dependence::On(BTreeSet::from([AdvertiserId::new(7)])));
    }

    #[test]
    fn constants_are_zero_dependent() {
        assert_eq!(
            dependence_set(&Formula::True, AdvertiserId::new(0)).m(),
            Some(0)
        );
        assert!(is_one_dependent(&Formula::True));
    }

    #[test]
    fn heavy_predicates_are_unbounded() {
        let f = Formula::click() & Formula::heavy_in_slot(SlotId::new(1));
        assert_eq!(
            dependence_set(&f, AdvertiserId::new(0)),
            Dependence::AllAdvertisers
        );
        assert!(!is_one_dependent(&f));
    }

    #[test]
    fn union_behaviour() {
        let a = Dependence::On(BTreeSet::from([AdvertiserId::new(1)]));
        let b = Dependence::On(BTreeSet::from([AdvertiserId::new(2)]));
        assert_eq!(a.clone().union(b).m(), Some(2));
        assert_eq!(a.union(Dependence::AllAdvertisers).m(), None);
    }
}
