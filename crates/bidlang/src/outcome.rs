//! Auction outcomes: who got which slot, who was clicked, who converted.
//!
//! An [`Outcome`] is the global description the paper quantifies over ("the
//! set of all possible outcomes that describe which slot was allocated to
//! which advertiser together with which advertisers received clicks and
//! purchases", Section III-A). An [`AdvertiserView`] is the per-advertiser
//! projection that a [`crate::Formula`] is evaluated against.

use crate::ids::{AdvertiserId, SlotId};
use crate::predicate::Predicate;

/// Bitmask of which slots are occupied by heavyweight advertisers
/// (Section III-F). Bit `j-1` set means slot `j` holds a heavyweight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HeavyPattern(pub u32);

impl HeavyPattern {
    /// Pattern with no heavyweight slots.
    pub const EMPTY: HeavyPattern = HeavyPattern(0);

    /// Builds a pattern from an iterator of heavyweight slots.
    pub fn from_slots<I: IntoIterator<Item = SlotId>>(slots: I) -> Self {
        let mut mask = 0u32;
        for s in slots {
            mask |= 1 << s.index0();
        }
        HeavyPattern(mask)
    }

    /// Does slot `j` hold a heavyweight advertiser?
    #[inline]
    pub fn is_heavy(self, slot: SlotId) -> bool {
        self.0 & (1 << slot.index0()) != 0
    }

    /// Marks a slot as heavyweight, returning the new pattern.
    #[inline]
    pub fn with(self, slot: SlotId) -> HeavyPattern {
        HeavyPattern(self.0 | (1 << slot.index0()))
    }

    /// Number of heavyweight slots in the pattern.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates all `2^k` patterns for `k` slots (Section III-F enumerates
    /// every choice of heavyweight slots).
    pub fn all(k: u16) -> impl Iterator<Item = HeavyPattern> {
        (0u32..(1 << k)).map(HeavyPattern)
    }
}

/// One advertiser's view of the final outcome: everything its formulas can
/// observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvertiserView {
    /// The slot assigned to this advertiser, or `None` if not displayed.
    pub slot: Option<SlotId>,
    /// Whether the user clicked this advertiser's ad.
    pub clicked: bool,
    /// Whether the user purchased via this advertiser's ad.
    pub purchased: bool,
    /// The heavyweight pattern of the page, if the Section III-F model is in
    /// play. `None` means heavyweight predicates evaluate to `false`.
    pub heavy_pattern: Option<HeavyPattern>,
}

impl AdvertiserView {
    /// A view for an advertiser that was not displayed and therefore received
    /// no clicks or purchases.
    pub fn unplaced() -> Self {
        AdvertiserView {
            slot: None,
            clicked: false,
            purchased: false,
            heavy_pattern: None,
        }
    }

    /// Truth value of a predicate under this view.
    #[inline]
    pub fn satisfies(&self, p: Predicate) -> bool {
        match p {
            Predicate::Slot(j) => self.slot == Some(j),
            Predicate::Click => self.clicked,
            Predicate::Purchase => self.purchased,
            Predicate::HeavyInSlot(j) => self
                .heavy_pattern
                .map(|pat| pat.is_heavy(j))
                .unwrap_or(false),
        }
    }
}

/// A complete auction outcome over `n` advertisers and `k` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// `slot_of[i]` is the slot assigned to advertiser `i` (dense ids).
    pub slot_of: Vec<Option<SlotId>>,
    /// `clicked[i]`: did advertiser `i` receive a click?
    pub clicked: Vec<bool>,
    /// `purchased[i]`: did advertiser `i` receive a purchase?
    pub purchased: Vec<bool>,
    /// Heavyweight pattern of the page (Section III-F), if modelled.
    pub heavy_pattern: Option<HeavyPattern>,
}

impl Outcome {
    /// An outcome where nobody is placed, clicked, or converted.
    pub fn empty(n: usize) -> Self {
        Outcome {
            slot_of: vec![None; n],
            clicked: vec![false; n],
            purchased: vec![false; n],
            heavy_pattern: None,
        }
    }

    /// Builds an outcome from an allocation `assignment[j] = advertiser in
    /// slot j+1` with no clicks or purchases yet.
    pub fn from_assignment(n: usize, assignment: &[Option<AdvertiserId>]) -> Self {
        let mut out = Outcome::empty(n);
        for (j, adv) in assignment.iter().enumerate() {
            if let Some(a) = adv {
                debug_assert!(
                    out.slot_of[a.index()].is_none(),
                    "advertiser assigned twice"
                );
                out.slot_of[a.index()] = Some(SlotId::from_index0(j));
            }
        }
        out
    }

    /// Number of advertisers covered by this outcome.
    pub fn num_advertisers(&self) -> usize {
        self.slot_of.len()
    }

    /// Projects the outcome onto a single advertiser.
    pub fn view(&self, adv: AdvertiserId) -> AdvertiserView {
        let i = adv.index();
        AdvertiserView {
            slot: self.slot_of[i],
            clicked: self.clicked[i],
            purchased: self.purchased[i],
            heavy_pattern: self.heavy_pattern,
        }
    }

    /// The advertiser occupying a slot, if any. O(n) scan; intended for tests
    /// and small outcomes.
    pub fn occupant(&self, slot: SlotId) -> Option<AdvertiserId> {
        self.slot_of
            .iter()
            .position(|s| *s == Some(slot))
            .map(AdvertiserId::from)
    }

    /// Checks the paper's allocation restriction: no advertiser holds more
    /// than one slot and no slot holds more than one advertiser.
    ///
    /// The first half is structural (`slot_of` is a function); this validates
    /// the second half.
    pub fn is_valid_allocation(&self, k: u16) -> bool {
        let mut seen = vec![false; usize::from(k)];
        for s in self.slot_of.iter().flatten() {
            if s.position() > k || seen[s.index0()] {
                return false;
            }
            seen[s.index0()] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_pattern_bits() {
        let p = HeavyPattern::from_slots([SlotId::new(1), SlotId::new(3)]);
        assert!(p.is_heavy(SlotId::new(1)));
        assert!(!p.is_heavy(SlotId::new(2)));
        assert!(p.is_heavy(SlotId::new(3)));
        assert_eq!(p.count(), 2);
        assert_eq!(p.with(SlotId::new(2)).count(), 3);
        assert_eq!(HeavyPattern::all(3).count(), 8);
    }

    #[test]
    fn from_assignment_and_views() {
        let assignment = [Some(AdvertiserId::new(2)), None, Some(AdvertiserId::new(0))];
        let out = Outcome::from_assignment(4, &assignment);
        assert_eq!(out.slot_of[2], Some(SlotId::new(1)));
        assert_eq!(out.slot_of[0], Some(SlotId::new(3)));
        assert_eq!(out.slot_of[1], None);
        assert_eq!(out.occupant(SlotId::new(1)), Some(AdvertiserId::new(2)));
        assert_eq!(out.occupant(SlotId::new(2)), None);
        let v = out.view(AdvertiserId::new(2));
        assert_eq!(v.slot, Some(SlotId::new(1)));
        assert!(!v.clicked);
    }

    #[test]
    fn validity() {
        let mut out = Outcome::empty(3);
        out.slot_of[0] = Some(SlotId::new(1));
        out.slot_of[1] = Some(SlotId::new(1));
        assert!(!out.is_valid_allocation(2));
        out.slot_of[1] = Some(SlotId::new(2));
        assert!(out.is_valid_allocation(2));
        out.slot_of[2] = Some(SlotId::new(3));
        assert!(!out.is_valid_allocation(2)); // slot beyond k
    }

    #[test]
    fn heavy_predicate_defaults_false() {
        let v = AdvertiserView::unplaced();
        assert!(!v.satisfies(Predicate::HeavyInSlot(SlotId::new(1))));
        let v2 = AdvertiserView {
            heavy_pattern: Some(HeavyPattern::from_slots([SlotId::new(1)])),
            ..AdvertiserView::unplaced()
        };
        assert!(v2.satisfies(Predicate::HeavyInSlot(SlotId::new(1))));
    }
}
