//! Strongly-typed identifiers for advertisers and slots.
//!
//! Slots are numbered **1-based** to match the paper's `Slot1 … Slotk`
//! notation; [`SlotId::index0`] converts to a zero-based array index.

use std::fmt;

/// Identifier of an advertiser (zero-based, dense).
///
/// Advertiser ids index directly into the engine's per-advertiser arrays, so
/// they are expected to be dense in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdvertiserId(pub u32);

impl AdvertiserId {
    /// Creates an advertiser id from a zero-based index.
    #[inline]
    pub fn new(index: u32) -> Self {
        AdvertiserId(index)
    }

    /// Returns the zero-based index as `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AdvertiserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adv{}", self.0)
    }
}

impl From<u32> for AdvertiserId {
    fn from(v: u32) -> Self {
        AdvertiserId(v)
    }
}

impl From<usize> for AdvertiserId {
    fn from(v: usize) -> Self {
        AdvertiserId(u32::try_from(v).expect("advertiser index exceeds u32"))
    }
}

/// Identifier of an advertising slot, **1-based** like the paper's `Slotj`.
///
/// Slot 1 is the topmost (most valuable) position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u16);

impl SlotId {
    /// Creates a slot id from its 1-based position.
    ///
    /// # Panics
    ///
    /// Panics if `position == 0`: the paper's slots start at `Slot1`.
    #[inline]
    pub fn new(position: u16) -> Self {
        assert!(position > 0, "slot positions are 1-based");
        SlotId(position)
    }

    /// Creates a slot id from a zero-based index.
    #[inline]
    pub fn from_index0(index: usize) -> Self {
        SlotId(u16::try_from(index + 1).expect("slot index exceeds u16"))
    }

    /// The 1-based position (`Slot1` → 1).
    #[inline]
    pub fn position(self) -> u16 {
        self.0
    }

    /// The zero-based index for array access (`Slot1` → 0).
    #[inline]
    pub fn index0(self) -> usize {
        usize::from(self.0 - 1)
    }

    /// Returns `true` if `self` is a strictly higher (more prominent)
    /// position than `other`. Slot 1 is the highest.
    #[inline]
    pub fn is_above(self, other: SlotId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slot{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let s = SlotId::new(3);
        assert_eq!(s.position(), 3);
        assert_eq!(s.index0(), 2);
        assert_eq!(SlotId::from_index0(2), s);
        assert_eq!(s.to_string(), "Slot3");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn slot_zero_rejected() {
        let _ = SlotId::new(0);
    }

    #[test]
    fn slot_ordering_matches_prominence() {
        assert!(SlotId::new(1).is_above(SlotId::new(2)));
        assert!(!SlotId::new(2).is_above(SlotId::new(2)));
        assert!(!SlotId::new(3).is_above(SlotId::new(2)));
    }

    #[test]
    fn advertiser_id_conversions() {
        let a = AdvertiserId::from(7usize);
        assert_eq!(a.index(), 7);
        assert_eq!(a, AdvertiserId::new(7));
        assert_eq!(a.to_string(), "adv7");
    }
}
