//! Property tests: the Section IV-B equivalence under adversarial
//! parameters and win sequences, and native-vs-SQL strategy agreement.

use proptest::prelude::*;
use ssa_bidlang::Money;
use ssa_strategy::{
    KeywordEntry, LogicalRoiPopulation, NaiveRoiPopulation, RoiBidder, RoiBidderParams,
    RoiPopulation, SqlRoiBidder,
};

fn arb_params(keywords: usize) -> impl Strategy<Value = RoiBidderParams> {
    (
        proptest::collection::vec((1i64..50, 0.25f64..3.0), keywords),
        1.0f64..10.0,
    )
        .prop_map(|(kw, target)| RoiBidderParams {
            keywords: kw
                .into_iter()
                .map(|(value, roi)| (value, (value / 2).max(1), roi))
                .collect(),
            target_spend_rate: target,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Logical updates ≡ naive evaluation for random populations, random
    /// query streams, and random win/charge sequences.
    #[test]
    fn logical_equals_naive_randomised(
        params in proptest::collection::vec(arb_params(3), 2..15),
        script in proptest::collection::vec((0usize..3, any::<bool>(), 1i64..20), 40..120),
    ) {
        let mut naive = NaiveRoiPopulation::new(&params);
        let mut logical = LogicalRoiPopulation::new(&params);
        for (step, &(kw, give_win, price)) in script.iter().enumerate() {
            naive.begin_auction(kw);
            logical.begin_auction(kw);
            for pid in 0..naive.len() {
                prop_assert_eq!(
                    naive.bid(pid),
                    logical.bid(pid),
                    "divergence at step {} for program {}", step, pid
                );
            }
            if give_win {
                // Winner: the top bidder under a deterministic tie-break.
                let order = naive.bids_desc();
                if let Some(&(winner, bid)) = order.first() {
                    if bid > 0 {
                        let value = 1.5 * price as f64;
                        naive.record_click(winner, Money::from_cents(price), value);
                        logical.record_click(winner, Money::from_cents(price), value);
                    }
                }
            }
        }
    }

    /// The native ROI bidder and the SQL bidding program agree on every bid
    /// over random spend trajectories.
    #[test]
    fn native_equals_sql(
        spec in proptest::collection::vec((1i64..30, 0.5f64..2.5), 1..4),
        target in 1.0f64..6.0,
        wins in proptest::collection::vec((any::<bool>(), 1i64..10), 10..30),
    ) {
        let sql_spec: Vec<(i64, i64, f64)> = spec
            .iter()
            .map(|&(v, roi)| (v, (v / 2).max(1), roi))
            .collect();
        let mut sql = SqlRoiBidder::new(&sql_spec, target);
        let mut native = RoiBidder::new(
            sql_spec.iter().map(|&(v, b, r)| KeywordEntry::new(v, b, r)).collect(),
            target,
        );
        for (t, &(win, price)) in wins.iter().enumerate() {
            let time = (t + 1) as u64;
            let kw = t % sql_spec.len();
            let sql_bid = sql.run_round(kw, time).expect("in-range keyword");
            let native_bid = native.adjust_and_bid(kw, time);
            prop_assert_eq!(sql_bid, native_bid, "divergence at t={}", time);
            if win && sql_bid > 0 {
                let p = Money::from_cents(price.min(sql_bid).max(1));
                sql.record_click(kw, p, 2.0 * p.as_f64()).expect("in-range keyword");
                native.record_click(kw, p, 2.0 * p.as_f64());
            }
        }
    }
}
