//! # ssa-strategy — dynamic bidding strategies
//!
//! Section II-C's ROI-equalising heuristic and Section IV-B's logical
//! update machinery:
//!
//! * [`roi`] — a native Rust implementation of the paper's Figure 5
//!   "Equalize ROI" program, exposed as a [`ssa_core::Bidder`];
//! * [`sqlroi`] — the *same* strategy executed as an actual SQL bidding
//!   program by the [`ssa_minidb`] engine; integration tests prove the two
//!   agree bid-for-bid;
//! * [`logical`] — adjustment lists: sorted bid lists whose members all
//!   move by the same amount per auction, so one `O(1)` update to a shared
//!   adjustment variable replaces `n` individual bid updates (the data
//!   structures themselves live in `ssa_core::logical`, shared with the
//!   `Marketplace` facade's incremental-update API, and are re-exported
//!   here unchanged);
//! * [`population`] — a population of ROI bidders maintained *entirely*
//!   through logical updates and critical-value triggers (the RHTALU
//!   evaluation path of Section V), plus the naive full-evaluation twin it
//!   is tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssa_core::logical;

pub mod population;
pub mod roi;
pub mod sqlroi;

pub use logical::{AdjustmentList, ListKind, LogicalBids, ProgramId};
pub use population::{LogicalRoiPopulation, NaiveRoiPopulation, RoiBidderParams, RoiPopulation};
pub use roi::{KeywordEntry, RoiBidder};
pub use sqlroi::{SqlRoiBidder, SqlRoiError};
