//! The Figure 5 strategy executed as a real SQL bidding program.
//!
//! [`SqlRoiBidder`] owns a private [`Database`] holding the advertiser's
//! `Keywords` and `Bids` tables plus the trigger program, exactly as
//! Section II-B prescribes ("the bidding program can be stored with its
//! private tables to improve locality"). The host engine plays the search
//! provider: before each auction it sets the shared variables and the
//! per-keyword relevance, inserts into `Query` to fire the trigger, and
//! reads the resulting `Bids` table.
//!
//! Integration tests assert that this bidder and the native
//! [`crate::RoiBidder`] emit identical bids over long auction sequences.

use ssa_bidlang::{parse_formula, BidsTable, Money};
use ssa_core::{Bidder, BidderOutcome, QueryContext};
use ssa_minidb::{Database, Value};

/// Figure 5 (line 11's comparison corrected to `>`).
const PROGRAM: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
        AND K.formula = Bids.formula );
}
";

/// A bidder whose strategy runs inside the SQL engine.
#[derive(Debug, Clone)]
pub struct SqlRoiBidder {
    db: Database,
    /// Click value per keyword (cents); the provider-maintained statistic
    /// used to update ROI.
    click_values: Vec<i64>,
    target_spend_rate: f64,
    amt_spent: f64,
    value_gained: Vec<f64>,
    spent_per_keyword: Vec<f64>,
    last_keyword: usize,
}

impl SqlRoiBidder {
    /// Creates the bidder's private database.
    ///
    /// `keywords[i] = (click_value, initial_bid, initial_roi)`; the formula
    /// for every keyword is `Click` and `maxbid = click_value`, mirroring
    /// [`crate::roi::KeywordEntry::new`].
    pub fn new(keywords: &[(i64, i64, f64)], target_spend_rate: f64) -> Self {
        let mut db = Database::new();
        db.run("CREATE TABLE Query (q TEXT)").unwrap();
        db.run(
            "CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, \
             relevance FLOAT)",
        )
        .unwrap();
        db.run("CREATE TABLE Bids (formula TEXT, value INT)")
            .unwrap();
        for (i, (value, bid, roi)) in keywords.iter().enumerate() {
            db.insert(
                "Keywords",
                vec![
                    format!("kw{i}").into(),
                    "Click".into(),
                    Value::Int(*value),
                    Value::Float(*roi),
                    Value::Int(*bid),
                    Value::Float(0.0),
                ],
            )
            .unwrap();
        }
        db.insert("Bids", vec!["Click".into(), Value::Int(0)])
            .unwrap();
        db.run(PROGRAM).unwrap();
        SqlRoiBidder {
            db,
            click_values: keywords.iter().map(|(v, _, _)| *v).collect(),
            target_spend_rate,
            amt_spent: 0.0,
            value_gained: vec![0.0; keywords.len()],
            spent_per_keyword: vec![0.0; keywords.len()],
            last_keyword: 0,
        }
    }

    /// Runs one auction round inside the database and returns the bid (in
    /// cents) for the query keyword.
    pub fn run_round(&mut self, keyword: usize, time: u64) -> i64 {
        // Provider-maintained shared variables (Section II-B).
        self.db.set_var("amtSpent", Value::Float(self.amt_spent));
        self.db.set_var("time", Value::Int(time as i64));
        self.db
            .set_var("targetSpendRate", Value::Float(self.target_spend_rate));
        // Relevance: 1 for the query keyword, 0 elsewhere.
        self.db.run("UPDATE Keywords SET relevance = 0.0").unwrap();
        self.db
            .run(&format!(
                "UPDATE Keywords SET relevance = 1.0 WHERE text = 'kw{keyword}'"
            ))
            .unwrap();
        self.db.insert("Query", vec!["q".into()]).unwrap();
        let rows = self
            .db
            .query("SELECT value FROM Bids WHERE formula = 'Click'")
            .unwrap();
        rows[0][0].as_int().expect("bid is integral")
    }

    /// The current stored bid for a keyword (reads the private table).
    pub fn stored_bid(&mut self, keyword: usize) -> i64 {
        self.db
            .query(&format!(
                "SELECT bid FROM Keywords WHERE text = 'kw{keyword}'"
            ))
            .unwrap()[0][0]
            .as_int()
            .unwrap()
    }

    /// Provider-side ROI bookkeeping after a click.
    pub fn record_click(&mut self, keyword: usize, price: Money, value: f64) {
        self.spent_per_keyword[keyword] += price.as_f64();
        self.value_gained[keyword] += value;
        self.amt_spent += price.as_f64();
        if self.spent_per_keyword[keyword] > 0.0 {
            let roi = self.value_gained[keyword] / self.spent_per_keyword[keyword];
            self.db
                .run(&format!(
                    "UPDATE Keywords SET roi = {roi} WHERE text = 'kw{keyword}'"
                ))
                .unwrap();
        }
    }
}

impl Bidder for SqlRoiBidder {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        self.last_keyword = ctx.keyword;
        let bid = self.run_round(ctx.keyword, ctx.time);
        BidsTable::new(vec![(
            parse_formula("Click").expect("static formula"),
            Money::from_cents(bid),
        )])
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        if outcome.clicked {
            let value = self.click_values[self.last_keyword] as f64;
            self.record_click(self.last_keyword, outcome.price, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roi::{KeywordEntry, RoiBidder};

    #[test]
    fn sql_round_matches_native_bid() {
        let spec = [(5i64, 4i64, 2.0f64), (6, 8, 1.0)];
        let mut sql = SqlRoiBidder::new(&spec, 1.0);
        let mut native = RoiBidder::new(
            spec.iter()
                .map(|&(v, b, r)| KeywordEntry::new(v, b, r))
                .collect(),
            1.0,
        );
        for t in 1..=20u64 {
            let kw = (t % 2) as usize;
            let sql_bid = sql.run_round(kw, t);
            let native_bid = native.adjust_and_bid(kw, t);
            assert_eq!(sql_bid, native_bid, "divergence at t={t} kw={kw}");
        }
    }

    #[test]
    fn sql_strategy_tracks_wins() {
        let spec = [(10i64, 2i64, 1.0f64), (10, 3, 1.0)];
        let mut sql = SqlRoiBidder::new(&spec, 0.5);
        let mut native = RoiBidder::new(
            spec.iter()
                .map(|&(v, b, r)| KeywordEntry::new(v, b, r))
                .collect(),
            0.5,
        );
        for t in 1..=30u64 {
            let kw = (t % 2) as usize;
            let (sb, nb) = (sql.run_round(kw, t), native.adjust_and_bid(kw, t));
            assert_eq!(sb, nb, "pre-win divergence at t={t}");
            // Simulate a click charged at half the bid every 5th auction.
            if t % 5 == 0 && sb > 0 {
                let price = Money::from_cents(sb / 2 + 1);
                sql.record_click(kw, price, 10.0);
                native.record_click(kw, price, 10.0);
            }
        }
    }

    #[test]
    fn stored_bid_visible() {
        let mut sql = SqlRoiBidder::new(&[(5, 4, 2.0)], 1.0);
        assert_eq!(sql.stored_bid(0), 4);
        sql.run_round(0, 1); // underspending → 5
        assert_eq!(sql.stored_bid(0), 5);
    }
}
