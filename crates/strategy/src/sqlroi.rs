//! The Figure 5 strategy executed as a real SQL bidding program.
//!
//! [`SqlRoiBidder`] owns a private [`Database`] holding the advertiser's
//! `Keywords` and `Bids` tables plus the trigger program, exactly as
//! Section II-B prescribes ("the bidding program can be stored with its
//! private tables to improve locality"). The host engine plays the search
//! provider: before each auction it sets the shared variables and the
//! per-keyword relevance, inserts into `Query` to fire the trigger, and
//! reads the resulting `Bids` table.
//!
//! Every host-side statement is **prepared once** at construction
//! ([`Database::prepare`]) and executed with bound parameters per round —
//! no SQL text is formatted or re-parsed on the auction hot path, and ROI
//! floats reach the database bit-exact instead of through string
//! interpolation.
//!
//! Integration tests assert that this bidder and the native
//! [`crate::RoiBidder`] emit identical bids over long auction sequences.

use ssa_bidlang::{parse_formula, BidsTable, Money};
use ssa_core::{Bidder, BidderOutcome, QueryContext};
use ssa_minidb::{Database, DbError, Params, Prepared, Value};
use std::fmt;

/// Figure 5 (line 11's comparison corrected to `>`).
const PROGRAM: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
        AND K.formula = Bids.formula );
}
";

/// Errors surfaced by the [`SqlRoiBidder`] host API.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlRoiError {
    /// The embedded database rejected a statement.
    Db(DbError),
    /// A keyword index outside the bidder's universe.
    UnknownKeyword {
        /// The requested keyword.
        keyword: usize,
        /// Keywords the bidder was built with.
        count: usize,
    },
    /// A query that should produce the bid produced no rows (e.g. the
    /// `Bids` table was emptied by a host-side mutation).
    MissingBidRow,
}

impl fmt::Display for SqlRoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlRoiError::Db(e) => write!(f, "SQL ROI program failed: {e}"),
            SqlRoiError::UnknownKeyword { keyword, count } => {
                write!(
                    f,
                    "keyword {keyword} outside the bidder's universe of {count}"
                )
            }
            SqlRoiError::MissingBidRow => f.write_str("the Bids table has no row for the bid"),
        }
    }
}

impl std::error::Error for SqlRoiError {}

impl From<DbError> for SqlRoiError {
    fn from(e: DbError) -> Self {
        SqlRoiError::Db(e)
    }
}

/// A bidder whose strategy runs inside the SQL engine.
#[derive(Debug, Clone)]
pub struct SqlRoiBidder {
    db: Database,
    /// Prepared host statements (parse once, run every round).
    clear_query: Prepared,
    reset_relevance: Prepared,
    raise_relevance: Prepared,
    read_bid: Prepared,
    read_stored: Prepared,
    write_roi: Prepared,
    /// Keyword key values (`'kw{i}'`), precomputed so rounds bind instead
    /// of formatting.
    names: Vec<Value>,
    /// Click value per keyword (cents); the provider-maintained statistic
    /// used to update ROI.
    click_values: Vec<i64>,
    target_spend_rate: f64,
    amt_spent: f64,
    value_gained: Vec<f64>,
    spent_per_keyword: Vec<f64>,
    last_keyword: usize,
}

impl SqlRoiBidder {
    /// Creates the bidder's private database.
    ///
    /// `keywords[i] = (click_value, initial_bid, initial_roi)`; the formula
    /// for every keyword is `Click` and `maxbid = click_value`, mirroring
    /// [`crate::roi::KeywordEntry::new`].
    pub fn new(keywords: &[(i64, i64, f64)], target_spend_rate: f64) -> Self {
        let mut db = Database::new();
        db.run("CREATE TABLE Query (q TEXT)").unwrap();
        db.run(
            "CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, \
             relevance FLOAT)",
        )
        .unwrap();
        db.run("CREATE TABLE Bids (formula TEXT, value INT)")
            .unwrap();
        let names: Vec<Value> = (0..keywords.len())
            .map(|i| Value::Text(format!("kw{i}")))
            .collect();
        let mut seed_keyword = db
            .prepare("INSERT INTO Keywords VALUES (?, 'Click', ?, ?, ?, 0.0)")
            .expect("static statement parses");
        for (name, (value, bid, roi)) in names.iter().zip(keywords) {
            seed_keyword
                .execute(
                    &mut db,
                    &Params::new()
                        .push(name.clone())
                        .push(*value)
                        .push(*roi)
                        .push(*bid),
                )
                .unwrap();
        }
        db.insert("Bids", vec!["Click".into(), Value::Int(0)])
            .unwrap();
        db.run(PROGRAM).unwrap();
        let clear_query = db
            .prepare("DELETE FROM Query")
            .expect("static statement parses");
        let reset_relevance = db
            .prepare("UPDATE Keywords SET relevance = 0.0")
            .expect("static statement parses");
        let raise_relevance = db
            .prepare("UPDATE Keywords SET relevance = 1.0 WHERE text = ?")
            .expect("static statement parses");
        let read_bid = db
            .prepare("SELECT value FROM Bids WHERE formula = 'Click'")
            .expect("static statement parses");
        let read_stored = db
            .prepare("SELECT bid FROM Keywords WHERE text = ?")
            .expect("static statement parses");
        let write_roi = db
            .prepare("UPDATE Keywords SET roi = :roi WHERE text = :kw")
            .expect("static statement parses");
        // Plan the Query trigger now and build the indexes it wants (the
        // per-round host statements key on `Keywords.text` too), so no
        // auction pays planning or index-build cost.
        db.warm_plans();
        SqlRoiBidder {
            db,
            clear_query,
            reset_relevance,
            raise_relevance,
            read_bid,
            read_stored,
            write_roi,
            names,
            click_values: keywords.iter().map(|(v, _, _)| *v).collect(),
            target_spend_rate,
            amt_spent: 0.0,
            value_gained: vec![0.0; keywords.len()],
            spent_per_keyword: vec![0.0; keywords.len()],
            last_keyword: 0,
        }
    }

    fn name(&self, keyword: usize) -> Result<Value, SqlRoiError> {
        self.names
            .get(keyword)
            .cloned()
            .ok_or(SqlRoiError::UnknownKeyword {
                keyword,
                count: self.names.len(),
            })
    }

    /// Runs one auction round inside the database and returns the bid (in
    /// cents) for the query keyword.
    ///
    /// `time` is clamped to ≥ 1: the paper's clock is 1-based, and the
    /// Figure 5 trigger divides `amtSpent` by `time` — an unclamped 0
    /// would abort the program with a division-by-zero error instead of
    /// bidding.
    pub fn run_round(&mut self, keyword: usize, time: u64) -> Result<i64, SqlRoiError> {
        let name = self.name(keyword)?;
        // Provider-maintained shared variables (Section II-B).
        self.db.set_var("amtSpent", Value::Float(self.amt_spent));
        self.db.set_var("time", Value::Int(time.max(1) as i64));
        self.db
            .set_var("targetSpendRate", Value::Float(self.target_spend_rate));
        // Relevance: 1 for the query keyword, 0 elsewhere.
        self.reset_relevance.execute(&mut self.db, &Params::new())?;
        self.raise_relevance
            .execute(&mut self.db, &Params::new().push(name))?;
        // The activation table is host-managed scratch: clear it so a
        // long-lived bidder's memory stays flat across rounds.
        self.clear_query.execute(&mut self.db, &Params::new())?;
        self.db.insert("Query", vec!["q".into()])?;
        let rows = self.read_bid.query(&mut self.db, &Params::new())?;
        let row = rows.first().ok_or(SqlRoiError::MissingBidRow)?;
        Ok(row[0].as_int()?)
    }

    /// The current stored bid for a keyword (reads the private table).
    pub fn stored_bid(&mut self, keyword: usize) -> Result<i64, SqlRoiError> {
        let name = self.name(keyword)?;
        let rows = self
            .read_stored
            .query(&mut self.db, &Params::new().push(name))?;
        let row = rows.first().ok_or(SqlRoiError::MissingBidRow)?;
        Ok(row[0].as_int()?)
    }

    /// Provider-side ROI bookkeeping after a click. The updated ROI is
    /// bound as a parameter — bit-exact, no float-to-text round trip.
    pub fn record_click(
        &mut self,
        keyword: usize,
        price: Money,
        value: f64,
    ) -> Result<(), SqlRoiError> {
        let name = self.name(keyword)?;
        self.spent_per_keyword[keyword] += price.as_f64();
        self.value_gained[keyword] += value;
        self.amt_spent += price.as_f64();
        if self.spent_per_keyword[keyword] > 0.0 {
            let roi = self.value_gained[keyword] / self.spent_per_keyword[keyword];
            self.write_roi.execute(
                &mut self.db,
                &Params::new().bind("roi", roi).bind("kw", name),
            )?;
        }
        Ok(())
    }

    /// Planner counters of the private database: shows whether rounds ran
    /// on index probes (`index_hits`) or scans (`rows_scanned`), and that
    /// plan caching converged (`plans_cached` stops growing).
    pub fn planner_stats(&self) -> ssa_minidb::PlannerStats {
        self.db.planner_stats()
    }
}

impl Bidder for SqlRoiBidder {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        self.last_keyword = ctx.keyword;
        let bid = self
            .run_round(ctx.keyword, ctx.time)
            .expect("Figure 5 program runs on its own schema");
        BidsTable::new(vec![(
            parse_formula("Click").expect("static formula"),
            Money::from_cents(bid),
        )])
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        if outcome.clicked {
            let value = self.click_values[self.last_keyword] as f64;
            self.record_click(self.last_keyword, outcome.price, value)
                .expect("Figure 5 bookkeeping runs on its own schema");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roi::{KeywordEntry, RoiBidder};

    #[test]
    fn sql_round_matches_native_bid() {
        let spec = [(5i64, 4i64, 2.0f64), (6, 8, 1.0)];
        let mut sql = SqlRoiBidder::new(&spec, 1.0);
        let mut native = RoiBidder::new(
            spec.iter()
                .map(|&(v, b, r)| KeywordEntry::new(v, b, r))
                .collect(),
            1.0,
        );
        for t in 1..=20u64 {
            let kw = (t % 2) as usize;
            let sql_bid = sql.run_round(kw, t).expect("in-range keyword");
            let native_bid = native.adjust_and_bid(kw, t);
            assert_eq!(sql_bid, native_bid, "divergence at t={t} kw={kw}");
        }
    }

    #[test]
    fn sql_strategy_tracks_wins() {
        let spec = [(10i64, 2i64, 1.0f64), (10, 3, 1.0)];
        let mut sql = SqlRoiBidder::new(&spec, 0.5);
        let mut native = RoiBidder::new(
            spec.iter()
                .map(|&(v, b, r)| KeywordEntry::new(v, b, r))
                .collect(),
            0.5,
        );
        for t in 1..=30u64 {
            let kw = (t % 2) as usize;
            let (sb, nb) = (
                sql.run_round(kw, t).expect("in-range keyword"),
                native.adjust_and_bid(kw, t),
            );
            assert_eq!(sb, nb, "pre-win divergence at t={t}");
            // Simulate a click charged at half the bid every 5th auction.
            if t % 5 == 0 && sb > 0 {
                let price = Money::from_cents(sb / 2 + 1);
                sql.record_click(kw, price, 10.0).expect("in-range keyword");
                native.record_click(kw, price, 10.0);
            }
        }
    }

    #[test]
    fn stored_bid_visible() {
        let mut sql = SqlRoiBidder::new(&[(5, 4, 2.0)], 1.0);
        assert_eq!(sql.stored_bid(0).unwrap(), 4);
        sql.run_round(0, 1).expect("in-range keyword"); // underspending → 5
        assert_eq!(sql.stored_bid(0).unwrap(), 5);
    }

    #[test]
    fn time_zero_is_clamped_not_a_panic() {
        // Regression: `run_round(kw, 0)` used to hit `amtSpent / time` →
        // DivisionByZero inside the trigger and abort via unwrap. The clock
        // is 1-based; 0 now behaves exactly like 1.
        let spec = [(5i64, 4i64, 2.0f64)];
        let mut at_zero = SqlRoiBidder::new(&spec, 1.0);
        let mut at_one = SqlRoiBidder::new(&spec, 1.0);
        assert_eq!(
            at_zero.run_round(0, 0).expect("clamped"),
            at_one.run_round(0, 1).expect("in-range keyword")
        );
    }

    #[test]
    fn out_of_range_and_missing_rows_are_typed_errors() {
        let mut sql = SqlRoiBidder::new(&[(5, 4, 2.0)], 1.0);
        assert_eq!(
            sql.run_round(7, 1),
            Err(SqlRoiError::UnknownKeyword {
                keyword: 7,
                count: 1
            })
        );
        assert_eq!(
            sql.stored_bid(7),
            Err(SqlRoiError::UnknownKeyword {
                keyword: 7,
                count: 1
            })
        );
        assert_eq!(
            sql.record_click(7, Money::from_cents(1), 5.0),
            Err(SqlRoiError::UnknownKeyword {
                keyword: 7,
                count: 1
            })
        );
        // Regression: an empty Bids table is an error value, not an
        // `rows[0][0]` panic.
        let mut gutted = SqlRoiBidder::new(&[(5, 4, 2.0)], 1.0);
        gutted.db.run("DELETE FROM Bids").unwrap();
        assert_eq!(gutted.run_round(0, 1), Err(SqlRoiError::MissingBidRow));
        gutted.db.run("DELETE FROM Keywords").unwrap();
        assert_eq!(gutted.stored_bid(0), Err(SqlRoiError::MissingBidRow));
    }
}
