//! Populations of ROI bidders: naive full evaluation vs. logical updates.
//!
//! Section IV's point is that the provider does not need to run every
//! bidding program on every auction. For the ROI heuristic, a losing
//! program's behaviour between wins is fully predictable:
//!
//! * its per-auction bid move is shared with every other program in the
//!   same increment/decrement list — one logical tick updates them all;
//! * the only times its *direction* changes are (a) when a shared monotone
//!   variable crosses a computable critical value (its spending rate
//!   `amtSpent / time` sinks to the target as `time` grows) and (b) when
//!   its bid hits the `maxbid` cap or zero floor after a computable number
//!   of auctions on the keyword.
//!
//! [`LogicalRoiPopulation`] implements exactly that: per-keyword
//! [`LogicalBids`] lists, a time-trigger queue, and per-keyword
//! count-trigger queues; per auction it does `O(1)` logical work plus
//! `O(K log n)` per fired trigger or win. [`NaiveRoiPopulation`] runs every
//! program every auction. The two are proven equivalent by the test suite
//! (and the ablation bench measures the gap — this is the "LU" in RHTALU).

use crate::logical::{ListKind, LogicalBids, ProgramId};
use crate::roi::{KeywordEntry, RoiBidder};
use ssa_bidlang::Money;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction parameters for one ROI bidder.
#[derive(Debug, Clone, PartialEq)]
pub struct RoiBidderParams {
    /// Per-keyword `(click_value, initial_bid, initial_roi)`; `maxbid`
    /// equals `click_value`, per the Section V workload.
    pub keywords: Vec<(i64, i64, f64)>,
    /// Target spending rate (cents per time unit).
    pub target_spend_rate: f64,
}

/// Common interface of the two evaluation strategies.
pub trait RoiPopulation {
    /// Number of programs.
    fn len(&self) -> usize;
    /// `true` if there are no programs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Advances the auction clock and applies every program's Figure 5
    /// adjustment for a query on `keyword`. Returns the new time.
    fn begin_auction(&mut self, keyword: usize) -> u64;
    /// Current bid (cents) of `program` on the most recent auction keyword.
    fn bid(&self, program: ProgramId) -> i64;
    /// All `(program, bid)` pairs for the most recent auction keyword, in
    /// descending bid order.
    fn bids_desc(&self) -> Vec<(ProgramId, i64)>;
    /// Records a charged click: `program` paid `price` for a click worth
    /// `value` on the most recent auction keyword.
    fn record_click(&mut self, program: ProgramId, price: Money, value: f64);
}

// ---------------------------------------------------------------------------
// Naive: run every program, every auction.
// ---------------------------------------------------------------------------

/// Full evaluation: every program runs on every auction (the paper's
/// worst case: "getting these bids for a given search query requires, in
/// the worst case, running each advertiser's program").
#[derive(Debug, Clone)]
pub struct NaiveRoiPopulation {
    bidders: Vec<RoiBidder>,
    time: u64,
    current_keyword: usize,
}

impl NaiveRoiPopulation {
    /// Bid of `program` on an arbitrary keyword (the twin of
    /// [`LogicalRoiPopulation::bid_on`]).
    pub fn bid_on(&self, program: ProgramId, keyword: usize) -> i64 {
        self.bidders[program].keywords[keyword].bid
    }

    /// Builds the population.
    pub fn new(params: &[RoiBidderParams]) -> Self {
        let bidders = params
            .iter()
            .map(|p| {
                RoiBidder::new(
                    p.keywords
                        .iter()
                        .map(|&(v, b, r)| KeywordEntry::new(v, b, r))
                        .collect(),
                    p.target_spend_rate,
                )
            })
            .collect();
        NaiveRoiPopulation {
            bidders,
            time: 0,
            current_keyword: 0,
        }
    }
}

impl RoiPopulation for NaiveRoiPopulation {
    fn len(&self) -> usize {
        self.bidders.len()
    }

    fn begin_auction(&mut self, keyword: usize) -> u64 {
        self.time += 1;
        self.current_keyword = keyword;
        for bidder in &mut self.bidders {
            bidder.adjust_and_bid(keyword, self.time);
        }
        self.time
    }

    fn bid(&self, program: ProgramId) -> i64 {
        self.bidders[program].keywords[self.current_keyword].bid
    }

    fn bids_desc(&self) -> Vec<(ProgramId, i64)> {
        let mut out: Vec<(ProgramId, i64)> =
            (0..self.bidders.len()).map(|p| (p, self.bid(p))).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        out
    }

    fn record_click(&mut self, program: ProgramId, price: Money, value: f64) {
        self.bidders[program].record_click(self.current_keyword, price, value);
    }
}

// ---------------------------------------------------------------------------
// Logical updates.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct KwState {
    maxbid: i64,
    roi: f64,
    value_gained: f64,
    spent: f64,
}

#[derive(Debug, Clone)]
struct ProgramState {
    target: f64,
    amt_spent: f64,
    keywords: Vec<KwState>,
}

impl ProgramState {
    fn max_roi(&self) -> f64 {
        self.keywords
            .iter()
            .map(|k| k.roi)
            .fold(f64::NEG_INFINITY, f64::max)
    }
    fn min_roi(&self) -> f64 {
        self.keywords
            .iter()
            .map(|k| k.roi)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The logical-updates evaluation path.
#[derive(Debug, Clone)]
pub struct LogicalRoiPopulation {
    programs: Vec<ProgramState>,
    per_keyword: Vec<LogicalBids>,
    // (due time, program) — min-heap.
    time_triggers: BinaryHeap<Reverse<(u64, ProgramId)>>,
    // per keyword: (due q-count, program).
    count_triggers: Vec<BinaryHeap<Reverse<(u64, ProgramId)>>>,
    q_count: Vec<u64>,
    time: u64,
    current_keyword: usize,
    initialized: bool,
    /// Number of trigger firings + win reclassifications (instrumentation:
    /// the real per-auction work beyond O(1) ticks).
    pub reclassifications: u64,
}

impl LogicalRoiPopulation {
    /// Builds the population.
    pub fn new(params: &[RoiBidderParams]) -> Self {
        assert!(!params.is_empty(), "population must not be empty");
        let num_keywords = params[0].keywords.len();
        assert!(
            params.iter().all(|p| p.keywords.len() == num_keywords),
            "all programs must cover the same keyword universe"
        );
        let programs: Vec<ProgramState> = params
            .iter()
            .map(|p| ProgramState {
                target: p.target_spend_rate,
                amt_spent: 0.0,
                keywords: p
                    .keywords
                    .iter()
                    .map(|&(value, _bid, roi)| KwState {
                        maxbid: value,
                        roi,
                        value_gained: 0.0,
                        spent: 0.0,
                    })
                    .collect(),
            })
            .collect();
        let mut per_keyword: Vec<LogicalBids> =
            (0..num_keywords).map(|_| LogicalBids::new()).collect();
        // Bids are registered as Constant until the first auction
        // classifies everyone for time 1.
        for (pid, p) in params.iter().enumerate() {
            for (q, &(_, bid, _)) in p.keywords.iter().enumerate() {
                per_keyword[q].insert(pid, bid, ListKind::Constant);
            }
        }
        LogicalRoiPopulation {
            programs,
            per_keyword,
            time_triggers: BinaryHeap::new(),
            count_triggers: (0..num_keywords).map(|_| BinaryHeap::new()).collect(),
            q_count: vec![0; num_keywords],
            time: 0,
            current_keyword: 0,
            initialized: false,
            reclassifications: 0,
        }
    }

    /// Number of keywords in the universe.
    pub fn num_keywords(&self) -> usize {
        self.per_keyword.len()
    }

    /// Descending (program, bid) iterator over a keyword's logical lists —
    /// this is the sorted "bid" list the threshold algorithm consumes.
    pub fn iter_desc(&self, keyword: usize) -> impl Iterator<Item = (ProgramId, i64)> + '_ {
        self.per_keyword[keyword].iter_desc()
    }

    /// Bid of `program` on an arbitrary keyword.
    pub fn bid_on(&self, program: ProgramId, keyword: usize) -> i64 {
        self.per_keyword[keyword]
            .bid(program)
            .expect("program registered everywhere")
    }

    fn classify(&self, pid: ProgramId, keyword: usize, bid: i64, time: u64) -> ListKind {
        let p = &self.programs[pid];
        let rate = p.amt_spent / time as f64;
        let kw = &p.keywords[keyword];
        if rate < p.target && kw.roi == p.max_roi() && bid < kw.maxbid {
            ListKind::Increment
        } else if rate > p.target && kw.roi == p.min_roi() && bid > 0 {
            ListKind::Decrement
        } else {
            ListKind::Constant
        }
    }

    /// Re-derives every keyword membership of `pid` from ground truth and
    /// schedules the triggers implied by the new state.
    fn reclassify(&mut self, pid: ProgramId, time: u64) {
        self.reclassifications += 1;
        for q in 0..self.per_keyword.len() {
            let (bid, _) = self.per_keyword[q].remove(pid).expect("registered");
            let kind = self.classify(pid, q, bid, time);
            self.per_keyword[q].insert(pid, bid, kind);
            match kind {
                ListKind::Increment => {
                    let kw = &self.programs[pid].keywords[q];
                    let due = self.q_count[q] + (kw.maxbid - bid).max(0) as u64;
                    self.count_triggers[q].push(Reverse((due, pid)));
                }
                ListKind::Decrement => {
                    let due = self.q_count[q] + bid.max(0) as u64;
                    self.count_triggers[q].push(Reverse((due, pid)));
                }
                ListKind::Constant => {}
            }
        }
        // Time-driven direction flips: only over-/exactly-on-target
        // programs change with time (their rate sinks as time grows).
        let p = &self.programs[pid];
        let rate = p.amt_spent / time as f64;
        if rate >= p.target && p.target > 0.0 {
            // First integer t > time with amt_spent / t ≤ target. The floor
            // is a conservative (never late) estimate; firing early is safe
            // because reclassification recomputes ground truth.
            let raw = (p.amt_spent / p.target).floor() as u64;
            let due = raw.max(time + 1);
            self.time_triggers.push(Reverse((due, pid)));
        }
    }

    fn fire_time_triggers(&mut self, time: u64) {
        while let Some(&Reverse((due, pid))) = self.time_triggers.peek() {
            if due > time {
                break;
            }
            self.time_triggers.pop();
            self.reclassify(pid, time);
        }
    }

    fn fire_count_triggers(&mut self, keyword: usize, time: u64) {
        while let Some(&Reverse((due, pid))) = self.count_triggers[keyword].peek() {
            if due > self.q_count[keyword] {
                break;
            }
            self.count_triggers[keyword].pop();
            self.reclassify(pid, time);
        }
    }
}

impl RoiPopulation for LogicalRoiPopulation {
    fn len(&self) -> usize {
        self.programs.len()
    }

    fn begin_auction(&mut self, keyword: usize) -> u64 {
        self.time += 1;
        self.current_keyword = keyword;
        let time = self.time;
        if !self.initialized {
            self.initialized = true;
            for pid in 0..self.programs.len() {
                self.reclassify(pid, time);
            }
        } else {
            self.fire_time_triggers(time);
        }
        self.q_count[keyword] += 1;
        self.per_keyword[keyword].tick();
        self.fire_count_triggers(keyword, time);
        time
    }

    fn bid(&self, program: ProgramId) -> i64 {
        self.bid_on(program, self.current_keyword)
    }

    fn bids_desc(&self) -> Vec<(ProgramId, i64)> {
        self.per_keyword[self.current_keyword].iter_desc().collect()
    }

    fn record_click(&mut self, program: ProgramId, price: Money, value: f64) {
        let q = self.current_keyword;
        {
            let p = &mut self.programs[program];
            let kw = &mut p.keywords[q];
            kw.spent += price.as_f64();
            kw.value_gained += value;
            if kw.spent > 0.0 {
                kw.roi = kw.value_gained / kw.spent;
            }
            p.amt_spent += price.as_f64();
        }
        let time = self.time;
        self.reclassify(program, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, keywords: usize) -> Vec<RoiBidderParams> {
        // Deterministic, diverse parameters.
        (0..n)
            .map(|i| RoiBidderParams {
                keywords: (0..keywords)
                    .map(|q| {
                        let value = 5 + ((i * 7 + q * 13) % 46) as i64;
                        let bid = 1 + ((i * 3 + q * 5) % value as usize) as i64;
                        let roi = 0.5 + ((i + 2 * q) % 8) as f64 / 4.0;
                        (value, bid, roi)
                    })
                    .collect(),
                target_spend_rate: 1.0 + (i % 9) as f64,
            })
            .collect()
    }

    /// The central Section IV-B claim: logical updates are *exactly*
    /// equivalent to running every program, including across wins, caps,
    /// floors, and direction flips.
    #[test]
    fn logical_equals_naive_over_long_run() {
        let ps = params(40, 3);
        let mut naive = NaiveRoiPopulation::new(&ps);
        let mut logical = LogicalRoiPopulation::new(&ps);
        let mut rng_state = 12345u64;
        let mut next = move |m: u64| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) % m
        };
        for auction in 0..600 {
            let kw = next(3) as usize;
            naive.begin_auction(kw);
            logical.begin_auction(kw);
            for pid in 0..naive.len() {
                assert_eq!(
                    naive.bid(pid),
                    logical.bid(pid),
                    "bid divergence at auction {auction} (kw {kw}) for program {pid}"
                );
            }
            // Winner: the top bidder; charge it a click at a price derived
            // from the runner-up (a GSP-flavoured deterministic rule).
            let order = naive.bids_desc();
            if let [(winner, wbid), rest @ ..] = order.as_slice() {
                if *wbid > 0 {
                    let price = rest.first().map(|(_, b)| *b).unwrap_or(0).max(1);
                    let value = 2.0 * price as f64;
                    if next(2) == 0 {
                        naive.record_click(*winner, Money::from_cents(price), value);
                        logical.record_click(*winner, Money::from_cents(price), value);
                    }
                }
            }
        }
    }

    #[test]
    fn bids_desc_agree_and_are_sorted() {
        let ps = params(25, 2);
        let mut naive = NaiveRoiPopulation::new(&ps);
        let mut logical = LogicalRoiPopulation::new(&ps);
        for t in 0..50 {
            let kw = t % 2;
            naive.begin_auction(kw);
            logical.begin_auction(kw);
            let a = naive.bids_desc();
            let b = logical.bids_desc();
            let bids_a: Vec<i64> = a.iter().map(|(_, b)| *b).collect();
            let bids_b: Vec<i64> = b.iter().map(|(_, b)| *b).collect();
            assert_eq!(bids_a, bids_b, "sorted bid sequences diverge at t={t}");
            assert!(bids_a.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn reclassification_count_stays_low_without_wins() {
        // With no wins, the only reclassifications after initialisation are
        // trigger firings: direction flips and cap/floor arrivals, each a
        // bounded number per program per keyword — far fewer than n per
        // auction.
        let n = 60;
        let auctions = 400u64;
        let ps = params(n, 2);
        let mut logical = LogicalRoiPopulation::new(&ps);
        for t in 0..auctions {
            logical.begin_auction((t % 2) as usize);
        }
        let per_auction = logical.reclassifications as f64 / auctions as f64;
        assert!(
            per_auction < n as f64 / 4.0,
            "logical updates degenerated to full evaluation: {per_auction} reclassifications/auction"
        );
    }

    #[test]
    fn iter_desc_per_keyword() {
        let ps = params(10, 2);
        let mut logical = LogicalRoiPopulation::new(&ps);
        logical.begin_auction(0);
        let list: Vec<(ProgramId, i64)> = logical.iter_desc(1).collect();
        assert_eq!(list.len(), 10);
        assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
        // bid_on agrees with the iterator.
        for (pid, bid) in list {
            assert_eq!(logical.bid_on(pid, 1), bid);
        }
    }
}
