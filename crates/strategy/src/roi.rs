//! Native implementation of the Figure 5 "Equalize ROI" strategy.
//!
//! Semantics mirror the SQL program line by line (with the paper's line-11
//! typo corrected to `>`):
//!
//! * **underspending** (`amtSpent / time < targetSpendRate`): add 1¢ to the
//!   bid of every keyword that (a) has the maximum ROI over *all* keywords,
//!   (b) is relevant to the current query, and (c) is below its `maxbid`;
//! * **overspending**: subtract 1¢ from every minimum-ROI relevant keyword
//!   whose bid is above zero;
//! * **emit**: a Bids table row per formula, whose value is the sum of the
//!   bids of matching keywords with relevance > 0.7.
//!
//! In the Section V workload each query has exactly one keyword with
//! relevance 1 and the rest 0, which is what [`RoiBidder`] assumes: the
//! "relevant" set is the singleton query keyword.

use ssa_bidlang::{BidsTable, Formula, Money};
use ssa_core::{Bidder, BidderOutcome, QueryContext};

/// Per-keyword strategy state (one row of the paper's Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordEntry {
    /// The formula this keyword bids on (Figure 4's `formula` column).
    pub formula: Formula,
    /// Bid ceiling in cents.
    pub maxbid: i64,
    /// Return on investment so far (value gained / amount spent).
    pub roi: f64,
    /// Current tentative bid in cents.
    pub bid: i64,
    /// The advertiser's value for a click on this keyword, in cents; used
    /// to update ROI when clicks arrive.
    pub click_value: i64,
    /// Cumulative value gained from this keyword (cents).
    pub value_gained: f64,
    /// Cumulative spend on this keyword (cents).
    pub spent: f64,
}

impl KeywordEntry {
    /// A fresh entry bidding `Click` with the given value/cap and starting
    /// conditions.
    pub fn new(click_value: i64, initial_bid: i64, initial_roi: f64) -> Self {
        KeywordEntry {
            formula: Formula::click(),
            maxbid: click_value,
            roi: initial_roi,
            bid: initial_bid,
            click_value,
            value_gained: 0.0,
            spent: 0.0,
        }
    }
}

/// The Figure 5 strategy as a [`Bidder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoiBidder {
    /// One entry per keyword in the universe.
    pub keywords: Vec<KeywordEntry>,
    /// Target spending rate in cents per time unit.
    pub target_spend_rate: f64,
    /// Total amount spent so far (cents).
    pub amt_spent: f64,
    last_keyword: usize,
}

impl RoiBidder {
    /// Creates a bidder over `keywords` with the given target rate.
    pub fn new(keywords: Vec<KeywordEntry>, target_spend_rate: f64) -> Self {
        assert!(!keywords.is_empty(), "a bidder needs at least one keyword");
        RoiBidder {
            keywords,
            target_spend_rate,
            amt_spent: 0.0,
            last_keyword: 0,
        }
    }

    /// The max-ROI value over all keywords (Figure 5's scalar subquery).
    fn max_roi(&self) -> f64 {
        self.keywords
            .iter()
            .map(|k| k.roi)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn min_roi(&self) -> f64 {
        self.keywords
            .iter()
            .map(|k| k.roi)
            .fold(f64::INFINITY, f64::min)
    }

    /// Applies the Figure 5 bid adjustment for a query on `keyword` at
    /// `time`, then returns the current bid for that keyword.
    pub fn adjust_and_bid(&mut self, keyword: usize, time: u64) -> i64 {
        debug_assert!(time >= 1);
        let rate = self.amt_spent / time as f64;
        if rate < self.target_spend_rate {
            let max_roi = self.max_roi();
            // Only the query keyword has relevance > 0.
            let entry = &mut self.keywords[keyword];
            if entry.roi == max_roi && entry.bid < entry.maxbid {
                entry.bid += 1;
            }
        } else if rate > self.target_spend_rate {
            let min_roi = self.min_roi();
            let entry = &mut self.keywords[keyword];
            if entry.roi == min_roi && entry.bid > 0 {
                entry.bid -= 1;
            }
        }
        self.keywords[keyword].bid
    }

    /// Records a win on `keyword`: the provider charged `price` for a
    /// click worth `value` to the advertiser; ROI and spend are updated the
    /// way the paper describes ("total value gained from the keyword …
    /// divided by the amount spent so far on it").
    pub fn record_click(&mut self, keyword: usize, price: Money, value: f64) {
        let entry = &mut self.keywords[keyword];
        entry.spent += price.as_f64();
        entry.value_gained += value;
        if entry.spent > 0.0 {
            entry.roi = entry.value_gained / entry.spent;
        }
        self.amt_spent += price.as_f64();
    }
}

impl Bidder for RoiBidder {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        self.last_keyword = ctx.keyword;
        let bid = self.adjust_and_bid(ctx.keyword, ctx.time);
        let formula = self.keywords[ctx.keyword].formula.clone();
        BidsTable::new(vec![(formula, Money::from_cents(bid))])
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        if outcome.clicked {
            let value = self.keywords[self.last_keyword].click_value as f64;
            self.record_click(self.last_keyword, outcome.price, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bidder() -> RoiBidder {
        RoiBidder::new(
            vec![
                KeywordEntry {
                    roi: 2.0,
                    bid: 4,
                    maxbid: 5,
                    ..KeywordEntry::new(5, 4, 2.0)
                },
                KeywordEntry {
                    roi: 1.0,
                    bid: 8,
                    maxbid: 6, // mirrors Figure 4 (maxbid may sit below bid)
                    ..KeywordEntry::new(6, 8, 1.0)
                },
            ],
            1.0,
        )
    }

    #[test]
    fn underspending_increments_argmax_only() {
        let mut b = bidder();
        // time 10, spent 0 → rate 0 < 1 → underspending. Keyword 0 has max
        // ROI and headroom → bid 5.
        assert_eq!(b.adjust_and_bid(0, 10), 5);
        // Keyword 1 is not argmax: unchanged even when queried.
        assert_eq!(b.adjust_and_bid(1, 11), 8);
    }

    #[test]
    fn maxbid_cap_enforced() {
        let mut b = bidder();
        for t in 1..10 {
            b.adjust_and_bid(0, t);
        }
        assert_eq!(b.keywords[0].bid, 5, "capped at maxbid");
    }

    #[test]
    fn overspending_decrements_argmin_to_floor() {
        let mut b = bidder();
        b.amt_spent = 1000.0; // rate ≫ target
        for t in 1..20 {
            b.adjust_and_bid(1, t);
        }
        assert_eq!(b.keywords[1].bid, 0, "floored at zero");
        // Argmax keyword untouched by overspending on keyword 0? Keyword 0
        // is not argmin, so nothing happens.
        assert_eq!(b.adjust_and_bid(0, 21), 4);
    }

    #[test]
    fn balanced_spending_keeps_bids() {
        let mut b = bidder();
        b.amt_spent = 10.0;
        assert_eq!(b.adjust_and_bid(0, 10), 4); // rate == target → no move
    }

    #[test]
    fn roi_updates_on_click() {
        let mut b = bidder();
        b.record_click(0, Money::from_cents(2), 5.0);
        assert!((b.keywords[0].roi - 2.5).abs() < 1e-12);
        assert_eq!(b.amt_spent, 2.0);
        b.record_click(0, Money::from_cents(3), 5.0);
        assert!((b.keywords[0].roi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bidder_trait_emits_single_row() {
        let mut b = bidder();
        let ctx = QueryContext {
            time: 10,
            keyword: 0,
            num_keywords: 2,
        };
        let bids = b.on_query(&ctx);
        assert_eq!(bids.len(), 1);
        assert_eq!(bids.rows()[0].value, Money::from_cents(5));
        assert_eq!(bids.rows()[0].formula, Formula::click());
        // Click outcome feeds ROI.
        b.on_outcome(
            &ctx,
            &BidderOutcome {
                slot: Some(ssa_bidlang::SlotId::new(1)),
                clicked: true,
                purchased: false,
                price: Money::from_cents(3),
            },
        );
        assert_eq!(b.amt_spent, 3.0);
    }

    #[test]
    fn tied_roi_updates_query_keyword() {
        let mut b = RoiBidder::new(
            vec![KeywordEntry::new(10, 2, 1.0), KeywordEntry::new(10, 3, 1.0)],
            5.0,
        );
        // Both tie for argmax: the queried one moves.
        assert_eq!(b.adjust_and_bid(1, 1), 4);
        assert_eq!(b.keywords[0].bid, 2);
    }
}
