//! The Section V experiment expressed on the [`Marketplace`] facade.
//!
//! [`MarketSimulation`] is the facade-native port of [`crate::Simulation`]:
//! every advertiser registers once, opens one campaign per keyword, and all
//! of an advertiser's campaigns share one [`RoiBidder`] (the Figure 5
//! strategy couples keywords through the advertiser-level spending rate and
//! max/min ROI, so per-campaign state would not be faithful). Queries are
//! then served through [`Marketplace::serve_batch`] — the typed service
//! API driving the same persistent-engine pipeline.
//!
//! The port is *exactly* equivalent to the legacy [`crate::Simulation`]
//! path for the full-matrix methods (LP / H / RH): same bids, same
//! allocations, same sampled clicks, same GSP charges, auction for auction.
//! The integration tests assert this; it is the proof that the facade can
//! express the paper's evaluation without the hand-assembled harness.
//! (`Simulation` remains the reference implementation and the only home of
//! the RHTALU threshold-algorithm evaluation path.)

use crate::config::SectionVWorkload;
use crate::sim::SimulationStats;
use ssa_bidlang::{BidsTable, Formula, Money, SlotId};
use ssa_core::marketplace::{CampaignSpec, Marketplace, QueryRequest};
use ssa_core::{Bidder, BidderOutcome, PricingScheme, QueryContext, WdMethod};
use ssa_strategy::{KeywordEntry, RoiBidder};
use std::sync::{Arc, Mutex};

/// A campaign bidding program that shares one [`RoiBidder`] across all of
/// an advertiser's per-keyword campaigns.
///
/// On a query it applies the Figure 5 adjustment for the queried keyword at
/// the global market time and emits the resulting single-row click bid; on
/// a charged click it feeds spend and value back into the shared strategy
/// state — mirroring the legacy simulation's settlement rule (zero-priced
/// clicks are not recorded).
///
/// The shared state lives behind an [`Arc`]`<`[`Mutex`]`>` so the program
/// satisfies the `Send` bound campaign programs carry (campaigns must be
/// able to migrate to shard worker threads). Note that *sharing* strategy
/// state across keywords makes the program order-sensitive: it is exactly
/// the kind of cross-keyword-coupled bidder whose results are not
/// shard-invariant, so the Section V ROI experiment stays on the
/// single-threaded `Marketplace` (see `ssa_core::sharded`'s module docs).
pub struct SharedRoiProgram {
    shared: Arc<Mutex<RoiBidder>>,
}

impl SharedRoiProgram {
    /// Wraps a shared strategy handle.
    pub fn new(shared: Arc<Mutex<RoiBidder>>) -> Self {
        SharedRoiProgram { shared }
    }
}

impl Bidder for SharedRoiProgram {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        let bid = self
            .shared
            .lock()
            .expect("ROI strategy state poisoned")
            .adjust_and_bid(ctx.keyword, ctx.time);
        BidsTable::new(vec![(Formula::click(), Money::from_cents(bid))])
    }

    fn on_outcome(&mut self, ctx: &QueryContext, outcome: &BidderOutcome) {
        if outcome.clicked && outcome.price.is_positive() {
            let mut shared = self.shared.lock().expect("ROI strategy state poisoned");
            let value = shared.keywords[ctx.keyword].click_value as f64;
            shared.record_click(ctx.keyword, outcome.price, value);
        }
    }
}

/// The Section V workload running on the [`Marketplace`] facade.
pub struct MarketSimulation {
    /// The generated workload.
    pub workload: SectionVWorkload,
    market: Marketplace,
    programs: Vec<Arc<Mutex<RoiBidder>>>,
    auction_idx: usize,
    /// Aggregate counters, kept shape-compatible with the legacy
    /// [`crate::Simulation`] (`candidates` counts every advertiser per
    /// auction, as for the full-matrix methods; `ta_sorted_accesses` stays
    /// zero — the threshold algorithm lives only in the legacy path).
    pub stats: SimulationStats,
}

impl MarketSimulation {
    /// Builds the marketplace for `workload`: one advertiser registration
    /// and one ROI campaign per (advertiser, keyword) pair, engines running
    /// `method` with the paper's GSP pricing, RNG seeded exactly like the
    /// legacy simulation.
    pub fn new(workload: SectionVWorkload, method: WdMethod) -> Self {
        let config = workload.config;
        let mut market = Marketplace::builder()
            .slots(config.num_slots)
            .keywords(config.num_keywords)
            .method(method)
            .pricing(PricingScheme::Gsp)
            .seed(config.seed ^ 0x5EED_CAFE)
            .build()
            .expect("Section V configuration is valid");
        let mut programs = Vec::with_capacity(workload.bidders.len());
        for (i, params) in workload.bidders.iter().enumerate() {
            let advertiser = market.register_advertiser(format!("advertiser-{i}"));
            let shared = Arc::new(Mutex::new(RoiBidder::new(
                params
                    .keywords
                    .iter()
                    .map(|&(value, bid, roi)| KeywordEntry::new(value, bid, roi))
                    .collect(),
                params.target_spend_rate,
            )));
            let click_probs: Vec<f64> = (0..config.num_slots)
                .map(|j| workload.clicks.p_click(i, SlotId::from_index0(j)))
                .collect();
            for keyword in 0..config.num_keywords {
                market
                    .add_campaign(
                        advertiser,
                        keyword,
                        CampaignSpec::program(Box::new(SharedRoiProgram::new(Arc::clone(&shared))))
                            .click_probs(click_probs.clone()),
                    )
                    .expect("Section V campaign is valid");
            }
            programs.push(shared);
        }
        MarketSimulation {
            workload,
            market,
            programs,
            auction_idx: 0,
            stats: SimulationStats::default(),
        }
    }

    /// The underlying marketplace (e.g. to inspect `now()` or `top_bids`).
    pub fn market(&self) -> &Marketplace {
        &self.market
    }

    /// Serves the next `count` queries of the workload's stream (cycled,
    /// exactly like the legacy simulation) through
    /// [`Marketplace::serve_batch`] and folds the outcome into
    /// [`MarketSimulation::stats`].
    pub fn run_auctions(&mut self, count: usize) -> &SimulationStats {
        let stream = &self.workload.query_stream;
        let requests: Vec<QueryRequest> = (0..count)
            .map(|offset| QueryRequest::new(stream[(self.auction_idx + offset) % stream.len()]))
            .collect();
        self.auction_idx += count;
        let report = self
            .market
            .serve_batch(&requests)
            .expect("workload keywords are all in range");
        self.stats.auctions += report.total.auctions;
        self.stats.total_expected_revenue += report.total.expected_revenue;
        self.stats.clicks += report.total.clicks;
        self.stats.charged_cents += report.total.realized_revenue.cents();
        self.stats.candidates +=
            report.total.auctions * self.workload.config.num_advertisers as u64;
        &self.stats
    }

    /// Current bid (cents) of advertiser `adv` on `keyword`, read from the
    /// shared strategy state.
    pub fn bid_of(&self, adv: usize, keyword: usize) -> i64 {
        self.programs[adv]
            .lock()
            .expect("ROI strategy state poisoned")
            .keywords[keyword]
            .bid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SectionVConfig;

    #[test]
    fn facade_serves_the_section_v_workload() {
        let workload = SectionVWorkload::generate(SectionVConfig {
            num_advertisers: 30,
            num_slots: 5,
            num_keywords: 4,
            seed: 17,
        });
        let mut sim = MarketSimulation::new(workload, WdMethod::Reduced);
        sim.run_auctions(60);
        assert_eq!(sim.stats.auctions, 60);
        assert_eq!(sim.market().now(), 60);
        assert!(sim.stats.total_expected_revenue > 0.0);
        assert!(
            sim.stats.clicks > 0,
            "five slots over 60 auctions must click"
        );
        assert_eq!(sim.stats.candidates, 60 * 30);
        // Strategy state is live and reachable.
        let bids: Vec<i64> = (0..30).map(|a| sim.bid_of(a, 0)).collect();
        assert!(bids.iter().any(|&b| b > 0));
    }
}
