//! The Section V workload served at scale: [`ShardedMarketSimulation`]
//! drives the same advertiser population as [`crate::MarketSimulation`]
//! through `ssa_core::sharded::ShardedMarketplace`, proving that sharded
//! serving is a pure execution strategy — shard-count-invariant, auction
//! for auction.
//!
//! One deliberate difference from [`crate::MarketSimulation`]: campaigns
//! here are *per-click* campaigns frozen at the workload's initial bids
//! rather than live [`crate::SharedRoiProgram`]s. The Figure 5 ROI
//! strategy couples all of an advertiser's keywords through one shared
//! spend rate, so its bids depend on the cross-keyword event order — state
//! that is inherently not keyword-local and therefore not shard-invariant
//! (see the `ssa_core::sharded` module docs). The static population keeps
//! every guarantee provable: the tests below show bit-identical stats for
//! shard counts 1, 2, 4, and 7, and the core crate's property tests extend
//! the same claim to arbitrary streams and incremental updates.

use crate::config::SectionVWorkload;
use crate::sim::SimulationStats;
use ssa_bidlang::{Money, SlotId};
use ssa_core::marketplace::{CampaignSpec, MarketError, Marketplace, QueryRequest};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::WdMethod;

/// The Section V workload (static initial-bid population) running on a
/// [`ShardedMarketplace`].
pub struct ShardedMarketSimulation {
    /// The generated workload.
    pub workload: SectionVWorkload,
    market: ShardedMarketplace,
    auction_idx: usize,
    /// Aggregate counters, shape-compatible with
    /// [`crate::Simulation`] / [`crate::MarketSimulation`].
    pub stats: SimulationStats,
}

impl ShardedMarketSimulation {
    /// Builds the sharded marketplace for `workload`: one advertiser
    /// registration and one per-click campaign per (advertiser, keyword)
    /// pair at the workload's initial bid and click value, keyword books
    /// partitioned across `shards` worker shards, engines running `method`
    /// with the paper's GSP pricing.
    pub fn new(
        workload: SectionVWorkload,
        method: WdMethod,
        shards: usize,
    ) -> Result<Self, MarketError> {
        let config = workload.config;
        let mut market = Marketplace::builder()
            .slots(config.num_slots)
            .keywords(config.num_keywords)
            .method(method)
            .pricing(ssa_core::PricingScheme::Gsp)
            .seed(config.seed ^ 0x5EED_CAFE)
            .build_sharded(shards)?;
        for (i, params) in workload.bidders.iter().enumerate() {
            let advertiser = market.register_advertiser(format!("advertiser-{i}"));
            let click_probs: Vec<f64> = (0..config.num_slots)
                .map(|j| workload.clicks.p_click(i, SlotId::from_index0(j)))
                .collect();
            for (keyword, &(value, bid, _)) in params.keywords.iter().enumerate() {
                market.add_campaign(
                    advertiser,
                    keyword,
                    CampaignSpec::per_click(Money::from_cents(bid.max(0)))
                        .click_value(Money::from_cents(value))
                        .click_probs(click_probs.clone()),
                )?;
            }
        }
        Ok(ShardedMarketSimulation {
            workload,
            market,
            auction_idx: 0,
            stats: SimulationStats::default(),
        })
    }

    /// The underlying sharded marketplace (e.g. to inspect `now()`,
    /// `num_shards()`, or `top_bids`).
    pub fn market(&self) -> &ShardedMarketplace {
        &self.market
    }

    /// Serves the next `count` queries of the workload's stream (cycled,
    /// exactly like [`crate::MarketSimulation`]) through
    /// [`ShardedMarketplace::serve_batch`] and folds the outcome into
    /// [`ShardedMarketSimulation::stats`].
    pub fn run_auctions(&mut self, count: usize) -> &SimulationStats {
        let stream = &self.workload.query_stream;
        let requests: Vec<QueryRequest> = (0..count)
            .map(|offset| QueryRequest::new(stream[(self.auction_idx + offset) % stream.len()]))
            .collect();
        self.auction_idx += count;
        let report = self
            .market
            .serve_batch(&requests)
            .expect("workload keywords are all in range");
        self.stats.auctions += report.total.auctions;
        self.stats.total_expected_revenue += report.total.expected_revenue;
        self.stats.clicks += report.total.clicks;
        self.stats.charged_cents += report.total.realized_revenue.cents();
        self.stats.candidates +=
            report.total.auctions * self.workload.config.num_advertisers as u64;
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SectionVConfig;

    fn workload() -> SectionVWorkload {
        SectionVWorkload::generate(SectionVConfig {
            num_advertisers: 40,
            num_slots: 5,
            num_keywords: 8,
            seed: 23,
        })
    }

    #[test]
    fn sharded_section_v_serves_and_clicks() {
        let mut sim =
            ShardedMarketSimulation::new(workload(), WdMethod::Reduced, 4).expect("valid");
        sim.run_auctions(80);
        assert_eq!(sim.stats.auctions, 80);
        assert_eq!(sim.market().now(), 80);
        assert_eq!(sim.market().num_shards(), 4);
        assert!(sim.stats.total_expected_revenue > 0.0);
        assert!(
            sim.stats.clicks > 0,
            "five slots over 80 auctions must click"
        );
        assert_eq!(sim.stats.candidates, 80 * 40);
    }

    #[test]
    fn results_are_shard_count_invariant() {
        // The same workload under 1, 2, 4, and 7 shards: every stats field
        // — including the floating-point expected-revenue sum — must be
        // identical, in several incremental rounds.
        let runs: Vec<SimulationStats> = [1usize, 2, 4, 7]
            .into_iter()
            .map(|shards| {
                let mut sim = ShardedMarketSimulation::new(workload(), WdMethod::Reduced, shards)
                    .expect("valid");
                for _ in 0..3 {
                    sim.run_auctions(50);
                }
                sim.stats
            })
            .collect();
        for (i, stats) in runs.iter().enumerate().skip(1) {
            assert_eq!(stats, &runs[0], "shard count #{i} diverged");
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert_eq!(
            ShardedMarketSimulation::new(workload(), WdMethod::Reduced, 0).err(),
            Some(MarketError::NoShards)
        );
    }
}
