//! Deterministic, seeded generators for the Section V workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssa_core::prob::{ClickModel, PurchaseModel};
use ssa_strategy::RoiBidderParams;

/// Parameters of the Section V experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionVConfig {
    /// Number of advertisers (the x-axis of Figures 12 and 13).
    pub num_advertisers: usize,
    /// Number of slots; the paper uses 15 everywhere.
    pub num_slots: usize,
    /// Number of keywords; the paper uses 10.
    pub num_keywords: usize,
    /// RNG seed; fixed seeds make the harness repeatable.
    pub seed: u64,
}

impl SectionVConfig {
    /// The paper's configuration for a given advertiser count.
    pub fn paper(num_advertisers: usize, seed: u64) -> Self {
        SectionVConfig {
            num_advertisers,
            num_slots: 15,
            num_keywords: 10,
            seed,
        }
    }
}

/// A fully materialised workload instance.
#[derive(Debug, Clone)]
pub struct SectionVWorkload {
    /// The configuration it was generated from.
    pub config: SectionVConfig,
    /// ROI bidder parameters (click values, initial bids, initial ROI,
    /// target rates).
    pub bidders: Vec<RoiBidderParams>,
    /// Click probabilities per advertiser and slot.
    pub clicks: ClickModel,
    /// Purchases never happen in the Section V workload (pure click
    /// auction).
    pub purchases: PurchaseModel,
    /// Pre-drawn query keyword stream (cycled by the simulation).
    pub query_stream: Vec<usize>,
}

impl SectionVWorkload {
    /// Generates the workload.
    ///
    /// Distributions follow Section V verbatim where specified; initial
    /// bids (`U{1..value}`) and initial ROI (`U(0.5, 2.5)`) are not given
    /// in the paper and are documented substitutions (see DESIGN.md).
    pub fn generate(config: SectionVConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.num_advertisers;
        let k = config.num_slots;
        let kw = config.num_keywords;

        let bidders: Vec<RoiBidderParams> = (0..n)
            .map(|_| {
                // Click values U{0..50}, at least one non-zero.
                let mut values: Vec<i64> = (0..kw).map(|_| rng.gen_range(0..=50)).collect();
                if values.iter().all(|&v| v == 0) {
                    let fix = rng.gen_range(0..kw);
                    values[fix] = rng.gen_range(1..=50);
                }
                let max_value = *values.iter().max().expect("kw ≥ 1");
                // Target rates U(1, max value).
                let target_spend_rate = if max_value > 1 {
                    rng.gen_range(1.0..max_value as f64)
                } else {
                    1.0
                };
                let keywords = values
                    .iter()
                    .map(|&v| {
                        let bid = if v > 0 { rng.gen_range(1..=v) } else { 0 };
                        let roi = rng.gen_range(0.5..2.5);
                        (v, bid, roi)
                    })
                    .collect();
                RoiBidderParams {
                    keywords,
                    target_spend_rate,
                }
            })
            .collect();

        // [0.1, 0.9] split into k intervals; slot j (1-based) gets the j-th
        // highest. p(i, j) uniform within slot j's interval.
        let width = 0.8 / k as f64;
        let clicks = ClickModel::from_fn(n, k, |_, j| {
            let hi = 0.9 - j as f64 * width;
            let lo = hi - width;
            rng.gen_range(lo..hi)
        });
        let purchases = PurchaseModel::never(n, k);

        // Queries at a constant rate, keyword uniform.
        let query_stream: Vec<usize> = (0..4096).map(|_| rng.gen_range(0..kw)).collect();

        SectionVWorkload {
            config,
            bidders,
            clicks,
            purchases,
            query_stream,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SectionVWorkload::generate(SectionVConfig::paper(20, 7));
        let b = SectionVWorkload::generate(SectionVConfig::paper(20, 7));
        assert_eq!(a.bidders, b.bidders);
        assert_eq!(a.query_stream, b.query_stream);
        let c = SectionVWorkload::generate(SectionVConfig::paper(20, 8));
        assert_ne!(a.bidders, c.bidders);
    }

    #[test]
    fn distributions_match_section_v() {
        let w = SectionVWorkload::generate(SectionVConfig::paper(200, 42));
        assert_eq!(w.bidders.len(), 200);
        for b in &w.bidders {
            assert_eq!(b.keywords.len(), 10);
            let max_value = b.keywords.iter().map(|&(v, _, _)| v).max().unwrap();
            assert!(max_value >= 1, "at least one non-zero click value");
            assert!(b.target_spend_rate >= 1.0);
            assert!(b.target_spend_rate <= max_value.max(1) as f64);
            for &(v, bid, roi) in &b.keywords {
                assert!((0..=50).contains(&v));
                assert!(bid <= v && bid >= 0);
                assert!((0.5..2.5).contains(&roi));
            }
        }
        // Click probabilities sit inside the right slot intervals.
        let width = 0.8 / 15.0;
        for i in 0..200 {
            for j in 0..15 {
                let p = w.clicks.p_click(i, ssa_bidlang::SlotId::from_index0(j));
                let hi = 0.9 - j as f64 * width;
                assert!(
                    p <= hi && p >= hi - width,
                    "p({i},{j}) = {p} outside interval"
                );
            }
        }
        // Query stream covers keywords.
        assert!(w.query_stream.iter().all(|&q| q < 10));
    }

    #[test]
    fn slot_intervals_are_monotone() {
        // Slot 1 must stochastically dominate slot 15.
        let w = SectionVWorkload::generate(SectionVConfig::paper(50, 3));
        for i in 0..50 {
            let top = w.clicks.p_click(i, ssa_bidlang::SlotId::new(1));
            let bottom = w.clicks.p_click(i, ssa_bidlang::SlotId::new(15));
            assert!(top > bottom);
        }
    }
}
