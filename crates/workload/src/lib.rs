//! # ssa-workload — the Section V experimental workload
//!
//! Reproduces the paper's evaluation setup:
//!
//! * 15 slots; 10 keywords; queries drawn uniformly, the chosen keyword at
//!   relevance 1, the rest at 0;
//! * every bidder runs the ROI heuristic; per-keyword click values uniform
//!   in `[0, 50]` cents (each bidder has at least one non-zero value);
//! * target spending rates uniform between 1 and the bidder's maximum
//!   keyword value;
//! * the interval `[0.1, 0.9]` partitioned into 15 sub-intervals, the
//!   `j`-th highest associated with slot `j`; each advertiser's click
//!   probability for a slot drawn uniformly within that slot's interval;
//! * a slight generalisation of generalised second pricing charges
//!   advertisers who receive clicks.
//!
//! [`Simulation`] runs complete auctions under any of the four Section V
//! methods ([`Method::Lp`], [`Method::H`], [`Method::Rh`],
//! [`Method::Rhtalu`]) and is what both the Criterion benches and the
//! `reproduce` binary drive. [`MarketSimulation`] is the same experiment
//! expressed on the `Marketplace` service facade (advertisers, campaigns,
//! `serve_batch`), equivalent to the legacy path for the full-matrix
//! methods. [`ShardedMarketSimulation`] serves the (static-bid) Section V
//! population through the multi-threaded `ShardedMarketplace` and proves
//! the results shard-count-invariant.
//!
//! The [`hostile`] module is the evaluation's adversarial counterpart:
//! Zipf-skewed and flash-crowd query streams, advertiser churn under
//! load, and defective targeting programs — the [`WorkloadShape`]s behind
//! `reproduce --workload <shape>` and `ssa-load --workload <shape>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hostile;
pub mod market;
pub mod sharded;
pub mod sim;
pub mod sql;

pub use config::{SectionVConfig, SectionVWorkload};
pub use hostile::{
    defective_targeting_sources, ChurnAction, ChurnEvent, ChurnPlan, ParseWorkloadError, ShardSkew,
    WorkloadShape,
};
pub use market::{MarketSimulation, SharedRoiProgram};
pub use sharded::ShardedMarketSimulation;
pub use sim::{Method, Simulation, SimulationStats};
pub use sql::{
    programmed_market, programmed_sharded_market, ParseStrategyError, ProgramHandle,
    ProgrammedMarket, ShardedProgrammedMarket, Strategy,
};
