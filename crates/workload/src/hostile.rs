//! Hostile-world workload shapes: the adversarial counterpart of the
//! well-behaved Section V stream.
//!
//! The paper's evaluation draws query keywords uniformly, which is the
//! *kindest* possible traffic for a sharded serving layer — every shard
//! sees the same load and every latency percentile looks like the mean.
//! Real sponsored-search traffic is none of those things. This module
//! generates the unkind shapes, seeded and reproducible:
//!
//! * [`WorkloadShape::Zipf`] — keyword popularity follows a Zipf law with
//!   exponent `s`, drawn by binary search over a precomputed CDF. Hot
//!   keywords concentrate load on whichever shards own them.
//! * [`WorkloadShape::Flash`] — a flash crowd: uniform background traffic
//!   with the middle half of the stream pinned to one (seeded) keyword.
//!   Because a keyword lives on exactly one shard
//!   ([`ssa_core::shard_of_keyword`]), the crowd lands on a single shard
//!   by construction, which is the worst case for queue-depth skew.
//! * [`WorkloadShape::Churn`] — uniform queries, but the population
//!   mutates under load: a seeded [`ChurnPlan`] of budget exhaustions
//!   (pauses), comebacks (resumes), and re-bids interleaves control-plane
//!   writes with the serving hot path.
//! * [`WorkloadShape::Uniform`] — the paper's shape, included so harnesses
//!   can A/B against the baseline under one flag.
//!
//! [`ShardSkew`] summarises how unevenly any stream routes across a shard
//! count (per-shard queue depths, p50/p99, max-over-mean), and
//! [`defective_targeting_sources`] produces targeting programs that every
//! layer must *reject with a typed error* — the control-plane half of a
//! hostile world.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssa_core::shard_of_keyword;
use std::fmt;
use std::str::FromStr;

/// A traffic shape for the query-keyword stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadShape {
    /// Keywords drawn uniformly — the paper's Section V shape.
    Uniform,
    /// Zipf-distributed keyword popularity with exponent `s` (> 0);
    /// `zipf:1.1` on the command line.
    Zipf {
        /// The Zipf exponent: larger is more skewed.
        s: f64,
    },
    /// Uniform background with the middle half of the stream pinned to one
    /// seeded keyword (and therefore one shard).
    Flash,
    /// Uniform queries with a seeded plan of control-plane churn events
    /// applied while serving ([`WorkloadShape::churn_plan`]).
    Churn,
}

/// A [`WorkloadShape`] string that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    raw: String,
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid workload {:?}: expected uniform, zipf:<s> (s > 0), flash, or churn",
            self.raw
        )
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for WorkloadShape {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let raw = s.trim();
        let err = || ParseWorkloadError {
            raw: raw.to_string(),
        };
        match raw {
            "uniform" => Ok(WorkloadShape::Uniform),
            "flash" => Ok(WorkloadShape::Flash),
            "churn" => Ok(WorkloadShape::Churn),
            other => {
                let exponent = other.strip_prefix("zipf:").ok_or_else(err)?;
                let s: f64 = exponent.parse().map_err(|_| err())?;
                if s.is_finite() && s > 0.0 {
                    Ok(WorkloadShape::Zipf { s })
                } else {
                    Err(err())
                }
            }
        }
    }
}

impl fmt::Display for WorkloadShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadShape::Uniform => write!(f, "uniform"),
            WorkloadShape::Zipf { s } => write!(f, "zipf:{s}"),
            WorkloadShape::Flash => write!(f, "flash"),
            WorkloadShape::Churn => write!(f, "churn"),
        }
    }
}

impl WorkloadShape {
    /// Generates the seeded query-keyword stream: `len` draws over
    /// `num_keywords` keywords. The same `(shape, num_keywords, len,
    /// seed)` always yields the same stream.
    pub fn query_stream(&self, num_keywords: usize, len: usize, seed: u64) -> Vec<usize> {
        let kw = num_keywords.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            WorkloadShape::Uniform | WorkloadShape::Churn => {
                (0..len).map(|_| rng.gen_range(0..kw)).collect()
            }
            WorkloadShape::Zipf { s } => {
                // CDF over ranks 1..=kw with weight 1/rank^s; each draw is
                // a binary search (partition_point), so the stream costs
                // O(len log kw) however skewed the law.
                let cdf: Vec<f64> = (0..kw)
                    .scan(0.0f64, |acc, rank| {
                        *acc += 1.0 / ((rank + 1) as f64).powf(*s);
                        Some(*acc)
                    })
                    .collect();
                let total = *cdf.last().expect("kw >= 1");
                // A seeded rotation decouples "hot" from "keyword 0" so
                // the hot set exercises different shards per seed.
                let offset = rng.gen_range(0..kw);
                (0..len)
                    .map(|_| {
                        let u = rng.gen_range(0.0..total);
                        let rank = cdf.partition_point(|&c| c <= u);
                        (rank + offset) % kw
                    })
                    .collect()
            }
            WorkloadShape::Flash => {
                let hot = rng.gen_range(0..kw);
                let (start, end) = (len / 4, len - len / 4);
                (0..len)
                    .map(|i| {
                        if (start..end).contains(&i) {
                            hot
                        } else {
                            rng.gen_range(0..kw)
                        }
                    })
                    .collect()
            }
        }
    }

    /// The seeded control-plane churn accompanying a `queries`-long serve
    /// of this shape: empty for every shape but [`WorkloadShape::Churn`].
    ///
    /// The plan only names `(keyword, index)` coordinates below the given
    /// bounds, so applying it to a Section V population (one campaign per
    /// advertiser per keyword: `campaigns_per_keyword = n`) never misses.
    /// Every exhausted campaign is scheduled to return later in the run,
    /// so the plan perturbs serving without permanently shrinking the
    /// market.
    pub fn churn_plan(
        &self,
        num_keywords: usize,
        campaigns_per_keyword: usize,
        queries: usize,
        seed: u64,
    ) -> ChurnPlan {
        let mut events = Vec::new();
        if !matches!(self, WorkloadShape::Churn) || campaigns_per_keyword == 0 || queries == 0 {
            return ChurnPlan { events };
        }
        let kw = num_keywords.max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A2_BEEF);
        let rounds = (queries / 16).clamp(1, 64);
        for round in 0..rounds {
            let at = round * queries / rounds;
            let keyword = rng.gen_range(0..kw);
            let index = rng.gen_range(0..campaigns_per_keyword);
            match round % 3 {
                // Budget exhausted: the campaign stops bidding mid-run…
                0 => {
                    events.push(ChurnEvent {
                        after_query: at,
                        keyword,
                        index,
                        action: ChurnAction::Exhaust,
                    });
                    // …and returns once its (notional) budget refills.
                    let back = at + (queries - at) / 2;
                    events.push(ChurnEvent {
                        after_query: back,
                        keyword,
                        index,
                        action: ChurnAction::Return,
                    });
                }
                1 => events.push(ChurnEvent {
                    after_query: at,
                    keyword,
                    index,
                    action: ChurnAction::Rebid {
                        bid_cents: rng.gen_range(1..=50),
                    },
                }),
                _ => events.push(ChurnEvent {
                    after_query: at,
                    keyword,
                    index,
                    action: ChurnAction::Return,
                }),
            }
        }
        events.sort_by_key(|e| e.after_query);
        ChurnPlan { events }
    }
}

/// One control-plane mutation of a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Apply the event once this many queries of the stream have been
    /// served.
    pub after_query: usize,
    /// Keyword coordinate of the campaign.
    pub keyword: usize,
    /// Registration index of the campaign within its keyword.
    pub index: usize,
    /// What happens to it.
    pub action: ChurnAction,
}

/// The kind of churn applied to a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// Budget exhausted: pause the campaign.
    Exhaust,
    /// The advertiser returns: resume it (a no-op if it never paused —
    /// resume is idempotent).
    Return,
    /// The advertiser re-bids mid-run.
    Rebid {
        /// The new bid, in cents.
        bid_cents: i64,
    },
}

/// A seeded, sorted sequence of [`ChurnEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChurnPlan {
    /// The events, sorted by [`ChurnEvent::after_query`].
    pub events: Vec<ChurnEvent>,
}

/// How unevenly a query stream routes across `shards` worker shards: the
/// static queue depth each shard would see under keyword-affinity routing
/// ([`ssa_core::shard_of_keyword`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSkew {
    /// Queries routed to each shard, by shard index.
    pub queries_per_shard: Vec<u64>,
}

impl ShardSkew {
    /// Routes every keyword of `stream` with [`shard_of_keyword`] and
    /// counts per-shard queue depth.
    pub fn from_stream(stream: &[usize], shards: usize) -> Self {
        let shards = shards.max(1);
        let mut queries_per_shard = vec![0u64; shards];
        for &keyword in stream {
            queries_per_shard[shard_of_keyword(keyword, shards)] += 1;
        }
        ShardSkew { queries_per_shard }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-shard queue depth, by the
    /// nearest-rank method.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut sorted = self.queries_per_shard.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[rank]
    }

    /// Median per-shard queue depth.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile per-shard queue depth (the hottest shard, at the
    /// shard counts this repo runs).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Hottest shard's depth over the mean depth: 1.0 is perfectly even,
    /// `shards` is everything-on-one-shard.
    pub fn max_over_mean(&self) -> f64 {
        let max = self.queries_per_shard.iter().copied().max().unwrap_or(0);
        let total: u64 = self.queries_per_shard.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.queries_per_shard.len() as f64;
        max as f64 / mean
    }

    /// One JSON object (stable keys, no dependencies) in the house
    /// bench-report style.
    pub fn to_json(&self) -> String {
        let depths: Vec<String> = self
            .queries_per_shard
            .iter()
            .map(|d| d.to_string())
            .collect();
        format!(
            concat!(
                "{{\"queries_per_shard\":[{}],\"p50\":{},\"p99\":{},",
                "\"max_over_mean\":{:.3}}}"
            ),
            depths.join(","),
            self.p50(),
            self.p99(),
            self.max_over_mean(),
        )
    }
}

/// Seeded targeting programs that must fail to parse: syntax garbage,
/// unbalanced parentheses, and expressions nested beyond the compiler's
/// depth limit. Every layer that accepts targeting source (campaign spec,
/// wire protocol, WAL replay) must reject each of these with a typed
/// error — never a panic, never a silently-ignored program.
pub fn defective_targeting_sources(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD_7A26);
    (0..count)
        .map(|i| match i % 5 {
            // Unbalanced parentheses.
            0 => format!("({} geo = 'us'", "(".repeat(rng.gen_range(1..4))),
            // Nested past any sane depth limit.
            1 => {
                let depth = 80 + rng.gen_range(0usize..40);
                format!("{}geo = 'us'{}", "(".repeat(depth), ")".repeat(depth))
            }
            // A bare operator with no operands.
            2 => "and".to_string(),
            // A comparison missing its right-hand side.
            3 => format!("device = {}", ""),
            // Random ASCII soup (printable, so the failure is the
            // grammar's, not the tokenizer's input validation).
            _ => (0..rng.gen_range(5..30))
                .map(|_| rng.gen_range(33u8..=126) as char)
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::CompiledTargeting;

    #[test]
    fn parsing_round_trips_and_rejects_garbage() {
        for (text, shape) in [
            ("uniform", WorkloadShape::Uniform),
            ("zipf:1.1", WorkloadShape::Zipf { s: 1.1 }),
            ("flash", WorkloadShape::Flash),
            ("churn", WorkloadShape::Churn),
        ] {
            assert_eq!(text.parse::<WorkloadShape>(), Ok(shape));
            assert_eq!(shape.to_string().parse::<WorkloadShape>(), Ok(shape));
        }
        for bad in [
            "zipf", "zipf:", "zipf:0", "zipf:-1", "zipf:inf", "pareto", "",
        ] {
            let err = bad.parse::<WorkloadShape>().unwrap_err();
            assert!(err.to_string().contains("invalid workload"), "{bad}: {err}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for shape in [
            WorkloadShape::Uniform,
            WorkloadShape::Zipf { s: 1.3 },
            WorkloadShape::Flash,
            WorkloadShape::Churn,
        ] {
            let a = shape.query_stream(10, 500, 7);
            let b = shape.query_stream(10, 500, 7);
            assert_eq!(a, b, "{shape}");
            assert!(a.iter().all(|&k| k < 10), "{shape}");
            let c = shape.query_stream(10, 500, 8);
            assert_ne!(a, c, "{shape} ignored the seed");
        }
    }

    #[test]
    fn zipf_concentrates_mass_by_rank() {
        let stream = WorkloadShape::Zipf { s: 1.2 }.query_stream(10, 20_000, 11);
        let mut counts = [0u64; 10];
        for &k in &stream {
            counts[k] += 1;
        }
        let mut sorted = counts;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Rank 1 under s=1.2 carries ~34% of the mass; uniform would give
        // every keyword 10%.
        assert!(
            sorted[0] > stream.len() as u64 / 4,
            "hottest keyword only {} of {}",
            sorted[0],
            stream.len()
        );
        assert!(
            sorted[0] > 3 * sorted[9].max(1),
            "tail not thinner: {sorted:?}"
        );
    }

    #[test]
    fn flash_pins_the_crowd_to_one_shard() {
        let stream = WorkloadShape::Flash.query_stream(10, 4000, 3);
        let window = &stream[1000..3000];
        let hot = window[0];
        assert!(window.iter().all(|&k| k == hot), "flash window not pinned");
        // And under keyword-affinity routing the whole crowd lands on one
        // shard: the skew summary must show it.
        let skew = ShardSkew::from_stream(&stream, 4);
        assert!(
            skew.max_over_mean() > 2.0,
            "flash crowd did not skew 4 shards: {skew:?}"
        );
        assert!(skew.p99() >= skew.p50());
    }

    #[test]
    fn uniform_stays_balanced() {
        let stream = WorkloadShape::Uniform.query_stream(64, 20_000, 5);
        let skew = ShardSkew::from_stream(&stream, 4);
        assert!(
            skew.max_over_mean() < 1.5,
            "uniform traffic should not skew: {skew:?}"
        );
        let json = skew.to_json();
        for key in [
            "\"queries_per_shard\":[",
            "\"p50\":",
            "\"p99\":",
            "\"max_over_mean\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn churn_plan_is_seeded_sorted_and_in_bounds() {
        let shape = WorkloadShape::Churn;
        let plan = shape.churn_plan(10, 40, 512, 9);
        assert_eq!(plan, shape.churn_plan(10, 40, 512, 9));
        assert!(!plan.events.is_empty());
        assert!(plan
            .events
            .windows(2)
            .all(|w| w[0].after_query <= w[1].after_query));
        for e in &plan.events {
            assert!(
                e.keyword < 10 && e.index < 40 && e.after_query <= 512,
                "{e:?}"
            );
            if let ChurnAction::Rebid { bid_cents } = e.action {
                assert!(bid_cents > 0);
            }
        }
        // Every exhaustion has a later return for the same campaign.
        for e in &plan.events {
            if e.action == ChurnAction::Exhaust {
                assert!(
                    plan.events.iter().any(|r| r.action == ChurnAction::Return
                        && (r.keyword, r.index) == (e.keyword, e.index)
                        && r.after_query >= e.after_query),
                    "no return for {e:?}"
                );
            }
        }
        // Other shapes churn nothing.
        assert!(WorkloadShape::Uniform
            .churn_plan(10, 40, 512, 9)
            .events
            .is_empty());
    }

    #[test]
    fn defective_sources_are_all_rejected_with_typed_errors() {
        let sources = defective_targeting_sources(25, 99);
        assert_eq!(sources, defective_targeting_sources(25, 99));
        for src in &sources {
            assert!(
                CompiledTargeting::parse(src).is_err(),
                "defective source parsed: {src:?}"
            );
        }
    }
}
