//! The four-method auction simulation of Section V.

use crate::config::SectionVWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssa_bidlang::{Money, SlotId};
use ssa_core::pricing::gsp_prices;
use ssa_matching::threshold::{threshold_top_k, MaintainedIndex, TaSource};
use ssa_matching::{max_weight_assignment, reduced_assignment, Assignment, RevenueMatrix};
use ssa_simplex::network_simplex_assignment;
use ssa_strategy::{LogicalRoiPopulation, NaiveRoiPopulation, RoiPopulation};
use std::time::{Duration, Instant};

/// The four winner-determination / program-evaluation methods compared in
/// Figures 12 and 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Linear program solved with the (network) simplex method.
    Lp,
    /// Hungarian algorithm on the full bipartite graph.
    H,
    /// Reduced bipartite graph (Section III-E).
    Rh,
    /// Reduced graph + threshold algorithm + logical updates (Section IV).
    Rhtalu,
}

impl Method {
    /// All four methods, in the paper's order.
    pub const ALL: [Method; 4] = [Method::Lp, Method::H, Method::Rh, Method::Rhtalu];

    /// Label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Method::Lp => "LP",
            Method::H => "H",
            Method::Rh => "RH",
            Method::Rhtalu => "RHTALU",
        }
    }
}

/// Aggregate counters for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulationStats {
    /// Auctions run.
    pub auctions: u64,
    /// Sum of winner-determination objectives (expected revenue, cents).
    pub total_expected_revenue: f64,
    /// Realised clicks.
    pub clicks: u64,
    /// Realised GSP revenue (cents).
    pub charged_cents: i64,
    /// Total candidates surviving the reduction (RH / RHTALU).
    pub candidates: u64,
    /// Sorted accesses performed by the threshold algorithm (RHTALU).
    pub ta_sorted_accesses: u64,
}

enum Population {
    Naive(NaiveRoiPopulation),
    Logical(LogicalRoiPopulation),
}

/// A [`TaSource`] over one slot: list 0 is the static click-probability
/// index for that slot, list 1 the logically-maintained bid list for the
/// query keyword. The aggregation `w × bid` is monotone in both.
pub struct TaSlotSource<'a> {
    /// Sorted click probabilities for this slot.
    pub w_index: &'a MaintainedIndex,
    /// The logical population holding the bid lists.
    pub population: &'a LogicalRoiPopulation,
    /// The query keyword.
    pub keyword: usize,
}

impl TaSource for TaSlotSource<'_> {
    fn num_lists(&self) -> usize {
        2
    }
    fn num_objects(&self) -> usize {
        self.w_index.len()
    }
    fn sorted_iter(&self, list: usize) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        match list {
            0 => Box::new(self.w_index.iter_desc()),
            1 => Box::new(
                self.population
                    .iter_desc(self.keyword)
                    .map(|(p, b)| (p, b as f64)),
            ),
            _ => unreachable!("two lists"),
        }
    }
    fn random_access(&self, list: usize, object: usize) -> f64 {
        match list {
            0 => self.w_index.value(object),
            1 => self.population.bid_on(object, self.keyword) as f64,
            _ => unreachable!("two lists"),
        }
    }
}

/// Product aggregation used by the RHTALU selection.
pub fn ta_aggregation(values: &[f64]) -> f64 {
    values.iter().product()
}

/// One full Section V simulation under a fixed method.
pub struct Simulation {
    /// The generated workload.
    pub workload: SectionVWorkload,
    method: Method,
    population: Population,
    /// Static per-slot click-probability indexes (RHTALU only).
    w_indexes: Vec<MaintainedIndex>,
    rng: StdRng,
    auction_idx: usize,
    /// Counters.
    pub stats: SimulationStats,
}

impl Simulation {
    /// Builds a simulation for the workload and method.
    pub fn new(workload: SectionVWorkload, method: Method) -> Self {
        let n = workload.config.num_advertisers;
        let k = workload.config.num_slots;
        let population = match method {
            Method::Rhtalu => Population::Logical(LogicalRoiPopulation::new(&workload.bidders)),
            _ => Population::Naive(NaiveRoiPopulation::new(&workload.bidders)),
        };
        let w_indexes = if method == Method::Rhtalu {
            (0..k)
                .map(|j| {
                    MaintainedIndex::new(
                        (0..n)
                            .map(|i| workload.clicks.p_click(i, SlotId::from_index0(j)))
                            .collect(),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let rng = StdRng::seed_from_u64(workload.config.seed ^ 0x5EED_CAFE);
        Simulation {
            workload,
            method,
            population,
            w_indexes,
            rng,
            auction_idx: 0,
            stats: SimulationStats::default(),
        }
    }

    /// The method being simulated.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Runs one complete auction (program evaluation, winner determination,
    /// click sampling, GSP pricing, strategy feedback). Returns the
    /// winner-determination objective.
    pub fn run_auction(&mut self) -> f64 {
        let keyword =
            self.workload.query_stream[self.auction_idx % self.workload.query_stream.len()];
        self.auction_idx += 1;
        let k = self.workload.config.num_slots;

        // Program evaluation.
        match &mut self.population {
            Population::Naive(p) => p.begin_auction(keyword),
            Population::Logical(p) => p.begin_auction(keyword),
        };

        // Winner determination.
        let (assignment, candidates, objective) = match self.method {
            Method::Lp | Method::H | Method::Rh => {
                let Population::Naive(pop) = &self.population else {
                    unreachable!("naive methods use the naive population")
                };
                let clicks = &self.workload.clicks;
                let matrix = RevenueMatrix::from_fn(pop.len(), k, |i, j| {
                    clicks.p_click(i, SlotId::from_index0(j)) * pop.bid(i) as f64
                });
                let assignment = match self.method {
                    Method::Lp => network_simplex_assignment(&matrix).0,
                    Method::H => max_weight_assignment(&matrix),
                    Method::Rh => reduced_assignment(&matrix).assignment,
                    Method::Rhtalu => unreachable!(),
                };
                let objective = assignment.total_weight;
                let prices = gsp_prices(&matrix, &assignment, &|adv, slot| {
                    clicks.p_click(adv, SlotId::from_index0(slot))
                });
                self.settle(keyword, &assignment, &prices);
                (assignment, pop_len_candidates(&matrix), objective)
            }
            Method::Rhtalu => {
                let (assignment, candidates, accesses) = self.solve_rhtalu(keyword);
                self.stats.ta_sorted_accesses += accesses;
                let objective = assignment.total_weight;
                (assignment, candidates, objective)
            }
        };

        self.stats.auctions += 1;
        self.stats.total_expected_revenue += objective;
        self.stats.candidates += candidates as u64;
        let _ = assignment;
        objective
    }

    /// RHTALU path: threshold-algorithm selection over logical bid lists,
    /// then the reduced-graph Hungarian, then GSP within the candidate set.
    fn solve_rhtalu(&mut self, keyword: usize) -> (Assignment, usize, u64) {
        let k = self.workload.config.num_slots;
        let Population::Logical(pop) = &self.population else {
            unreachable!("RHTALU uses the logical population")
        };
        let mut candidates: Vec<usize> = Vec::with_capacity(k * (k + 1));
        let mut accesses = 0u64;
        for j in 0..k {
            let source = TaSlotSource {
                w_index: &self.w_indexes[j],
                population: pop,
                keyword,
            };
            // Top k+1 rather than top k: the winner determination needs k,
            // but exact GSP pricing needs the best *unassigned* competitor
            // per slot, and with at most k advertisers assigned the
            // (k+1)-deep list always contains one.
            let (top, instr) = threshold_top_k(&source, &ta_aggregation, k + 1);
            accesses += instr.sorted_accesses as u64;
            candidates.extend(top.into_iter().map(|(id, _)| id));
        }
        candidates.sort_unstable();
        candidates.dedup();

        let clicks = &self.workload.clicks;
        let reduced = RevenueMatrix::from_fn(candidates.len(), k, |ci, j| {
            let adv = candidates[ci];
            clicks.p_click(adv, SlotId::from_index0(j)) * pop.bid_on(adv, keyword) as f64
        });
        let local = max_weight_assignment(&reduced);
        let prices = gsp_prices(&reduced, &local, &|ci, slot| {
            clicks.p_click(candidates[ci], SlotId::from_index0(slot))
        });
        // Map back to global ids.
        let assignment = Assignment {
            slot_to_adv: local
                .slot_to_adv
                .iter()
                .map(|o| o.map(|ci| candidates[ci]))
                .collect(),
            total_weight: local.total_weight,
        };
        let global_prices: Vec<_> = prices
            .into_iter()
            .map(|mut p| {
                p.winner = candidates[p.winner];
                p
            })
            .collect();
        let num_candidates = candidates.len();
        self.settle(keyword, &assignment, &global_prices);
        (assignment, num_candidates, accesses)
    }

    /// Samples user actions and feeds GSP charges back into the strategies.
    fn settle(
        &mut self,
        keyword: usize,
        assignment: &Assignment,
        prices: &[ssa_core::pricing::SlotPrice],
    ) {
        let clicks = &self.workload.clicks;
        for (j, adv) in assignment.slot_to_adv.iter().enumerate() {
            let Some(adv) = *adv else { continue };
            let p = clicks.p_click(adv, SlotId::from_index0(j));
            if self.rng.gen::<f64>() >= p {
                continue;
            }
            self.stats.clicks += 1;
            let per_click = prices
                .iter()
                .find(|sp| sp.winner == adv)
                .map(|sp| sp.amount)
                .unwrap_or(0.0);
            let price = Money::from_f64_rounded(per_click);
            if price.is_positive() {
                self.stats.charged_cents += price.cents();
                let value = self.workload.bidders[adv].keywords[keyword].0 as f64;
                match &mut self.population {
                    Population::Naive(pop) => pop.record_click(adv, price, value),
                    Population::Logical(pop) => pop.record_click(adv, price, value),
                }
            }
        }
    }

    /// Runs `auctions` auctions, returning the elapsed wall-clock time.
    pub fn run_timed(&mut self, auctions: usize) -> Duration {
        let start = Instant::now();
        for _ in 0..auctions {
            self.run_auction();
        }
        start.elapsed()
    }
}

/// "Candidates" for the full-matrix methods is simply n (every advertiser is
/// considered); kept as a helper so the stats line up across methods.
fn pop_len_candidates(matrix: &RevenueMatrix) -> usize {
    matrix.num_advertisers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SectionVConfig, SectionVWorkload};

    fn workload(n: usize, seed: u64) -> SectionVWorkload {
        SectionVWorkload::generate(SectionVConfig {
            num_advertisers: n,
            num_slots: 5,
            num_keywords: 4,
            seed,
        })
    }

    /// All four methods produce the same winner-determination objective on
    /// the very first auction (identical fresh state).
    #[test]
    fn methods_agree_on_first_auction_objective() {
        let mut objectives = Vec::new();
        for method in Method::ALL {
            let mut sim = Simulation::new(workload(60, 11), method);
            objectives.push(sim.run_auction());
        }
        for pair in objectives.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "objectives diverge: {objectives:?}"
            );
        }
    }

    /// RH and RHTALU agree auction after auction: same objective every
    /// round even as strategies evolve through clicks and charges (the RNG
    /// streams are identical, and ties in GSP pricing resolve identically
    /// because the candidate set always contains every positive-weight
    /// competitor for each slot... asserted here empirically).
    #[test]
    fn rh_and_rhtalu_agree_over_time() {
        let mut rh = Simulation::new(workload(40, 5), Method::Rh);
        let mut ta = Simulation::new(workload(40, 5), Method::Rhtalu);
        for auction in 0..120 {
            let a = rh.run_auction();
            let b = ta.run_auction();
            assert!(
                (a - b).abs() < 1e-6,
                "objective diverged at auction {auction}: RH {a} vs RHTALU {b}"
            );
        }
        assert_eq!(rh.stats.clicks, ta.stats.clicks);
        assert_eq!(rh.stats.charged_cents, ta.stats.charged_cents);
    }

    /// The reduction bounds candidates by k² while the naive methods look
    /// at all n advertisers.
    #[test]
    fn candidate_counts() {
        let mut ta = Simulation::new(workload(80, 2), Method::Rhtalu);
        for _ in 0..10 {
            ta.run_auction();
        }
        let per_auction = ta.stats.candidates as f64 / ta.stats.auctions as f64;
        assert!(
            per_auction <= 30.0,
            "candidates per auction = {per_auction}"
        );
        assert!(ta.stats.ta_sorted_accesses > 0);

        let mut h = Simulation::new(workload(80, 2), Method::H);
        h.run_auction();
        assert_eq!(h.stats.candidates, 80);
    }

    /// Revenue statistics accumulate sensibly.
    #[test]
    fn stats_accumulate() {
        let mut sim = Simulation::new(workload(50, 9), Method::Rh);
        let d = sim.run_timed(30);
        assert_eq!(sim.stats.auctions, 30);
        assert!(sim.stats.total_expected_revenue > 0.0);
        assert!(d.as_nanos() > 0);
        // Clicks were sampled and some were charged.
        assert!(sim.stats.clicks > 0);
    }
}
