//! The four-method auction simulation of Section V.

use crate::config::SectionVWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssa_bidlang::{Money, SlotId};
use ssa_core::pricing::{gsp_prices_into, SlotPrice};
use ssa_matching::threshold::{threshold_top_k, MaintainedIndex, TaSource};
use ssa_matching::{Assignment, HungarianSolver, ReducedSolver, RevenueMatrix, WdSolver};
use ssa_simplex::NetworkSimplexSolver;
use ssa_strategy::{LogicalRoiPopulation, NaiveRoiPopulation, RoiPopulation};
use std::time::{Duration, Instant};

/// The four winner-determination / program-evaluation methods compared in
/// Figures 12 and 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Linear program solved with the (network) simplex method.
    Lp,
    /// Hungarian algorithm on the full bipartite graph.
    H,
    /// Reduced bipartite graph (Section III-E).
    Rh,
    /// Reduced graph + threshold algorithm + logical updates (Section IV).
    Rhtalu,
}

impl Method {
    /// All four methods, in the paper's order.
    pub const ALL: [Method; 4] = [Method::Lp, Method::H, Method::Rh, Method::Rhtalu];

    /// Label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Method::Lp => "LP",
            Method::H => "H",
            Method::Rh => "RH",
            Method::Rhtalu => "RHTALU",
        }
    }
}

/// Aggregate counters for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulationStats {
    /// Auctions run.
    pub auctions: u64,
    /// Sum of winner-determination objectives (expected revenue, cents).
    pub total_expected_revenue: f64,
    /// Realised clicks.
    pub clicks: u64,
    /// Realised GSP revenue (cents).
    pub charged_cents: i64,
    /// Total candidates surviving the reduction (RH / RHTALU).
    pub candidates: u64,
    /// Sorted accesses performed by the threshold algorithm (RHTALU).
    pub ta_sorted_accesses: u64,
}

enum Population {
    Naive(NaiveRoiPopulation),
    Logical(LogicalRoiPopulation),
}

/// A [`TaSource`] over one slot: list 0 is the static click-probability
/// index for that slot, list 1 the logically-maintained bid list for the
/// query keyword. The aggregation `w × bid` is monotone in both.
pub struct TaSlotSource<'a> {
    /// Sorted click probabilities for this slot.
    pub w_index: &'a MaintainedIndex,
    /// The logical population holding the bid lists.
    pub population: &'a LogicalRoiPopulation,
    /// The query keyword.
    pub keyword: usize,
}

impl TaSource for TaSlotSource<'_> {
    fn num_lists(&self) -> usize {
        2
    }
    fn num_objects(&self) -> usize {
        self.w_index.len()
    }
    fn sorted_iter(&self, list: usize) -> Box<dyn Iterator<Item = (usize, f64)> + '_> {
        match list {
            0 => Box::new(self.w_index.iter_desc()),
            1 => Box::new(
                self.population
                    .iter_desc(self.keyword)
                    .map(|(p, b)| (p, b as f64)),
            ),
            _ => unreachable!("two lists"),
        }
    }
    fn random_access(&self, list: usize, object: usize) -> f64 {
        match list {
            0 => self.w_index.value(object),
            1 => self.population.bid_on(object, self.keyword) as f64,
            _ => unreachable!("two lists"),
        }
    }
}

/// Product aggregation used by the RHTALU selection.
pub fn ta_aggregation(values: &[f64]) -> f64 {
    values.iter().product()
}

/// One full Section V simulation under a fixed method.
///
/// The simulation is the hot path the Figure 12/13 measurements drive, so
/// it is built on the reusable-[`WdSolver`] pipeline: the revenue matrix,
/// assignment, candidate list, price buffers, and solver scratch persist
/// across auctions and are refilled in place. The full-matrix methods
/// allocate nothing per auction after warm-up; RHTALU's
/// threshold-algorithm selection still returns fresh top-k lists.
pub struct Simulation {
    /// The generated workload.
    pub workload: SectionVWorkload,
    method: Method,
    population: Population,
    /// Static per-slot click-probability indexes (RHTALU only).
    w_indexes: Vec<MaintainedIndex>,
    rng: StdRng,
    auction_idx: usize,
    /// Persistent solver for the full-matrix methods (LP / H / RH); RHTALU
    /// runs its own threshold-algorithm selection in front of `hungarian`.
    solver: Option<Box<dyn WdSolver>>,
    /// Hungarian scratch for the RHTALU candidate sub-problem.
    hungarian: HungarianSolver,
    /// Reused revenue (or candidate sub-) matrix.
    matrix: RevenueMatrix,
    /// Reused assignment buffer (global advertiser ids).
    assignment: Assignment,
    /// Reused candidate-local assignment buffer (RHTALU only).
    local_assignment: Assignment,
    /// Reused RHTALU candidate ids.
    candidates: Vec<usize>,
    /// Reused advertiser→slot inverse map for pricing.
    adv_to_slot: Vec<Option<usize>>,
    /// Reused GSP slot-price buffer.
    prices: Vec<SlotPrice>,
    /// Counters.
    pub stats: SimulationStats,
}

impl Simulation {
    /// Builds a simulation for the workload and method.
    pub fn new(workload: SectionVWorkload, method: Method) -> Self {
        let n = workload.config.num_advertisers;
        let k = workload.config.num_slots;
        let population = match method {
            Method::Rhtalu => Population::Logical(LogicalRoiPopulation::new(&workload.bidders)),
            _ => Population::Naive(NaiveRoiPopulation::new(&workload.bidders)),
        };
        let w_indexes = if method == Method::Rhtalu {
            (0..k)
                .map(|j| {
                    MaintainedIndex::new(
                        (0..n)
                            .map(|i| workload.clicks.p_click(i, SlotId::from_index0(j)))
                            .collect(),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let solver: Option<Box<dyn WdSolver>> = match method {
            Method::Lp => Some(Box::new(NetworkSimplexSolver::new())),
            Method::H => Some(Box::new(HungarianSolver::new())),
            Method::Rh => Some(Box::new(ReducedSolver::new())),
            Method::Rhtalu => None,
        };
        let rng = StdRng::seed_from_u64(workload.config.seed ^ 0x5EED_CAFE);
        Simulation {
            workload,
            method,
            population,
            w_indexes,
            rng,
            auction_idx: 0,
            solver,
            hungarian: HungarianSolver::new(),
            matrix: RevenueMatrix::zeros(0, k.max(1)),
            assignment: Assignment::default(),
            local_assignment: Assignment::default(),
            candidates: Vec::new(),
            adv_to_slot: Vec::new(),
            prices: Vec::new(),
            stats: SimulationStats::default(),
        }
    }

    /// The method being simulated.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Current bid (cents) of `program` on `keyword` — exposed so the
    /// facade-equivalence tests can compare strategy state bid-for-bid
    /// against `MarketSimulation`.
    pub fn bid_of(&self, program: usize, keyword: usize) -> i64 {
        match &self.population {
            Population::Naive(p) => p.bid_on(program, keyword),
            Population::Logical(p) => p.bid_on(program, keyword),
        }
    }

    /// Runs one complete auction (program evaluation, winner determination,
    /// click sampling, GSP pricing, strategy feedback). Returns the
    /// winner-determination objective.
    pub fn run_auction(&mut self) -> f64 {
        let keyword =
            self.workload.query_stream[self.auction_idx % self.workload.query_stream.len()];
        self.auction_idx += 1;
        let k = self.workload.config.num_slots;

        // Program evaluation.
        match &mut self.population {
            Population::Naive(p) => p.begin_auction(keyword),
            Population::Logical(p) => p.begin_auction(keyword),
        };

        // Winner determination.
        let (candidates, objective) = match self.method {
            Method::Lp | Method::H | Method::Rh => {
                let Population::Naive(pop) = &self.population else {
                    unreachable!("naive methods use the naive population")
                };
                let clicks = &self.workload.clicks;
                let n = pop.len();
                self.matrix.fill_from_fn(n, k, |i, j| {
                    clicks.p_click(i, SlotId::from_index0(j)) * pop.bid(i) as f64
                });
                let solver = self.solver.as_mut().expect("naive methods own a solver");
                solver.solve(&self.matrix, &mut self.assignment);
                let objective = self.assignment.total_weight;
                fill_adv_to_slot(&self.assignment, n, &mut self.adv_to_slot);
                gsp_prices_into(
                    &self.matrix,
                    &self.assignment,
                    &self.adv_to_slot,
                    &|adv, slot| clicks.p_click(adv, SlotId::from_index0(slot)),
                    &mut self.prices,
                );
                // Every advertiser was considered: candidates = n.
                let assignment = std::mem::take(&mut self.assignment);
                let prices = std::mem::take(&mut self.prices);
                self.settle(keyword, &assignment, &prices);
                self.assignment = assignment;
                self.prices = prices;
                (n, objective)
            }
            Method::Rhtalu => {
                let (candidates, accesses) = self.solve_rhtalu(keyword);
                self.stats.ta_sorted_accesses += accesses;
                (candidates, self.assignment.total_weight)
            }
        };

        self.stats.auctions += 1;
        self.stats.total_expected_revenue += objective;
        self.stats.candidates += candidates as u64;
        objective
    }

    /// RHTALU path: threshold-algorithm selection over logical bid lists,
    /// then the reduced-graph Hungarian, then GSP within the candidate set.
    /// Leaves the global-id assignment in `self.assignment` and returns the
    /// candidate count plus TA sorted accesses.
    fn solve_rhtalu(&mut self, keyword: usize) -> (usize, u64) {
        let k = self.workload.config.num_slots;
        let Population::Logical(pop) = &self.population else {
            unreachable!("RHTALU uses the logical population")
        };
        self.candidates.clear();
        let mut accesses = 0u64;
        for j in 0..k {
            let source = TaSlotSource {
                w_index: &self.w_indexes[j],
                population: pop,
                keyword,
            };
            // Top k+1 rather than top k: the winner determination needs k,
            // but exact GSP pricing needs the best *unassigned* competitor
            // per slot, and with at most k advertisers assigned the
            // (k+1)-deep list always contains one.
            let (top, instr) = threshold_top_k(&source, &ta_aggregation, k + 1);
            accesses += instr.sorted_accesses as u64;
            self.candidates.extend(top.into_iter().map(|(id, _)| id));
        }
        self.candidates.sort_unstable();
        self.candidates.dedup();

        let clicks = &self.workload.clicks;
        let candidates = &self.candidates;
        self.matrix.fill_from_fn(candidates.len(), k, |ci, j| {
            let adv = candidates[ci];
            clicks.p_click(adv, SlotId::from_index0(j)) * pop.bid_on(adv, keyword) as f64
        });
        self.hungarian
            .solve(&self.matrix, &mut self.local_assignment);
        fill_adv_to_slot(
            &self.local_assignment,
            candidates.len(),
            &mut self.adv_to_slot,
        );
        gsp_prices_into(
            &self.matrix,
            &self.local_assignment,
            &self.adv_to_slot,
            &|ci, slot| clicks.p_click(candidates[ci], SlotId::from_index0(slot)),
            &mut self.prices,
        );
        // Map back to global ids (assignment and prices alike).
        self.assignment.reset(k);
        self.assignment.total_weight = self.local_assignment.total_weight;
        for (j, local) in self.local_assignment.slot_to_adv.iter().enumerate() {
            self.assignment.slot_to_adv[j] = local.map(|ci| candidates[ci]);
        }
        for p in &mut self.prices {
            p.winner = candidates[p.winner];
        }
        let num_candidates = candidates.len();
        let assignment = std::mem::take(&mut self.assignment);
        let prices = std::mem::take(&mut self.prices);
        self.settle(keyword, &assignment, &prices);
        self.assignment = assignment;
        self.prices = prices;
        (num_candidates, accesses)
    }

    /// Samples user actions and feeds GSP charges back into the strategies.
    fn settle(
        &mut self,
        keyword: usize,
        assignment: &Assignment,
        prices: &[ssa_core::pricing::SlotPrice],
    ) {
        let clicks = &self.workload.clicks;
        for (j, adv) in assignment.slot_to_adv.iter().enumerate() {
            let Some(adv) = *adv else { continue };
            let p = clicks.p_click(adv, SlotId::from_index0(j));
            if self.rng.gen::<f64>() >= p {
                continue;
            }
            self.stats.clicks += 1;
            let per_click = prices
                .iter()
                .find(|sp| sp.winner == adv)
                .map(|sp| sp.amount)
                .unwrap_or(0.0);
            let price = Money::from_f64_rounded(per_click);
            if price.is_positive() {
                self.stats.charged_cents += price.cents();
                let value = self.workload.bidders[adv].keywords[keyword].0 as f64;
                match &mut self.population {
                    Population::Naive(pop) => pop.record_click(adv, price, value),
                    Population::Logical(pop) => pop.record_click(adv, price, value),
                }
            }
        }
    }

    /// Runs `auctions` auctions, returning the elapsed wall-clock time.
    pub fn run_timed(&mut self, auctions: usize) -> Duration {
        let start = Instant::now();
        for _ in 0..auctions {
            self.run_auction();
        }
        start.elapsed()
    }
}

/// Refills `out` with the advertiser→slot inverse of `assignment` over `n`
/// advertisers, reusing the buffer.
fn fill_adv_to_slot(assignment: &Assignment, n: usize, out: &mut Vec<Option<usize>>) {
    out.clear();
    out.resize(n, None);
    for (j, adv) in assignment.slot_to_adv.iter().enumerate() {
        if let Some(i) = adv {
            out[*i] = Some(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SectionVConfig, SectionVWorkload};

    fn workload(n: usize, seed: u64) -> SectionVWorkload {
        SectionVWorkload::generate(SectionVConfig {
            num_advertisers: n,
            num_slots: 5,
            num_keywords: 4,
            seed,
        })
    }

    /// All four methods produce the same winner-determination objective on
    /// the very first auction (identical fresh state).
    #[test]
    fn methods_agree_on_first_auction_objective() {
        let mut objectives = Vec::new();
        for method in Method::ALL {
            let mut sim = Simulation::new(workload(60, 11), method);
            objectives.push(sim.run_auction());
        }
        for pair in objectives.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "objectives diverge: {objectives:?}"
            );
        }
    }

    /// RH and RHTALU agree auction after auction: same objective every
    /// round even as strategies evolve through clicks and charges (the RNG
    /// streams are identical, and ties in GSP pricing resolve identically
    /// because the candidate set always contains every positive-weight
    /// competitor for each slot... asserted here empirically).
    #[test]
    fn rh_and_rhtalu_agree_over_time() {
        let mut rh = Simulation::new(workload(40, 5), Method::Rh);
        let mut ta = Simulation::new(workload(40, 5), Method::Rhtalu);
        for auction in 0..120 {
            let a = rh.run_auction();
            let b = ta.run_auction();
            assert!(
                (a - b).abs() < 1e-6,
                "objective diverged at auction {auction}: RH {a} vs RHTALU {b}"
            );
        }
        assert_eq!(rh.stats.clicks, ta.stats.clicks);
        assert_eq!(rh.stats.charged_cents, ta.stats.charged_cents);
    }

    /// The reduction bounds candidates by k² while the naive methods look
    /// at all n advertisers.
    #[test]
    fn candidate_counts() {
        let mut ta = Simulation::new(workload(80, 2), Method::Rhtalu);
        for _ in 0..10 {
            ta.run_auction();
        }
        let per_auction = ta.stats.candidates as f64 / ta.stats.auctions as f64;
        assert!(
            per_auction <= 30.0,
            "candidates per auction = {per_auction}"
        );
        assert!(ta.stats.ta_sorted_accesses > 0);

        let mut h = Simulation::new(workload(80, 2), Method::H);
        h.run_auction();
        assert_eq!(h.stats.candidates, 80);
    }

    /// Revenue statistics accumulate sensibly.
    #[test]
    fn stats_accumulate() {
        let mut sim = Simulation::new(workload(50, 9), Method::Rh);
        let d = sim.run_timed(30);
        assert_eq!(sim.stats.auctions, 30);
        assert!(sim.stats.total_expected_revenue > 0.0);
        assert!(d.as_nanos() > 0);
        // Clicks were sampled and some were charged.
        assert!(sim.stats.clicks > 0);
    }
}
