//! The Section II-B population: every advertiser a *SQL bidding program*,
//! served at marketplace scale.
//!
//! This module builds the Section V advertiser population three ways —
//! selectable by [`Strategy`] — over the same [`Marketplace`] /
//! `ShardedMarketplace` configuration:
//!
//! * [`Strategy::Native`] — one keyword-local Figure 5 ROI program per
//!   (advertiser, keyword) pair, run as native Rust
//!   ([`ssa_strategy::RoiBidder`] state under the hood);
//! * [`Strategy::Sql`] — the *same* program written in the Section II-B
//!   SQL dialect and executed by [`SqlProgramBidder`] on prepared
//!   statements (parse once at registration, bind-and-run per auction),
//!   with ROI settlement done entirely inside SQL by an `Outcome`
//!   trigger;
//! * [`Strategy::SqlReparse`] — the pre-prepared-statement baseline: the
//!   identical database and triggers, but every host statement formatted
//!   and re-parsed on every round. Kept (and benchmarked) to measure what
//!   the prepared-statement layer buys.
//!
//! The three populations are proven **bit-identical** — same reports,
//! same clicks, same charges, and same per-campaign bid trajectories —
//! through `serve_batch`, both single-threaded and sharded (the programs
//! here are keyword-local, unlike the cross-keyword-coupled
//! [`crate::SharedRoiProgram`], so shard-invariance applies).
//!
//! Campaign programs are registered behind shared handles
//! ([`ProgramHandle`]) so tests can read each program's live bid back out
//! of the marketplace; `CampaignSpec::sql_program` is the
//! move-the-program-in flavour of the same machinery.

use crate::config::SectionVWorkload;
use ssa_bidlang::{BidsTable, Formula, Money, SlotId};
use ssa_core::marketplace::{CampaignSpec, MarketError, Marketplace};
use ssa_core::sharded::ShardedMarketplace;
use ssa_core::{Bidder, BidderOutcome, PricingScheme, QueryContext, SqlProgramBidder, WdMethod};
use ssa_minidb::{Database, DbError, Params, Value};
use ssa_strategy::{KeywordEntry, RoiBidder};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// Which implementation of the Section II-B ROI program the population
/// runs. Parsed from `native` / `sql` / `sql-reparse` (the `reproduce
/// --strategy` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Native Rust Figure 5 programs.
    Native,
    /// SQL programs on prepared statements (the production path).
    Sql,
    /// SQL programs re-parsing every statement per round (the baseline the
    /// prepared layer replaces; kept for overhead benchmarking).
    SqlReparse,
}

impl Strategy {
    /// Every strategy, in CLI order.
    pub const ALL: [Strategy; 3] = [Strategy::Native, Strategy::Sql, Strategy::SqlReparse];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Native => "native",
            Strategy::Sql => "sql",
            Strategy::SqlReparse => "sql-reparse",
        };
        f.write_str(s)
    }
}

/// Typed error for an unrecognised [`Strategy`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError(String);

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid strategy {:?}: expected native, sql, or sql-reparse",
            self.0
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl FromStr for Strategy {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "native" => Ok(Strategy::Native),
            "sql" => Ok(Strategy::Sql),
            "sql-reparse" | "sql_reparse" | "reparse" => Ok(Strategy::SqlReparse),
            _ => Err(ParseStrategyError(s.to_string())),
        }
    }
}

/// The keyword-local Figure 5 schema/state script. One `Keywords` row
/// (relevance pinned to 1 — the campaign only ever sees queries on its own
/// keyword), the `Bids` emission table, and the advertiser's running spend
/// state as host variables. All numeric initial state is bound through
/// `:value` / `:bid` / `:roi` / `:rate` parameters — exact, never
/// string-formatted.
pub const ROI_TABLES: &str = "
CREATE TABLE Query (kw INT);
CREATE TABLE Outcome (clicked INT);
CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid INT, roi FLOAT, bid INT, relevance FLOAT);
CREATE TABLE Bids (formula TEXT, value INT);
INSERT INTO Keywords VALUES ('kw', 'Click', :value, :roi, :bid, 1.0);
INSERT INTO Bids VALUES ('Click', 0);
SET amtSpent = 0.0;
SET spent = 0.0;
SET valueGained = 0.0;
SET clickValue = :value;
SET targetSpendRate = :rate;
";

/// The keyword-local Figure 5 program: the paper's bid trigger (line 11
/// corrected to `>`) plus a settlement trigger that keeps the ROI
/// statistic entirely in SQL — mirroring, operation for operation, what
/// the native `RoiBidder` computes in Rust.
pub const ROI_PROGRAM: &str = "
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
        AND K.formula = Bids.formula );
}

CREATE TRIGGER settle AFTER INSERT ON Outcome
{
  IF clicked = 1 AND price > 0 THEN
    SET spent = spent + price;
    SET valueGained = valueGained + clickValue;
    SET amtSpent = amtSpent + price;
    UPDATE Keywords SET roi = valueGained / spent;
  ENDIF;
}
";

/// Binds one (advertiser, keyword) pair's initial state for
/// [`ROI_TABLES`].
pub fn roi_params(value: i64, bid: i64, roi: f64, rate: f64) -> Params {
    Params::new()
        .bind("value", value)
        .bind("bid", bid)
        .bind("roi", roi)
        .bind("rate", rate)
}

// ---------------------------------------------------------------------------
// The three program flavours.
// ---------------------------------------------------------------------------

/// The native twin of the SQL program: a single-keyword Figure 5 ROI
/// strategy addressed by whatever global keyword its campaign serves.
#[derive(Debug)]
pub struct LocalRoiProgram {
    roi: RoiBidder,
}

impl LocalRoiProgram {
    /// `value`/`bid`/`roi` as in [`KeywordEntry::new`]; `rate` is the
    /// advertiser's target spend rate.
    pub fn new(value: i64, bid: i64, roi: f64, rate: f64) -> Self {
        LocalRoiProgram {
            roi: RoiBidder::new(vec![KeywordEntry::new(value, bid, roi)], rate),
        }
    }

    /// The program's current stored bid (cents).
    pub fn current_bid(&self) -> i64 {
        self.roi.keywords[0].bid
    }
}

impl Bidder for LocalRoiProgram {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        let bid = self.roi.adjust_and_bid(0, ctx.time);
        BidsTable::new(vec![(Formula::click(), Money::from_cents(bid))])
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        // Settlement rule shared by every flavour (and the legacy
        // simulation): zero-priced clicks are not recorded.
        if outcome.clicked && outcome.price.is_positive() {
            let value = self.roi.keywords[0].click_value as f64;
            self.roi.record_click(0, outcome.price, value);
        }
    }
}

/// The reparse-per-round baseline: the same database and triggers as the
/// prepared path, but every host statement is formatted into SQL text and
/// re-parsed on every auction — exactly what `SqlRoiBidder` did before the
/// prepared-statement layer existed. Defective programs bid nothing, like
/// [`SqlProgramBidder`].
pub struct ReparseSqlProgram {
    db: Database,
    error: Option<DbError>,
}

impl ReparseSqlProgram {
    /// Builds the same program state as the prepared flavour (setup still
    /// binds parameters — only the per-round path re-parses).
    pub fn new(value: i64, bid: i64, roi: f64, rate: f64) -> Result<Self, DbError> {
        let mut db = Database::new();
        let mut setup = db.prepare(ROI_TABLES)?;
        setup.execute(&mut db, &roi_params(value, bid, roi, rate))?;
        db.run(ROI_PROGRAM)?;
        Ok(ReparseSqlProgram { db, error: None })
    }

    /// The program's current stored bid (cents), read with — what else — a
    /// freshly parsed query.
    pub fn current_bid(&mut self) -> i64 {
        self.db
            .query("SELECT bid FROM Keywords")
            .ok()
            .and_then(|rows| rows.first().and_then(|r| r[0].as_int().ok()))
            .unwrap_or(0)
    }

    fn round(&mut self, ctx: &QueryContext) -> Result<BidsTable, DbError> {
        self.db.set_var("time", Value::Int(ctx.time as i64));
        self.db.set_var("keyword", Value::Int(ctx.keyword as i64));
        // The reparse baseline: SQL text rebuilt and re-parsed per round
        // (activation tables are host-managed scratch, cleared like the
        // prepared path does — just without prepared statements).
        self.db.run("DELETE FROM Query")?;
        self.db
            .run(&format!("INSERT INTO Query VALUES ({})", ctx.keyword))?;
        let rows = self.db.query("SELECT * FROM Bids")?;
        let mut bids = Vec::with_capacity(rows.len());
        for row in rows {
            let formula = ssa_bidlang::parse_formula(row[0].as_text()?)
                .map_err(|e| DbError::Type(format!("bad bid formula: {e}")))?;
            bids.push((formula, Money::from_cents(row[1].as_int()?)));
        }
        Ok(BidsTable::new(bids))
    }

    fn settle(&mut self, outcome: &BidderOutcome) -> Result<(), DbError> {
        let clicked = i64::from(outcome.clicked);
        self.db.set_var("clicked", Value::Int(clicked));
        self.db
            .set_var("purchased", Value::Int(i64::from(outcome.purchased)));
        self.db.set_var("price", Value::Int(outcome.price.cents()));
        self.db.set_var(
            "slot",
            Value::Int(outcome.slot.map(|s| s.position() as i64).unwrap_or(0)),
        );
        self.db.run("DELETE FROM Outcome")?;
        self.db
            .run(&format!("INSERT INTO Outcome VALUES ({clicked})"))?;
        Ok(())
    }
}

impl Bidder for ReparseSqlProgram {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        if self.error.is_some() {
            return BidsTable::empty();
        }
        match self.round(ctx) {
            Ok(bids) => bids,
            Err(e) => {
                self.error = Some(e);
                BidsTable::empty()
            }
        }
    }

    fn on_outcome(&mut self, _ctx: &QueryContext, outcome: &BidderOutcome) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.settle(outcome) {
            self.error = Some(e);
        }
    }
}

impl fmt::Debug for ReparseSqlProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReparseSqlProgram")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Shared handles and the population builders.
// ---------------------------------------------------------------------------

/// Forwards the [`Bidder`] trait through a shared handle so the test
/// harness can keep a window into a program after it moves into the
/// marketplace (and across shard threads — hence [`Mutex`], not `RefCell`).
struct SharedProgram<B>(Arc<Mutex<B>>);

impl<B: Bidder + Send> Bidder for SharedProgram<B> {
    fn on_query(&mut self, ctx: &QueryContext) -> BidsTable {
        self.0.lock().expect("program state poisoned").on_query(ctx)
    }

    fn on_outcome(&mut self, ctx: &QueryContext, outcome: &BidderOutcome) {
        self.0
            .lock()
            .expect("program state poisoned")
            .on_outcome(ctx, outcome)
    }
}

/// A live window into one registered program (indexed `advertiser *
/// num_keywords + keyword` in [`ProgrammedMarket::handles`]).
pub enum ProgramHandle {
    /// Native Rust program.
    Native(Arc<Mutex<LocalRoiProgram>>),
    /// Prepared-statement SQL program.
    Sql(Arc<Mutex<SqlProgramBidder>>),
    /// Reparse-per-round SQL program.
    Reparse(Arc<Mutex<ReparseSqlProgram>>),
}

impl ProgramHandle {
    /// The program's current stored bid in cents.
    pub fn current_bid(&self) -> i64 {
        match self {
            ProgramHandle::Native(h) => h.lock().expect("program state poisoned").current_bid(),
            ProgramHandle::Sql(h) => {
                let mut program = h.lock().expect("program state poisoned");
                program
                    .db_mut()
                    .query("SELECT bid FROM Keywords")
                    .ok()
                    .and_then(|rows| rows.first().and_then(|r| r[0].as_int().ok()))
                    .unwrap_or(0)
            }
            ProgramHandle::Reparse(h) => h.lock().expect("program state poisoned").current_bid(),
        }
    }

    /// Planner counters of the program's private database, or `None` for
    /// native programs (no database). Lets the harness assert whether SQL
    /// campaigns served auctions from index probes or full scans.
    pub fn planner_stats(&self) -> Option<ssa_minidb::PlannerStats> {
        match self {
            ProgramHandle::Native(_) => None,
            ProgramHandle::Sql(h) => {
                Some(h.lock().expect("program state poisoned").planner_stats())
            }
            ProgramHandle::Reparse(h) => {
                Some(h.lock().expect("program state poisoned").db.planner_stats())
            }
        }
    }

    /// The planner mode of the program's database (`None` for native
    /// programs). Reflects the `SSA_MINIDB_FORCE_SCAN` toggle.
    pub fn planner_mode(&self) -> Option<ssa_minidb::PlannerMode> {
        match self {
            ProgramHandle::Native(_) => None,
            ProgramHandle::Sql(h) => Some(
                h.lock()
                    .expect("program state poisoned")
                    .db()
                    .planner_mode(),
            ),
            ProgramHandle::Reparse(h) => {
                Some(h.lock().expect("program state poisoned").db.planner_mode())
            }
        }
    }

    /// Switches the program's database between the planned pipeline and
    /// the forced-scan interpreter (no-op for native programs). The two
    /// modes are bit-identical; the harness flips this for overhead
    /// measurements and equivalence checks.
    pub fn set_planner_mode(&self, mode: ssa_minidb::PlannerMode) {
        match self {
            ProgramHandle::Native(_) => {}
            ProgramHandle::Sql(h) => h
                .lock()
                .expect("program state poisoned")
                .db_mut()
                .set_planner_mode(mode),
            ProgramHandle::Reparse(h) => h
                .lock()
                .expect("program state poisoned")
                .db
                .set_planner_mode(mode),
        }
    }

    /// Access paths the program's database would use for `sql`, or `None`
    /// for native programs. Read-only: planning for `EXPLAIN` must not
    /// perturb program state (see the RNG-invariance test).
    pub fn explain(&self, sql: &str) -> Option<ssa_minidb::DbResult<Vec<ssa_minidb::ExplainLine>>> {
        match self {
            ProgramHandle::Native(_) => None,
            ProgramHandle::Sql(h) => {
                Some(h.lock().expect("program state poisoned").db().explain(sql))
            }
            ProgramHandle::Reparse(h) => {
                Some(h.lock().expect("program state poisoned").db.explain(sql))
            }
        }
    }
}

impl fmt::Debug for ProgramHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            ProgramHandle::Native(_) => "native",
            ProgramHandle::Sql(_) => "sql",
            ProgramHandle::Reparse(_) => "sql-reparse",
        };
        write!(f, "ProgramHandle({kind})")
    }
}

/// Builds one campaign program of the requested flavour, returning the
/// boxed bidder for registration plus the inspection handle.
fn make_program(
    strategy: Strategy,
    value: i64,
    bid: i64,
    roi: f64,
    rate: f64,
) -> (Box<dyn Bidder + Send>, ProgramHandle) {
    match strategy {
        Strategy::Native => {
            let h = Arc::new(Mutex::new(LocalRoiProgram::new(value, bid, roi, rate)));
            (
                Box::new(SharedProgram(Arc::clone(&h))),
                ProgramHandle::Native(h),
            )
        }
        Strategy::Sql => {
            let program =
                SqlProgramBidder::new(ROI_TABLES, ROI_PROGRAM, &roi_params(value, bid, roi, rate))
                    .expect("the Figure 5 ROI program is well-formed");
            let h = Arc::new(Mutex::new(program));
            (
                Box::new(SharedProgram(Arc::clone(&h))),
                ProgramHandle::Sql(h),
            )
        }
        Strategy::SqlReparse => {
            let program = ReparseSqlProgram::new(value, bid, roi, rate)
                .expect("the Figure 5 ROI program is well-formed");
            let h = Arc::new(Mutex::new(program));
            (
                Box::new(SharedProgram(Arc::clone(&h))),
                ProgramHandle::Reparse(h),
            )
        }
    }
}

/// Registers the programmed Section II-B population on a marketplace-like
/// control plane (`Marketplace` and `ShardedMarketplace` share the API by
/// name, not by trait).
macro_rules! populate_programmed {
    ($market:expr, $workload:expr, $strategy:expr, $handles:expr) => {{
        let slots = $workload.config.num_slots;
        for (i, params) in $workload.bidders.iter().enumerate() {
            let advertiser = $market.register_advertiser(format!("advertiser-{i}"));
            let click_probs: Vec<f64> = (0..slots)
                .map(|j| $workload.clicks.p_click(i, SlotId::from_index0(j)))
                .collect();
            for (keyword, &(value, bid, roi)) in params.keywords.iter().enumerate() {
                let (program, handle) =
                    make_program($strategy, value, bid, roi, params.target_spend_rate);
                $market
                    .add_campaign(
                        advertiser,
                        keyword,
                        CampaignSpec::program(program).click_probs(click_probs.clone()),
                    )
                    .expect("Section II-B campaign is valid");
                $handles.push(handle);
            }
        }
    }};
}

/// A single-threaded marketplace carrying the programmed population.
#[derive(Debug)]
pub struct ProgrammedMarket {
    /// The marketplace (built in keyword-local-RNG mode so it reproduces
    /// its sharded twin exactly).
    pub market: Marketplace,
    /// One handle per campaign, indexed `advertiser * num_keywords +
    /// keyword`.
    pub handles: Vec<ProgramHandle>,
    num_keywords: usize,
}

/// A sharded marketplace carrying the programmed population.
#[derive(Debug)]
pub struct ShardedProgrammedMarket {
    /// The sharded marketplace.
    pub market: ShardedMarketplace,
    /// One handle per campaign, indexed `advertiser * num_keywords +
    /// keyword`.
    pub handles: Vec<ProgramHandle>,
    num_keywords: usize,
}

fn programmed_builder(
    workload: &SectionVWorkload,
    method: WdMethod,
) -> ssa_core::MarketplaceBuilder {
    Marketplace::builder()
        .slots(workload.config.num_slots)
        .keywords(workload.config.num_keywords)
        .method(method)
        .pricing(PricingScheme::Gsp)
        .seed(workload.config.seed ^ 0x5EC7_10B2)
        .keyword_local_rng(true)
}

/// Builds the programmed Section II-B population on a single-threaded
/// [`Marketplace`].
pub fn programmed_market(
    workload: &SectionVWorkload,
    method: WdMethod,
    strategy: Strategy,
) -> ProgrammedMarket {
    let mut market = programmed_builder(workload, method)
        .build()
        .expect("Section V configuration is valid");
    let mut handles = Vec::with_capacity(workload.bidders.len() * workload.config.num_keywords);
    populate_programmed!(market, workload, strategy, handles);
    ProgrammedMarket {
        market,
        handles,
        num_keywords: workload.config.num_keywords,
    }
}

/// Builds the programmed Section II-B population on a
/// [`ShardedMarketplace`] with `shards` worker shards.
pub fn programmed_sharded_market(
    workload: &SectionVWorkload,
    method: WdMethod,
    strategy: Strategy,
    shards: usize,
) -> Result<ShardedProgrammedMarket, MarketError> {
    let mut market = programmed_builder(workload, method).build_sharded(shards)?;
    let mut handles = Vec::with_capacity(workload.bidders.len() * workload.config.num_keywords);
    populate_programmed!(market, workload, strategy, handles);
    Ok(ShardedProgrammedMarket {
        market,
        handles,
        num_keywords: workload.config.num_keywords,
    })
}

impl ProgrammedMarket {
    /// Current bid (cents) of advertiser `adv`'s program on `keyword`.
    pub fn bid_of(&self, adv: usize, keyword: usize) -> i64 {
        self.handles[adv * self.num_keywords + keyword].current_bid()
    }
}

impl ShardedProgrammedMarket {
    /// Current bid (cents) of advertiser `adv`'s program on `keyword`.
    pub fn bid_of(&self, adv: usize, keyword: usize) -> i64 {
        self.handles[adv * self.num_keywords + keyword].current_bid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SectionVConfig, SectionVWorkload};
    use ssa_core::marketplace::QueryRequest;

    fn workload() -> SectionVWorkload {
        SectionVWorkload::generate(SectionVConfig {
            num_advertisers: 16,
            num_slots: 4,
            num_keywords: 3,
            seed: 29,
        })
    }

    fn requests(workload: &SectionVWorkload, start: usize, count: usize) -> Vec<QueryRequest> {
        let stream = &workload.query_stream;
        (0..count)
            .map(|i| QueryRequest::new(stream[(start + i) % stream.len()]))
            .collect()
    }

    #[test]
    fn strategy_parses_and_displays() {
        for s in Strategy::ALL {
            assert_eq!(s.to_string().parse::<Strategy>().unwrap(), s);
        }
        assert_eq!("SQL".parse::<Strategy>().unwrap(), Strategy::Sql);
        let err = "postgres".parse::<Strategy>().unwrap_err();
        assert!(err.to_string().contains("postgres"));
    }

    /// The acceptance bar: the SQL-programmed population, driven through
    /// `Marketplace::serve_batch`, is bit-identical to the native
    /// `RoiBidder` population — reports *and* every stored bid, round
    /// after round.
    #[test]
    fn sql_population_is_bit_identical_to_native() {
        let w = workload();
        let mut native = programmed_market(&w, WdMethod::Reduced, Strategy::Native);
        let mut sql = programmed_market(&w, WdMethod::Reduced, Strategy::Sql);
        let mut served = 0;
        for round in 0..3 {
            let batch = requests(&w, served, 50);
            served += batch.len();
            let native_report = native.market.serve_batch(&batch).expect("valid keywords");
            let sql_report = sql.market.serve_batch(&batch).expect("valid keywords");
            assert_eq!(native_report, sql_report, "round {round} diverged");
            for adv in 0..w.bidders.len() {
                for kw in 0..w.config.num_keywords {
                    assert_eq!(
                        native.bid_of(adv, kw),
                        sql.bid_of(adv, kw),
                        "bid diverged at round {round}, advertiser {adv}, keyword {kw}"
                    );
                }
            }
        }
        // The population actually trades: clicks and revenue are nonzero.
        let batch = requests(&w, served, 50);
        let report = sql.market.serve_batch(&batch).expect("valid keywords");
        assert!(report.total.clicks > 0);
        assert!(report.total.expected_revenue > 0.0);
    }

    /// The same equivalence through the sharded serving layer, plus
    /// shard-invariance of the SQL population itself.
    #[test]
    fn sql_population_is_bit_identical_to_native_when_sharded() {
        let w = workload();
        let mut native =
            programmed_sharded_market(&w, WdMethod::Reduced, Strategy::Native, 3).expect("valid");
        let mut sql =
            programmed_sharded_market(&w, WdMethod::Reduced, Strategy::Sql, 3).expect("valid");
        let mut unsharded = programmed_market(&w, WdMethod::Reduced, Strategy::Sql);
        let mut served = 0;
        for round in 0..2 {
            let batch = requests(&w, served, 40);
            served += batch.len();
            let native_report = native.market.serve_batch(&batch).expect("valid keywords");
            let sql_report = sql.market.serve_batch(&batch).expect("valid keywords");
            let unsharded_report = unsharded
                .market
                .serve_batch(&batch)
                .expect("valid keywords");
            assert_eq!(native_report, sql_report, "round {round} diverged");
            assert_eq!(
                sql_report, unsharded_report,
                "sharding changed SQL-program outcomes at round {round}"
            );
            for adv in 0..w.bidders.len() {
                for kw in 0..w.config.num_keywords {
                    assert_eq!(native.bid_of(adv, kw), sql.bid_of(adv, kw));
                    assert_eq!(sql.bid_of(adv, kw), unsharded.bid_of(adv, kw));
                }
            }
        }
    }

    /// The planned, indexed, compiled pipeline is a pure performance
    /// change: flipping every program database to the forced-scan
    /// interpreter produces bit-identical reports and stored bids, both
    /// unsharded (1) and sharded (4).
    #[test]
    fn indexed_pipeline_matches_forced_scan_across_shard_counts() {
        use ssa_minidb::PlannerMode;
        let w = workload();
        for shards in [1usize, 4] {
            let mut indexed =
                programmed_sharded_market(&w, WdMethod::Reduced, Strategy::Sql, shards)
                    .expect("valid");
            let mut scanning =
                programmed_sharded_market(&w, WdMethod::Reduced, Strategy::Sql, shards)
                    .expect("valid");
            for handle in &scanning.handles {
                handle.set_planner_mode(PlannerMode::ForceScan);
            }
            let mut served = 0;
            for round in 0..2 {
                let batch = requests(&w, served, 40);
                served += batch.len();
                let indexed_report = indexed.market.serve_batch(&batch).expect("valid keywords");
                let scanning_report = scanning.market.serve_batch(&batch).expect("valid keywords");
                assert_eq!(
                    indexed_report, scanning_report,
                    "planner modes diverged at {shards} shards, round {round}"
                );
                for adv in 0..w.bidders.len() {
                    for kw in 0..w.config.num_keywords {
                        assert_eq!(indexed.bid_of(adv, kw), scanning.bid_of(adv, kw));
                    }
                }
            }
            // The indexed side really took the index path.
            let stats = indexed.handles[0].planner_stats().expect("sql program");
            assert!(
                stats.index_hits > 0,
                "expected index probes at {shards} shards, got {stats:?}"
            );
        }
    }

    /// `EXPLAIN`ing a program's statements mid-serve is invisible: the
    /// RNG streams and program state draw identically with or without it
    /// (extends the PR 4 shard-invariance properties to the planner).
    #[test]
    fn explain_mid_serve_leaves_outcomes_unchanged() {
        let w = workload();
        let mut plain = programmed_market(&w, WdMethod::Reduced, Strategy::Sql);
        let mut explained = programmed_market(&w, WdMethod::Reduced, Strategy::Sql);
        let mut served = 0;
        for round in 0..3 {
            let batch = requests(&w, served, 30);
            served += batch.len();
            let plain_report = plain.market.serve_batch(&batch).expect("valid keywords");
            // Between batches, explain every campaign's hot statements on
            // one side only.
            for handle in &explained.handles {
                let lines = handle
                    .explain("SELECT bid FROM Keywords WHERE text = 'kw0'")
                    .expect("sql program")
                    .expect("valid explain");
                assert!(!lines.is_empty());
                handle
                    .explain("UPDATE Keywords SET relevance = 1.0 WHERE text = 'kw0'")
                    .expect("sql program")
                    .expect("valid explain");
            }
            let explained_report = explained
                .market
                .serve_batch(&batch)
                .expect("valid keywords");
            assert_eq!(
                plain_report, explained_report,
                "EXPLAIN perturbed serving at round {round}"
            );
            for adv in 0..w.bidders.len() {
                for kw in 0..w.config.num_keywords {
                    assert_eq!(plain.bid_of(adv, kw), explained.bid_of(adv, kw));
                }
            }
        }
    }

    /// The prepared-statement rewrite is a pure performance change: the
    /// reparse-per-round baseline produces identical outcomes.
    #[test]
    fn prepared_and_reparse_sql_populations_agree() {
        let w = workload();
        let mut prepared = programmed_market(&w, WdMethod::Reduced, Strategy::Sql);
        let mut reparse = programmed_market(&w, WdMethod::Reduced, Strategy::SqlReparse);
        let batch = requests(&w, 0, 80);
        assert_eq!(
            prepared.market.serve_batch(&batch).expect("valid keywords"),
            reparse.market.serve_batch(&batch).expect("valid keywords"),
        );
        for adv in 0..w.bidders.len() {
            for kw in 0..w.config.num_keywords {
                assert_eq!(prepared.bid_of(adv, kw), reparse.bid_of(adv, kw));
            }
        }
    }
}
